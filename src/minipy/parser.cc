#include "minipy/ast.h"

#include <functional>

namespace chef::minipy {

namespace {

class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

    ParseResult Run()
    {
        auto module = std::make_unique<Ast>(AstKind::kModule, 1);
        while (ok_ && !At(TokKind::kEof)) {
            if (Accept(TokKind::kNewline)) {
                continue;
            }
            module->kids.push_back(Statement());
        }
        ParseResult result;
        result.ok = ok_;
        result.error = error_;
        result.error_line = error_line_;
        if (ok_) {
            result.module = std::move(module);
        }
        return result;
    }

  private:
    const Token& Cur() const { return toks_[pos_]; }
    bool At(TokKind kind) const { return Cur().kind == kind; }

    const Token& Advance()
    {
        const Token& token = toks_[pos_];
        if (pos_ + 1 < toks_.size()) {
            ++pos_;
        }
        return token;
    }

    bool Accept(TokKind kind)
    {
        if (At(kind)) {
            Advance();
            return true;
        }
        return false;
    }

    void Expect(TokKind kind, const char* context)
    {
        if (!Accept(kind)) {
            Error(std::string("expected '") + TokKindName(kind) + "' " +
                  context + ", got '" + TokKindName(Cur().kind) + "'");
        }
    }

    void Error(const std::string& message)
    {
        if (ok_) {
            ok_ = false;
            error_ = message;
            error_line_ = Cur().line;
        }
        // Skip to EOF so parsing terminates promptly.
        pos_ = toks_.size() - 1;
    }

    AstPtr Node(AstKind kind) const
    {
        return std::make_unique<Ast>(kind, Cur().line);
    }

    // -- Statements ---------------------------------------------------------

    AstPtr Statement();
    AstPtr SimpleStatement();
    AstPtr Suite();  ///< NEWLINE INDENT stmt+ DEDENT, or inline stmt.

    AstPtr IfStatement();
    AstPtr WhileStatement();
    AstPtr ForStatement();
    AstPtr DefStatement();
    AstPtr TryStatement();
    AstPtr ClassStatement();

    // -- Expressions --------------------------------------------------------

    AstPtr ExpressionList();  ///< expr (, expr)* [,] -> tuple if comma.
    AstPtr Expression() { return OrExpr(); }
    AstPtr OrExpr();
    AstPtr AndExpr();
    AstPtr NotExpr();
    AstPtr Comparison();
    AstPtr BitOr();
    AstPtr BitXor();
    AstPtr BitAnd();
    AstPtr Shift();
    AstPtr Arith();
    AstPtr Term();
    AstPtr Unary();
    AstPtr Postfix();
    AstPtr Atom();

    std::vector<Token> toks_;
    size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
    int error_line_ = 0;
};

AstPtr
Parser::Suite()
{
    Expect(TokKind::kColon, "before suite");
    auto body = Node(AstKind::kBody);
    if (Accept(TokKind::kNewline)) {
        Expect(TokKind::kIndent, "to start block");
        while (ok_ && !Accept(TokKind::kDedent)) {
            if (Accept(TokKind::kNewline)) {
                continue;
            }
            body->kids.push_back(Statement());
        }
    } else {
        // Inline suite: one or more simple statements on the same line.
        body->kids.push_back(SimpleStatement());
        while (Accept(TokKind::kSemicolon) && !At(TokKind::kNewline)) {
            body->kids.push_back(SimpleStatement());
        }
        Expect(TokKind::kNewline, "after inline suite");
    }
    return body;
}

AstPtr
Parser::Statement()
{
    switch (Cur().kind) {
      case TokKind::kKwIf: return IfStatement();
      case TokKind::kKwWhile: return WhileStatement();
      case TokKind::kKwFor: return ForStatement();
      case TokKind::kKwDef: return DefStatement();
      case TokKind::kKwTry: return TryStatement();
      case TokKind::kKwClass: return ClassStatement();
      default: {
        AstPtr stmt = SimpleStatement();
        while (Accept(TokKind::kSemicolon) && !At(TokKind::kNewline)) {
            // Additional statements on the line are wrapped in a body so
            // the caller still receives one node.
            auto body = std::make_unique<Ast>(AstKind::kBody, stmt->line);
            body->kids.push_back(std::move(stmt));
            do {
                body->kids.push_back(SimpleStatement());
            } while (Accept(TokKind::kSemicolon) &&
                     !At(TokKind::kNewline));
            stmt = std::move(body);
            break;
        }
        Expect(TokKind::kNewline, "after statement");
        return stmt;
      }
    }
}

AstPtr
Parser::SimpleStatement()
{
    switch (Cur().kind) {
      case TokKind::kKwReturn: {
        auto node = Node(AstKind::kReturn);
        Advance();
        if (!At(TokKind::kNewline) && !At(TokKind::kSemicolon)) {
            node->kids.push_back(ExpressionList());
        }
        return node;
      }
      case TokKind::kKwRaise: {
        auto node = Node(AstKind::kRaise);
        Advance();
        if (!At(TokKind::kNewline) && !At(TokKind::kSemicolon)) {
            node->kids.push_back(Expression());
        }
        return node;
      }
      case TokKind::kKwAssert: {
        auto node = Node(AstKind::kAssert);
        Advance();
        node->kids.push_back(Expression());
        if (Accept(TokKind::kComma)) {
            node->kids.push_back(Expression());
        }
        return node;
      }
      case TokKind::kKwPass: Advance(); return Node(AstKind::kPass);
      case TokKind::kKwBreak: Advance(); return Node(AstKind::kBreak);
      case TokKind::kKwContinue:
        Advance();
        return Node(AstKind::kContinue);
      case TokKind::kKwGlobal: {
        auto node = Node(AstKind::kGlobal);
        Advance();
        do {
            if (!At(TokKind::kName)) {
                Error("expected name after 'global'");
                break;
            }
            node->strings.push_back(Advance().text);
        } while (Accept(TokKind::kComma));
        return node;
      }
      case TokKind::kKwImport:
      case TokKind::kKwFrom: {
        // Imports are accepted and ignored: workloads are self-contained,
        // mirroring how symbolic tests load the package under test into
        // the interpreter VM beforehand.
        while (!At(TokKind::kNewline) && !At(TokKind::kEof)) {
            Advance();
        }
        return Node(AstKind::kPass);
      }
      case TokKind::kKwDel: {
        // Treated as assignment of None (frees the reference).
        Advance();
        auto node = Node(AstKind::kAssign);
        node->kids.push_back(Postfix());
        auto none = Node(AstKind::kNoneLit);
        node->kids.push_back(std::move(none));
        return node;
      }
      default:
        break;
    }

    AstPtr expr = ExpressionList();
    if (At(TokKind::kAssign)) {
        auto node = std::make_unique<Ast>(AstKind::kAssign, expr->line);
        Advance();
        node->kids.push_back(std::move(expr));
        node->kids.push_back(ExpressionList());
        // Chained assignment a = b = v is not supported.
        if (At(TokKind::kAssign)) {
            Error("chained assignment is not supported");
        }
        return node;
    }
    const TokKind op = Cur().kind;
    if (op == TokKind::kPlusEq || op == TokKind::kMinusEq ||
        op == TokKind::kStarEq || op == TokKind::kSlashEq ||
        op == TokKind::kSlashSlashEq || op == TokKind::kPercentEq ||
        op == TokKind::kAmpEq || op == TokKind::kPipeEq) {
        auto node = std::make_unique<Ast>(AstKind::kAugAssign, expr->line);
        node->op = op;
        Advance();
        node->kids.push_back(std::move(expr));
        node->kids.push_back(ExpressionList());
        return node;
    }
    auto node = std::make_unique<Ast>(AstKind::kExprStmt, expr->line);
    node->kids.push_back(std::move(expr));
    return node;
}

AstPtr
Parser::IfStatement()
{
    auto node = Node(AstKind::kIf);
    Advance();  // if / elif
    node->kids.push_back(Expression());
    node->kids.push_back(Suite());
    if (At(TokKind::kKwElif)) {
        auto else_body = Node(AstKind::kBody);
        else_body->kids.push_back(IfStatement());
        node->kids.push_back(std::move(else_body));
    } else if (Accept(TokKind::kKwElse)) {
        node->kids.push_back(Suite());
    }
    return node;
}

AstPtr
Parser::WhileStatement()
{
    auto node = Node(AstKind::kWhile);
    Advance();
    node->kids.push_back(Expression());
    node->kids.push_back(Suite());
    return node;
}

AstPtr
Parser::ForStatement()
{
    auto node = Node(AstKind::kFor);
    Advance();
    // Target: name or comma-separated name tuple.
    auto first = Postfix();
    if (At(TokKind::kComma)) {
        auto tuple = std::make_unique<Ast>(AstKind::kTupleLit, first->line);
        tuple->kids.push_back(std::move(first));
        while (Accept(TokKind::kComma) && !At(TokKind::kKwIn)) {
            tuple->kids.push_back(Postfix());
        }
        first = std::move(tuple);
    }
    node->kids.push_back(std::move(first));
    Expect(TokKind::kKwIn, "in for statement");
    node->kids.push_back(ExpressionList());
    node->kids.push_back(Suite());
    return node;
}

AstPtr
Parser::DefStatement()
{
    auto node = Node(AstKind::kDef);
    Advance();
    if (!At(TokKind::kName)) {
        Error("expected function name");
        return node;
    }
    node->name = Advance().text;
    Expect(TokKind::kLParen, "after function name");
    while (ok_ && !Accept(TokKind::kRParen)) {
        if (!At(TokKind::kName)) {
            Error("expected parameter name");
            break;
        }
        node->strings.push_back(Advance().text);
        if (Accept(TokKind::kAssign)) {
            node->extra.push_back(Expression());
        } else if (!node->extra.empty()) {
            Error("non-default parameter after default parameter");
            break;
        }
        if (!Accept(TokKind::kComma) && !At(TokKind::kRParen)) {
            Error("expected ',' or ')' in parameter list");
            break;
        }
    }
    node->kids.push_back(Suite());
    return node;
}

AstPtr
Parser::TryStatement()
{
    auto node = Node(AstKind::kTry);
    Advance();
    node->kids.push_back(Suite());
    if (!At(TokKind::kKwExcept)) {
        Error("'try' requires at least one 'except' clause (finally-only "
              "try is not supported)");
        return node;
    }
    while (Accept(TokKind::kKwExcept)) {
        auto handler = Node(AstKind::kHandler);
        if (!At(TokKind::kColon)) {
            handler->kids.push_back(Expression());
            if (Accept(TokKind::kKwAs)) {
                if (!At(TokKind::kName)) {
                    Error("expected name after 'as'");
                    return node;
                }
                handler->name = Advance().text;
            }
        } else {
            handler->kids.push_back(nullptr);  // Bare except.
        }
        handler->kids.push_back(Suite());
        node->extra.push_back(std::move(handler));
    }
    if (Accept(TokKind::kKwFinally)) {
        Error("'finally' is not supported by MiniPy");
    }
    if (Accept(TokKind::kKwElse)) {
        Error("'try/else' is not supported by MiniPy");
    }
    return node;
}

AstPtr
Parser::ClassStatement()
{
    auto node = Node(AstKind::kClass);
    Advance();
    if (!At(TokKind::kName)) {
        Error("expected class name");
        return node;
    }
    node->name = Advance().text;
    if (Accept(TokKind::kLParen)) {
        if (!At(TokKind::kRParen)) {
            node->kids.push_back(Expression());
        } else {
            node->kids.push_back(nullptr);
        }
        Expect(TokKind::kRParen, "after base class");
    } else {
        node->kids.push_back(nullptr);
    }
    node->kids.push_back(Suite());
    return node;
}

AstPtr
Parser::ExpressionList()
{
    AstPtr first = Expression();
    if (!At(TokKind::kComma)) {
        return first;
    }
    auto tuple = std::make_unique<Ast>(AstKind::kTupleLit, first->line);
    tuple->kids.push_back(std::move(first));
    while (Accept(TokKind::kComma)) {
        if (At(TokKind::kNewline) || At(TokKind::kAssign) ||
            At(TokKind::kRParen) || At(TokKind::kRBracket) ||
            At(TokKind::kEof) || At(TokKind::kSemicolon)) {
            break;  // Trailing comma.
        }
        tuple->kids.push_back(Expression());
    }
    return tuple;
}

AstPtr
Parser::OrExpr()
{
    AstPtr left = AndExpr();
    if (!At(TokKind::kKwOr)) {
        return left;
    }
    auto node = std::make_unique<Ast>(AstKind::kBoolOp, left->line);
    node->op = TokKind::kKwOr;
    node->kids.push_back(std::move(left));
    while (Accept(TokKind::kKwOr)) {
        node->kids.push_back(AndExpr());
    }
    return node;
}

AstPtr
Parser::AndExpr()
{
    AstPtr left = NotExpr();
    if (!At(TokKind::kKwAnd)) {
        return left;
    }
    auto node = std::make_unique<Ast>(AstKind::kBoolOp, left->line);
    node->op = TokKind::kKwAnd;
    node->kids.push_back(std::move(left));
    while (Accept(TokKind::kKwAnd)) {
        node->kids.push_back(NotExpr());
    }
    return node;
}

AstPtr
Parser::NotExpr()
{
    if (At(TokKind::kKwNot)) {
        auto node = Node(AstKind::kUnaryOp);
        node->op = TokKind::kKwNot;
        Advance();
        node->kids.push_back(NotExpr());
        return node;
    }
    return Comparison();
}

AstPtr
Parser::Comparison()
{
    AstPtr left = BitOr();
    auto spelling_of = [this]() -> const char* {
        switch (Cur().kind) {
          case TokKind::kEq: return "==";
          case TokKind::kNe: return "!=";
          case TokKind::kLt: return "<";
          case TokKind::kLe: return "<=";
          case TokKind::kGt: return ">";
          case TokKind::kGe: return ">=";
          case TokKind::kKwIn: return "in";
          case TokKind::kKwIs: return "is";
          case TokKind::kKwNot:
            return toks_[pos_ + 1].kind == TokKind::kKwIn ? "not in"
                                                          : nullptr;
          default: return nullptr;
        }
    };
    if (spelling_of() == nullptr) {
        return left;
    }
    auto node = std::make_unique<Ast>(AstKind::kCompare, left->line);
    node->kids.push_back(std::move(left));
    for (;;) {
        const char* spelling = spelling_of();
        if (spelling == nullptr) {
            break;
        }
        std::string op = spelling;
        Advance();
        if (op == "not in") {
            Advance();  // The 'in' token.
        } else if (op == "is" && Accept(TokKind::kKwNot)) {
            op = "is not";
        }
        node->strings.push_back(op);
        node->kids.push_back(BitOr());
    }
    return node;
}

namespace {

/// Builds a left-associative binary operator chain.
template <typename Sub, typename Match>
AstPtr
LeftAssoc(Parser* /*parser*/, Sub&& sub, Match&& match)
{
    AstPtr left = sub();
    for (;;) {
        const TokKind op = match();
        if (op == TokKind::kEof) {
            return left;
        }
        auto node = std::make_unique<Ast>(AstKind::kBinOp, left->line);
        node->op = op;
        node->kids.push_back(std::move(left));
        node->kids.push_back(sub());
        left = std::move(node);
    }
}

}  // namespace

AstPtr
Parser::BitOr()
{
    return LeftAssoc(
        this, [this] { return BitXor(); },
        [this]() -> TokKind {
            return Accept(TokKind::kPipe) ? TokKind::kPipe : TokKind::kEof;
        });
}

AstPtr
Parser::BitXor()
{
    return LeftAssoc(
        this, [this] { return BitAnd(); },
        [this]() -> TokKind {
            return Accept(TokKind::kCaret) ? TokKind::kCaret
                                           : TokKind::kEof;
        });
}

AstPtr
Parser::BitAnd()
{
    return LeftAssoc(
        this, [this] { return Shift(); },
        [this]() -> TokKind {
            return Accept(TokKind::kAmp) ? TokKind::kAmp : TokKind::kEof;
        });
}

AstPtr
Parser::Shift()
{
    return LeftAssoc(
        this, [this] { return Arith(); },
        [this]() -> TokKind {
            if (Accept(TokKind::kShl)) return TokKind::kShl;
            if (Accept(TokKind::kShr)) return TokKind::kShr;
            return TokKind::kEof;
        });
}

AstPtr
Parser::Arith()
{
    return LeftAssoc(
        this, [this] { return Term(); },
        [this]() -> TokKind {
            if (Accept(TokKind::kPlus)) return TokKind::kPlus;
            if (Accept(TokKind::kMinus)) return TokKind::kMinus;
            return TokKind::kEof;
        });
}

AstPtr
Parser::Term()
{
    return LeftAssoc(
        this, [this] { return Unary(); },
        [this]() -> TokKind {
            if (Accept(TokKind::kStar)) return TokKind::kStar;
            if (Accept(TokKind::kSlash)) return TokKind::kSlash;
            if (Accept(TokKind::kSlashSlash)) return TokKind::kSlashSlash;
            if (Accept(TokKind::kPercent)) return TokKind::kPercent;
            return TokKind::kEof;
        });
}

AstPtr
Parser::Unary()
{
    if (At(TokKind::kMinus) || At(TokKind::kTilde) || At(TokKind::kPlus)) {
        const TokKind op = Cur().kind;
        auto node = Node(AstKind::kUnaryOp);
        node->op = (op == TokKind::kPlus) ? TokKind::kEof : op;
        Advance();
        node->kids.push_back(Unary());
        if (node->op == TokKind::kEof) {
            return std::move(node->kids[0]);  // Unary plus is identity.
        }
        return node;
    }
    return Postfix();
}

AstPtr
Parser::Postfix()
{
    AstPtr value = Atom();
    for (;;) {
        if (Accept(TokKind::kDot)) {
            if (!At(TokKind::kName)) {
                Error("expected attribute name after '.'");
                return value;
            }
            auto node =
                std::make_unique<Ast>(AstKind::kAttribute, value->line);
            node->name = Advance().text;
            node->kids.push_back(std::move(value));
            value = std::move(node);
        } else if (Accept(TokKind::kLParen)) {
            auto node = std::make_unique<Ast>(AstKind::kCall, value->line);
            node->kids.push_back(std::move(value));
            while (ok_ && !Accept(TokKind::kRParen)) {
                if (At(TokKind::kName) &&
                    toks_[pos_ + 1].kind == TokKind::kAssign) {
                    node->strings.push_back(Advance().text);
                    Advance();  // '='
                    node->extra.push_back(Expression());
                } else {
                    if (!node->strings.empty()) {
                        Error("positional argument after keyword "
                              "argument");
                        break;
                    }
                    node->kids.push_back(Expression());
                }
                if (!Accept(TokKind::kComma) && !At(TokKind::kRParen)) {
                    Error("expected ',' or ')' in call");
                    break;
                }
            }
            value = std::move(node);
        } else if (Accept(TokKind::kLBracket)) {
            // Index or slice.
            AstPtr start;
            bool is_slice = false;
            if (!At(TokKind::kColon)) {
                start = ExpressionList();
            }
            if (Accept(TokKind::kColon)) {
                is_slice = true;
            }
            if (is_slice) {
                auto node =
                    std::make_unique<Ast>(AstKind::kSlice, value->line);
                node->kids.push_back(std::move(value));
                node->kids.push_back(std::move(start));
                if (!At(TokKind::kRBracket)) {
                    node->kids.push_back(Expression());
                } else {
                    node->kids.push_back(nullptr);
                }
                Expect(TokKind::kRBracket, "after slice");
                value = std::move(node);
            } else {
                auto node =
                    std::make_unique<Ast>(AstKind::kSubscript,
                                          value->line);
                node->kids.push_back(std::move(value));
                node->kids.push_back(std::move(start));
                Expect(TokKind::kRBracket, "after subscript");
                value = std::move(node);
            }
        } else {
            return value;
        }
    }
}

AstPtr
Parser::Atom()
{
    switch (Cur().kind) {
      case TokKind::kInt: {
        auto node = Node(AstKind::kIntLit);
        node->int_value = Advance().int_value;
        return node;
      }
      case TokKind::kString: {
        auto node = Node(AstKind::kStrLit);
        node->str_value = Advance().text;
        // Adjacent string literals concatenate.
        while (At(TokKind::kString)) {
            node->str_value += Advance().text;
        }
        return node;
      }
      case TokKind::kName: {
        auto node = Node(AstKind::kName);
        node->name = Advance().text;
        return node;
      }
      case TokKind::kKwNone: Advance(); return Node(AstKind::kNoneLit);
      case TokKind::kKwTrue: {
        auto node = Node(AstKind::kBoolLit);
        node->int_value = 1;
        Advance();
        return node;
      }
      case TokKind::kKwFalse: {
        auto node = Node(AstKind::kBoolLit);
        node->int_value = 0;
        Advance();
        return node;
      }
      case TokKind::kKwLambda: {
        auto node = Node(AstKind::kLambda);
        Advance();
        while (At(TokKind::kName)) {
            node->strings.push_back(Advance().text);
            if (!Accept(TokKind::kComma)) {
                break;
            }
        }
        Expect(TokKind::kColon, "in lambda");
        node->kids.push_back(Expression());
        return node;
      }
      case TokKind::kLParen: {
        Advance();
        if (Accept(TokKind::kRParen)) {
            return Node(AstKind::kTupleLit);  // Empty tuple.
        }
        AstPtr inner = ExpressionList();
        Expect(TokKind::kRParen, "after parenthesized expression");
        return inner;
      }
      case TokKind::kLBracket: {
        auto node = Node(AstKind::kListLit);
        Advance();
        while (ok_ && !Accept(TokKind::kRBracket)) {
            node->kids.push_back(Expression());
            if (!Accept(TokKind::kComma) && !At(TokKind::kRBracket)) {
                Error("expected ',' or ']' in list literal");
                break;
            }
        }
        return node;
      }
      case TokKind::kLBrace: {
        auto node = Node(AstKind::kDictLit);
        Advance();
        while (ok_ && !Accept(TokKind::kRBrace)) {
            node->kids.push_back(Expression());
            Expect(TokKind::kColon, "in dict literal");
            node->kids.push_back(Expression());
            if (!Accept(TokKind::kComma) && !At(TokKind::kRBrace)) {
                Error("expected ',' or '}' in dict literal");
                break;
            }
        }
        return node;
      }
      default:
        Error(std::string("unexpected token '") +
              TokKindName(Cur().kind) + "'");
        return Node(AstKind::kNoneLit);
    }
}

}  // namespace

ParseResult
Parse(const std::string& source)
{
    LexResult lexed = Lex(source);
    if (!lexed.ok) {
        ParseResult result;
        result.ok = false;
        result.error = lexed.error;
        result.error_line = lexed.error_line;
        return result;
    }
    return Parser(std::move(lexed.tokens)).Run();
}

}  // namespace chef::minipy
