#ifndef CHEF_MINIPY_OBJECT_H_
#define CHEF_MINIPY_OBJECT_H_

/// \file
/// MiniPy runtime object model.
///
/// Values mirror CPython's: ints are (modeled) arbitrary-precision numbers,
/// strings are immutable byte strings, dicts are hash tables whose hashing
/// and probing run through the instrumented primitives (so symbolic keys
/// fork exactly like the paper describes). Namespaces keyed by *source*
/// identifiers (globals, attributes) use plain C++ maps: identifier text is
/// never symbolic.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/str_ops.h"
#include "lowlevel/symvalue.h"

namespace chef::minipy {

using interp::SymStr;
using lowlevel::SymValue;

struct CodeObject;
struct PyObject;
using PyRef = std::shared_ptr<PyObject>;
class Vm;

enum class PyType : uint8_t {
    kNone,
    kBool,
    kInt,
    kStr,
    kList,
    kTuple,
    kDict,
    kFunction,
    kBuiltin,      ///< Builtin free function.
    kBoundMethod,  ///< self + function or builtin method id.
    kClass,
    kInstance,
    kRange,
    kIterator,
};

const char* PyTypeName(PyType type);

/// Class payload. Exception classes are ordinary classes rooted at the
/// builtin Exception.
struct PyClass {
    std::string name;
    PyRef base;  ///< Class object or null.
    std::unordered_map<std::string, PyRef> ns;
};

/// Function payload.
struct PyFunc {
    const CodeObject* code = nullptr;
    std::vector<PyRef> defaults;
};

/// Instrumented guest dictionary: open hashing with per-bucket chains.
/// Hashing, bucket selection and key comparison fork through the runtime.
class PyDict
{
  public:
    struct Entry {
        PyRef key;
        PyRef value;
        bool alive = true;
    };

    /// Returns a pointer to the value slot for \p key, or null.
    PyRef* Find(Vm& vm, const PyRef& key);

    /// Inserts or updates.
    void Set(Vm& vm, const PyRef& key, PyRef value);

    /// Removes the key; returns false if absent.
    bool Erase(Vm& vm, const PyRef& key);

    size_t size() const { return live_count_; }

    /// Insertion-ordered live entries.
    const std::vector<Entry>& entries() const { return entries_; }

  private:
    void MaybeGrow(Vm& vm);
    uint64_t BucketFor(Vm& vm, const PyRef& key, uint64_t num_buckets);

    std::vector<Entry> entries_;
    std::vector<std::vector<uint32_t>> buckets_{
        std::vector<std::vector<uint32_t>>(8)};
    size_t live_count_ = 0;
};

/// A MiniPy value. One struct with per-type payload fields keeps the
/// interpreter compact; the active fields are determined by `type`.
struct PyObject {
    explicit PyObject(PyType t) : type(t) {}

    PyType type;

    SymValue num{0, 64};  ///< kInt / kBool payload.
    SymStr str;           ///< kStr payload.

    std::vector<PyRef> items;  ///< kList / kTuple payload.
    PyDict dict;               ///< kDict payload.

    /// kInstance attribute table; also exception state (args under
    /// "args"). Keys are source identifiers: plain map.
    std::unordered_map<std::string, PyRef> attrs;

    std::shared_ptr<PyClass> cls;  ///< kClass payload / kInstance class.

    PyFunc func;               ///< kFunction payload.
    int builtin_id = 0;        ///< kBuiltin / builtin kBoundMethod.
    PyRef self;                ///< kBoundMethod receiver.
    PyRef callee;              ///< kBoundMethod user function.

    SymValue range_start{0, 64}, range_stop{0, 64};  ///< kRange payload.
    int64_t range_step = 1;

    PyRef iter_target;       ///< kIterator payload.
    size_t iter_index = 0;
    SymValue iter_value{0, 64};  ///< Range iterator position.
};

// Constructors for common values.
PyRef MakeNone();
PyRef MakeBool(SymValue value);
PyRef MakeInt(SymValue value);
PyRef MakeInt64(int64_t value);
PyRef MakeStr(SymStr value);
PyRef MakeStrC(const std::string& value);
PyRef MakeList(std::vector<PyRef> items);
PyRef MakeTuple(std::vector<PyRef> items);
PyRef MakeDict();

}  // namespace chef::minipy

#endif  // CHEF_MINIPY_OBJECT_H_
