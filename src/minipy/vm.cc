#include "minipy/vm.h"

#include "minipy/builtin_ids.h"
#include "support/diagnostics.h"

namespace chef::minipy {

using namespace chef::lowlevel;  // NOLINT
using interp::ConcreteStr;
using interp::ConcreteView;

namespace {

/// HLPC layout (§5.1): code-object id in the high bits, instruction offset
/// in the low bits.
uint64_t
MakeHlpc(int32_t code_id, size_t ip)
{
    return (static_cast<uint64_t>(code_id) << 20) |
           (static_cast<uint64_t>(ip) & 0xfffff);
}

PyRef
MakeClassObject(const std::string& name, PyRef base)
{
    auto object = std::make_shared<PyObject>(PyType::kClass);
    object->cls = std::make_shared<PyClass>();
    object->cls->name = name;
    object->cls->base = std::move(base);
    return object;
}

}  // namespace

Vm::Vm(lowlevel::LowLevelRuntime* rt, std::shared_ptr<Program> program,
       Options options)
    : rt_(rt),
      program_(std::move(program)),
      options_(options),
      str_ops_(rt, options.build),
      interns_(&str_ops_)
{
    RegisterBuiltins();
}

void
Vm::RegisterBuiltins()
{
    auto add_fn = [this](const std::string& name, int id) {
        auto object = std::make_shared<PyObject>(PyType::kBuiltin);
        object->builtin_id = id;
        builtins_[name] = object;
    };
    add_fn("len", kFnLen);
    add_fn("ord", kFnOrd);
    add_fn("chr", kFnChr);
    add_fn("str", kFnStr);
    add_fn("int", kFnInt);
    add_fn("bool", kFnBool);
    add_fn("range", kFnRange);
    add_fn("print", kFnPrint);
    add_fn("isinstance", kFnIsinstance);
    add_fn("min", kFnMin);
    add_fn("max", kFnMax);
    add_fn("abs", kFnAbs);
    add_fn("repr", kFnRepr);
    add_fn("list", kFnList);
    add_fn("dict", kFnDict);
    add_fn("tuple", kFnTuple);

    // Exception hierarchy.
    PyRef base_exception = MakeClassObject("BaseException", nullptr);
    builtins_["BaseException"] = base_exception;
    PyRef exception = MakeClassObject("Exception", base_exception);
    builtins_["Exception"] = exception;
    for (const char* name :
         {"ValueError", "TypeError", "KeyError", "IndexError",
          "AttributeError", "ZeroDivisionError", "AssertionError",
          "RuntimeError", "StopIteration", "NameError", "RecursionError",
          "NotImplementedError", "OverflowError"}) {
        builtins_[name] = MakeClassObject(name, exception);
    }
}

PyRef
Vm::BuiltinClass(const std::string& name)
{
    auto it = builtins_.find(name);
    CHEF_CHECK_MSG(it != builtins_.end(), "unknown builtin class");
    return it->second;
}

// ---------------------------------------------------------------------------
// Exceptions.
// ---------------------------------------------------------------------------

void
Vm::RaiseError(const std::string& class_name, const std::string& message)
{
    if (raised()) {
        return;  // First exception wins until handled.
    }
    PyRef cls = BuiltinClass(class_name);
    auto instance = std::make_shared<PyObject>(PyType::kInstance);
    instance->cls = cls->cls;
    instance->attrs["args"] = MakeTuple({MakeStrC(message)});
    current_exception_ = instance;
}

void
Vm::RaiseObject(const PyRef& exception)
{
    if (raised()) {
        return;
    }
    if (exception->type == PyType::kClass) {
        PyRef instance = InstantiateClass(exception, {});
        if (raised()) {
            return;
        }
        current_exception_ = instance;
        return;
    }
    if (exception->type == PyType::kInstance) {
        current_exception_ = exception;
        return;
    }
    RaiseError("TypeError", "exceptions must derive from BaseException");
}

std::string
Vm::ExceptionTypeName(const PyRef& exception) const
{
    if (exception && exception->cls) {
        return exception->cls->name;
    }
    return "<unknown>";
}

std::string
Vm::ExceptionMessage(const PyRef& exception)
{
    if (!exception) {
        return "";
    }
    auto it = exception->attrs.find("args");
    if (it == exception->attrs.end() || it->second->items.empty()) {
        return "";
    }
    const PyRef& first = it->second->items[0];
    if (first->type == PyType::kStr) {
        return ConcreteView(first->str);
    }
    return ConcreteView(ToStr(first));
}

bool
Vm::IsInstanceOf(const PyRef& value, const PyRef& cls)
{
    if (cls->type == PyType::kTuple) {
        for (const PyRef& entry : cls->items) {
            if (IsInstanceOf(value, entry)) {
                return true;
            }
        }
        return false;
    }
    if (cls->type != PyType::kClass) {
        return false;
    }
    // Builtin types spelled as classes.
    const std::string& name = cls->cls->name;
    switch (value->type) {
      case PyType::kInstance: {
        const PyClass* walk = value->cls.get();
        while (walk != nullptr) {
            if (walk->name == name) {
                return true;
            }
            walk = walk->base ? walk->base->cls.get() : nullptr;
        }
        return false;
      }
      case PyType::kInt:
        return name == "int";
      case PyType::kBool:
        return name == "bool" || name == "int";
      case PyType::kStr:
        return name == "str";
      case PyType::kList:
        return name == "list";
      case PyType::kTuple:
        return name == "tuple";
      case PyType::kDict:
        return name == "dict";
      default:
        return false;
    }
}

// ---------------------------------------------------------------------------
// Value operations.
// ---------------------------------------------------------------------------

SymValue
Vm::ValueEq(const PyRef& a, const PyRef& b)
{
    const bool a_num =
        a->type == PyType::kInt || a->type == PyType::kBool;
    const bool b_num =
        b->type == PyType::kInt || b->type == PyType::kBool;
    if (a_num && b_num) {
        return SvEq(a->num, b->num);
    }
    if (a->type != b->type) {
        return SymValue(0, 1);
    }
    switch (a->type) {
      case PyType::kNone:
        return SymValue(1, 1);
      case PyType::kStr:
        return str_ops_.Eq(a->str, b->str);
      case PyType::kList:
      case PyType::kTuple: {
        if (a->items.size() != b->items.size()) {
            return SymValue(0, 1);
        }
        for (size_t i = 0; i < a->items.size(); ++i) {
            if (!rt_->Branch(ValueEq(a->items[i], b->items[i]),
                             CHEF_LLPC)) {
                return SymValue(0, 1);
            }
            if (!rt_->running()) {
                return SymValue(0, 1);
            }
        }
        return SymValue(1, 1);
      }
      default:
        return SymValue(a.get() == b.get() ? 1 : 0, 1);
    }
}

SymValue
Vm::HashKey(const PyRef& key)
{
    switch (key->type) {
      case PyType::kInt:
      case PyType::kBool:
        if (options_.build.neutralize_hashes) {
            return SymValue(0, 64);
        }
        return key->num;
      case PyType::kStr:
        return str_ops_.Hash(key->str);
      case PyType::kNone:
        return SymValue(0, 64);
      case PyType::kTuple: {
        if (options_.build.neutralize_hashes) {
            return SymValue(0, 64);
        }
        SymValue h(0x345678, 64);
        for (const PyRef& item : key->items) {
            h = SvXor(SvMul(h, SymValue(1000003, 64)), HashKey(item));
            if (raised()) {
                return SymValue(0, 64);
            }
        }
        return h;
      }
      default:
        RaiseError("TypeError", std::string("unhashable type: '") +
                                    PyTypeName(key->type) + "'");
        return SymValue(0, 64);
    }
}

SymValue
Vm::Truthy(const PyRef& value)
{
    switch (value->type) {
      case PyType::kNone:
        return SymValue(0, 1);
      case PyType::kBool:
      case PyType::kInt:
        return SvNe(value->num, SymValue(0, 64));
      case PyType::kStr:
        return SymValue(value->str.empty() ? 0 : 1, 1);
      case PyType::kList:
      case PyType::kTuple:
        return SymValue(value->items.empty() ? 0 : 1, 1);
      case PyType::kDict:
        return SymValue(value->dict.size() == 0 ? 0 : 1, 1);
      default:
        return SymValue(1, 1);
    }
}

bool
Vm::DecideTruthy(const PyRef& value, uint64_t llpc)
{
    return rt_->Branch(Truthy(value), llpc);
}

SymStr
Vm::ToStr(const PyRef& value)
{
    switch (value->type) {
      case PyType::kNone:
        return ConcreteStr("None");
      case PyType::kBool:
        return ConcreteStr(value->num.concrete() ? "True" : "False");
      case PyType::kInt:
        return interp::FormatInt(rt_, value->num);
      case PyType::kStr:
        return value->str;
      case PyType::kClass:
        return ConcreteStr("<class '" + value->cls->name + "'>");
      case PyType::kFunction:
        return ConcreteStr("<function>");
      case PyType::kInstance: {
        // Exception instances stringify to their message.
        auto it = value->attrs.find("args");
        if (it != value->attrs.end() && !it->second->items.empty()) {
            return ToStr(it->second->items[0]);
        }
        return ConcreteStr("<" + value->cls->name + " object>");
      }
      default:
        return ToRepr(value);
    }
}

SymStr
Vm::ToRepr(const PyRef& value)
{
    switch (value->type) {
      case PyType::kStr: {
        // Classification of bytes for escaping is concrete-only: printing
        // is test output, not engine semantics (see vm.h).
        SymStr out = ConcreteStr("'");
        for (const SymValue& byte : value->str) {
            const uint8_t c = static_cast<uint8_t>(byte.concrete());
            if (c >= 0x20 && c < 0x7f && c != '\'' && c != '\\') {
                out.push_back(byte);
            } else if (c == '\n') {
                for (char e : {'\\', 'n'}) {
                    out.emplace_back(e, 8);
                }
            } else if (c == '\t') {
                for (char e : {'\\', 't'}) {
                    out.emplace_back(e, 8);
                }
            } else if (c == '\'' || c == '\\') {
                out.emplace_back('\\', 8);
                out.push_back(byte);
            } else {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\x%02x", c);
                for (const char* p = buffer; *p; ++p) {
                    out.emplace_back(*p, 8);
                }
            }
        }
        out.emplace_back('\'', 8);
        return out;
      }
      case PyType::kList:
      case PyType::kTuple: {
        const bool is_tuple = value->type == PyType::kTuple;
        SymStr out = ConcreteStr(is_tuple ? "(" : "[");
        for (size_t i = 0; i < value->items.size(); ++i) {
            if (i > 0) {
                for (char c : {',', ' '}) {
                    out.emplace_back(c, 8);
                }
            }
            const SymStr item = ToRepr(value->items[i]);
            out.insert(out.end(), item.begin(), item.end());
        }
        if (is_tuple && value->items.size() == 1) {
            out.emplace_back(',', 8);
        }
        out.emplace_back(is_tuple ? ')' : ']', 8);
        return out;
      }
      case PyType::kDict: {
        SymStr out = ConcreteStr("{");
        bool first = true;
        for (const auto& entry : value->dict.entries()) {
            if (!entry.alive) {
                continue;
            }
            if (!first) {
                for (char c : {',', ' '}) {
                    out.emplace_back(c, 8);
                }
            }
            first = false;
            const SymStr key = ToRepr(entry.key);
            out.insert(out.end(), key.begin(), key.end());
            for (char c : {':', ' '}) {
                out.emplace_back(c, 8);
            }
            const SymStr val = ToRepr(entry.value);
            out.insert(out.end(), val.begin(), val.end());
        }
        out.emplace_back('}', 8);
        return out;
      }
      default:
        return ToStr(value);
    }
}

// ---------------------------------------------------------------------------
// Integer results (bignum + small-int cache model).
// ---------------------------------------------------------------------------

PyRef
Vm::MakeArithInt(SymValue value)
{
    interp::NormalizeBignum(rt_, value);
    interp::SmallIntCacheLookup(rt_, value, options_.build);
    return MakeInt(value);
}

PyRef
Vm::MakeCharString(const SymValue& byte)
{
    // CPython returns a *cached* 1-character string object here; under
    // low-level symbolic execution the cache lookup makes the result's
    // identity depend on the byte value (a symbolic pointer). The vanilla
    // build models it with the interning table's hash + probe circuit;
    // the optimized build eliminates interning (§4.2, §5.1).
    if (!options_.build.avoid_symbolic_pointers && byte.IsSymbolic() &&
        rt_->running()) {
        interns_.Intern({byte});
    }
    return MakeStr({byte});
}

int64_t
Vm::ConcretizeStep(const SymValue& value)
{
    if (value.IsSymbolic()) {
        // Range steps must be concrete; pin the current value.
        return static_cast<int64_t>(rt_->Concretize(value));
    }
    return value.concrete_signed();
}

// ---------------------------------------------------------------------------
// Attribute / index / slice operations.
// ---------------------------------------------------------------------------

PyRef
Vm::LoadAttribute(const PyRef& object, const std::string& name)
{
    switch (object->type) {
      case PyType::kInstance: {
        auto it = object->attrs.find(name);
        if (it != object->attrs.end()) {
            return it->second;
        }
        // Class chain lookup; functions bind to the instance.
        const PyClass* walk = object->cls.get();
        while (walk != nullptr) {
            auto entry = walk->ns.find(name);
            if (entry != walk->ns.end()) {
                if (entry->second->type == PyType::kFunction) {
                    auto bound =
                        std::make_shared<PyObject>(PyType::kBoundMethod);
                    bound->self = object;
                    bound->callee = entry->second;
                    return bound;
                }
                return entry->second;
            }
            walk = walk->base ? walk->base->cls.get() : nullptr;
        }
        RaiseError("AttributeError",
                   "'" + object->cls->name + "' object has no attribute '" +
                       name + "'");
        return MakeNone();
      }
      case PyType::kClass: {
        const PyClass* walk = object->cls.get();
        while (walk != nullptr) {
            auto entry = walk->ns.find(name);
            if (entry != walk->ns.end()) {
                return entry->second;
            }
            walk = walk->base ? walk->base->cls.get() : nullptr;
        }
        RaiseError("AttributeError", "type object '" + object->cls->name +
                                         "' has no attribute '" + name +
                                         "'");
        return MakeNone();
      }
      case PyType::kStr:
      case PyType::kList:
      case PyType::kDict: {
        const int method = LookupBuiltinMethod(object->type, name);
        if (method == 0) {
            RaiseError("AttributeError",
                       std::string("'") + PyTypeName(object->type) +
                           "' object has no attribute '" + name + "'");
            return MakeNone();
        }
        auto bound = std::make_shared<PyObject>(PyType::kBoundMethod);
        bound->self = object;
        bound->builtin_id = method;
        return bound;
      }
      default:
        RaiseError("AttributeError",
                   std::string("'") + PyTypeName(object->type) +
                       "' object has no attribute '" + name + "'");
        return MakeNone();
    }
}

void
Vm::StoreAttribute(const PyRef& object, const std::string& name,
                   PyRef value)
{
    if (object->type == PyType::kInstance) {
        object->attrs[name] = std::move(value);
        return;
    }
    if (object->type == PyType::kClass) {
        object->cls->ns[name] = std::move(value);
        return;
    }
    RaiseError("AttributeError",
               std::string("cannot set attributes on '") +
                   PyTypeName(object->type) + "'");
}

bool
Vm::ResolveSequenceIndex(const PyRef& index, size_t length, uint64_t* out)
{
    if (index->type != PyType::kInt && index->type != PyType::kBool) {
        RaiseError("TypeError", "sequence index must be an integer");
        return false;
    }
    SymValue i = index->num;
    if (rt_->Branch(SvSlt(i, SymValue(0, 64)), CHEF_LLPC)) {
        i = SvAdd(i, SymValue(length, 64));
    }
    const SymValue in_bounds = SvBoolAnd(
        SvSge(i, SymValue(0, 64)), SvSlt(i, SymValue(length, 64)));
    if (!rt_->Branch(in_bounds, CHEF_LLPC)) {
        RaiseError("IndexError", "index out of range");
        return false;
    }
    *out = interp::ResolveIndex(rt_, i, length);
    return true;
}

PyRef
Vm::IndexLoad(const PyRef& object, const PyRef& index)
{
    switch (object->type) {
      case PyType::kList:
      case PyType::kTuple: {
        uint64_t position = 0;
        if (!ResolveSequenceIndex(index, object->items.size(),
                                  &position)) {
            return MakeNone();
        }
        return object->items[position];
      }
      case PyType::kStr: {
        uint64_t position = 0;
        if (!ResolveSequenceIndex(index, object->str.size(), &position)) {
            return MakeNone();
        }
        return MakeCharString(object->str[position]);
      }
      case PyType::kDict: {
        PyRef* slot = object->dict.Find(*this, index);
        if (raised()) {
            return MakeNone();
        }
        if (slot == nullptr) {
            RaiseError("KeyError", ConcreteView(ToRepr(index)));
            return MakeNone();
        }
        return *slot;
      }
      default:
        RaiseError("TypeError",
                   std::string("'") + PyTypeName(object->type) +
                       "' object is not subscriptable");
        return MakeNone();
    }
}

void
Vm::IndexStore(const PyRef& object, const PyRef& index, PyRef value)
{
    switch (object->type) {
      case PyType::kList: {
        uint64_t position = 0;
        if (!ResolveSequenceIndex(index, object->items.size(),
                                  &position)) {
            return;
        }
        object->items[position] = std::move(value);
        return;
      }
      case PyType::kDict:
        object->dict.Set(*this, index, std::move(value));
        return;
      default:
        RaiseError("TypeError",
                   std::string("'") + PyTypeName(object->type) +
                       "' object does not support item assignment");
    }
}

PyRef
Vm::SliceLoad(const PyRef& object, PyRef start, PyRef stop)
{
    size_t length = 0;
    if (object->type == PyType::kStr) {
        length = object->str.size();
    } else if (object->type == PyType::kList ||
               object->type == PyType::kTuple) {
        length = object->items.size();
    } else {
        RaiseError("TypeError", "object is not sliceable");
        return MakeNone();
    }

    auto resolve_bound = [this, length](const PyRef& bound,
                                        int64_t fallback) -> int64_t {
        if (bound == nullptr || bound->type == PyType::kNone) {
            return fallback;
        }
        SymValue v = bound->num;
        if (rt_->Branch(SvSlt(v, SymValue(0, 64)), CHEF_LLPC)) {
            v = SvAdd(v, SymValue(length, 64));
        }
        if (rt_->Branch(SvSlt(v, SymValue(0, 64)), CHEF_LLPC)) {
            return 0;
        }
        if (rt_->Branch(SvSgt(v, SymValue(length, 64)), CHEF_LLPC)) {
            return static_cast<int64_t>(length);
        }
        if (v.IsSymbolic()) {
            return static_cast<int64_t>(
                interp::ResolveIndex(rt_, v, length + 1));
        }
        return v.concrete_signed();
    };

    const int64_t begin = resolve_bound(start, 0);
    const int64_t end =
        resolve_bound(stop, static_cast<int64_t>(length));
    if (object->type == PyType::kStr) {
        SymStr out;
        for (int64_t i = begin; i < end; ++i) {
            out.push_back(object->str[static_cast<size_t>(i)]);
        }
        return MakeStr(std::move(out));
    }
    std::vector<PyRef> out;
    for (int64_t i = begin; i < end; ++i) {
        out.push_back(object->items[static_cast<size_t>(i)]);
    }
    return object->type == PyType::kTuple ? MakeTuple(std::move(out))
                                          : MakeList(std::move(out));
}

// ---------------------------------------------------------------------------
// Iteration.
// ---------------------------------------------------------------------------

PyRef
Vm::GetIter(const PyRef& iterable)
{
    auto iterator = std::make_shared<PyObject>(PyType::kIterator);
    switch (iterable->type) {
      case PyType::kList:
      case PyType::kTuple:
      case PyType::kStr:
        iterator->iter_target = iterable;
        return iterator;
      case PyType::kDict: {
        // Iterate a snapshot of the keys (insertion order).
        std::vector<PyRef> keys;
        for (const auto& entry : iterable->dict.entries()) {
            if (entry.alive) {
                keys.push_back(entry.key);
            }
        }
        iterator->iter_target = MakeList(std::move(keys));
        return iterator;
      }
      case PyType::kRange:
        iterator->iter_target = iterable;
        iterator->iter_value = iterable->range_start;
        return iterator;
      case PyType::kIterator:
        return iterable;
      default:
        RaiseError("TypeError",
                   std::string("'") + PyTypeName(iterable->type) +
                       "' object is not iterable");
        return MakeNone();
    }
}

PyRef
Vm::IterNext(const PyRef& iterator, bool* exhausted)
{
    *exhausted = false;
    PyRef target = iterator->iter_target;
    if (target->type == PyType::kRange) {
        const int64_t step = target->range_step;
        const SymValue more =
            step > 0 ? SvSlt(iterator->iter_value, target->range_stop)
                     : SvSgt(iterator->iter_value, target->range_stop);
        if (!rt_->Branch(more, CHEF_LLPC)) {
            *exhausted = true;
            return MakeNone();
        }
        PyRef value = MakeInt(iterator->iter_value);
        iterator->iter_value = SvAdd(
            iterator->iter_value,
            SymValue(static_cast<uint64_t>(step), 64));
        return value;
    }
    if (target->type == PyType::kStr) {
        if (iterator->iter_index >= target->str.size()) {
            *exhausted = true;
            return MakeNone();
        }
        return MakeCharString(target->str[iterator->iter_index++]);
    }
    if (iterator->iter_index >= target->items.size()) {
        *exhausted = true;
        return MakeNone();
    }
    return target->items[iterator->iter_index++];
}

// ---------------------------------------------------------------------------
// Functions, classes, calls.
// ---------------------------------------------------------------------------

PyRef
Vm::MakeFunctionObject(const CodeObject* code, std::vector<PyRef> defaults)
{
    auto object = std::make_shared<PyObject>(PyType::kFunction);
    object->func.code = code;
    object->func.defaults = std::move(defaults);
    return object;
}

PyRef
Vm::InstantiateClass(const PyRef& cls, std::vector<PyRef> args)
{
    auto instance = std::make_shared<PyObject>(PyType::kInstance);
    instance->cls = cls->cls;
    // Find __init__ along the chain.
    const PyClass* walk = cls->cls.get();
    PyRef init;
    while (walk != nullptr) {
        auto it = walk->ns.find("__init__");
        if (it != walk->ns.end()) {
            init = it->second;
            break;
        }
        walk = walk->base ? walk->base->cls.get() : nullptr;
    }
    if (init != nullptr) {
        std::vector<PyRef> call_args;
        call_args.push_back(instance);
        for (PyRef& arg : args) {
            call_args.push_back(std::move(arg));
        }
        CallCallable(init, std::move(call_args));
        if (raised()) {
            return MakeNone();
        }
        return instance;
    }
    // Default exception-style constructor: store args.
    instance->attrs["args"] = MakeTuple(std::move(args));
    return instance;
}

PyRef
Vm::CallCallable(const PyRef& callable, std::vector<PyRef> args)
{
    if (!rt_->running()) {
        return MakeNone();
    }
    switch (callable->type) {
      case PyType::kBuiltin:
        return CallBuiltinFunction(callable->builtin_id, args);
      case PyType::kBoundMethod: {
        if (callable->builtin_id != 0) {
            return CallBuiltinMethod(callable->self,
                                     callable->builtin_id, args);
        }
        std::vector<PyRef> with_self;
        with_self.push_back(callable->self);
        for (PyRef& arg : args) {
            with_self.push_back(std::move(arg));
        }
        return CallCallable(callable->callee, std::move(with_self));
      }
      case PyType::kClass:
        return InstantiateClass(callable, std::move(args));
      case PyType::kFunction: {
        const CodeObject* code = callable->func.code;
        const size_t num_params = code->params.size();
        const size_t required =
            num_params - callable->func.defaults.size();
        if (args.size() > num_params || args.size() < required) {
            RaiseError("TypeError",
                       code->name + "() takes " +
                           std::to_string(num_params) +
                           " arguments but got " +
                           std::to_string(args.size()));
            return MakeNone();
        }
        if (++call_depth_ > options_.max_recursion) {
            --call_depth_;
            RaiseError("RecursionError",
                       "maximum recursion depth exceeded");
            return MakeNone();
        }
        Frame frame;
        frame.code = code;
        frame.locals.resize(code->local_names.size());
        for (size_t i = 0; i < num_params; ++i) {
            if (i < args.size()) {
                frame.locals[i] = std::move(args[i]);
            } else {
                frame.locals[i] =
                    callable->func
                        .defaults[i - (num_params -
                                       callable->func.defaults.size())];
            }
        }
        PyRef result = RunFrame(frame);
        --call_depth_;
        return result ? result : MakeNone();
      }
      default:
        RaiseError("TypeError",
                   std::string("'") + PyTypeName(callable->type) +
                       "' object is not callable");
        return MakeNone();
    }
}

// ---------------------------------------------------------------------------
// Binary / comparison dispatch.
// ---------------------------------------------------------------------------

void
Vm::DispatchBinary(Frame& frame, BinOpKind kind)
{
    PyRef rhs = std::move(frame.stack.back());
    frame.stack.pop_back();
    PyRef lhs = std::move(frame.stack.back());
    frame.stack.pop_back();

    const bool lhs_num =
        lhs->type == PyType::kInt || lhs->type == PyType::kBool;
    const bool rhs_num =
        rhs->type == PyType::kInt || rhs->type == PyType::kBool;

    if (lhs_num && rhs_num) {
        const SymValue& a = lhs->num;
        const SymValue& b = rhs->num;
        switch (kind) {
          case BinOpKind::kAdd:
            frame.stack.push_back(MakeArithInt(SvAdd(a, b)));
            return;
          case BinOpKind::kSub:
            frame.stack.push_back(MakeArithInt(SvSub(a, b)));
            return;
          case BinOpKind::kMul:
            frame.stack.push_back(MakeArithInt(SvMul(a, b)));
            return;
          case BinOpKind::kDiv:
          case BinOpKind::kFloorDiv:
          case BinOpKind::kMod: {
            if (rt_->Branch(SvEq(b, SymValue(0, 64)), CHEF_LLPC)) {
                RaiseError("ZeroDivisionError",
                           "integer division or modulo by zero");
                frame.stack.push_back(MakeNone());
                return;
            }
            // Python floor semantics: round toward negative infinity.
            const SymValue q = SvSDiv(a, b);
            const SymValue r = SvSRem(a, b);
            const SymValue needs_adjust = SvBoolAnd(
                SvNe(r, SymValue(0, 64)),
                SvNe(SvSlt(a, SymValue(0, 64)),
                     SvSlt(b, SymValue(0, 64))));
            if (kind == BinOpKind::kMod) {
                const SymValue mod =
                    SvIte(needs_adjust, SvAdd(r, b), r);
                frame.stack.push_back(MakeArithInt(mod));
            } else {
                const SymValue div = SvIte(
                    needs_adjust, SvSub(q, SymValue(1, 64)), q);
                frame.stack.push_back(MakeArithInt(div));
            }
            return;
          }
          case BinOpKind::kAnd:
            frame.stack.push_back(MakeArithInt(SvAnd(a, b)));
            return;
          case BinOpKind::kOr:
            frame.stack.push_back(MakeArithInt(SvOr(a, b)));
            return;
          case BinOpKind::kXor:
            frame.stack.push_back(MakeArithInt(SvXor(a, b)));
            return;
          case BinOpKind::kShl:
            frame.stack.push_back(MakeArithInt(SvShl(a, b)));
            return;
          case BinOpKind::kShr:
            frame.stack.push_back(MakeArithInt(SvAShr(a, b)));
            return;
        }
    }

    if (kind == BinOpKind::kAdd) {
        if (lhs->type == PyType::kStr && rhs->type == PyType::kStr) {
            SymStr out = lhs->str;
            out.insert(out.end(), rhs->str.begin(), rhs->str.end());
            frame.stack.push_back(MakeStr(std::move(out)));
            return;
        }
        if (lhs->type == PyType::kList && rhs->type == PyType::kList) {
            std::vector<PyRef> out = lhs->items;
            out.insert(out.end(), rhs->items.begin(), rhs->items.end());
            frame.stack.push_back(MakeList(std::move(out)));
            return;
        }
        if (lhs->type == PyType::kTuple && rhs->type == PyType::kTuple) {
            std::vector<PyRef> out = lhs->items;
            out.insert(out.end(), rhs->items.begin(), rhs->items.end());
            frame.stack.push_back(MakeTuple(std::move(out)));
            return;
        }
    }
    if (kind == BinOpKind::kMul) {
        // str * int and list * int replication: a symbolic count is an
        // allocation whose size is input-dependent (paper Figure 6).
        const PyRef* seq = nullptr;
        const PyRef* count = nullptr;
        if ((lhs->type == PyType::kStr || lhs->type == PyType::kList) &&
            rhs_num) {
            seq = &lhs;
            count = &rhs;
        } else if ((rhs->type == PyType::kStr ||
                    rhs->type == PyType::kList) &&
                   lhs_num) {
            seq = &rhs;
            count = &lhs;
        }
        if (seq != nullptr) {
            const uint64_t n = interp::ResolveAllocationSize(
                rt_, (*count)->num, options_.build, 4096);
            if ((*seq)->type == PyType::kStr) {
                SymStr out;
                for (uint64_t i = 0; i < n; ++i) {
                    out.insert(out.end(), (*seq)->str.begin(),
                               (*seq)->str.end());
                }
                frame.stack.push_back(MakeStr(std::move(out)));
            } else {
                std::vector<PyRef> out;
                for (uint64_t i = 0; i < n; ++i) {
                    out.insert(out.end(), (*seq)->items.begin(),
                               (*seq)->items.end());
                }
                frame.stack.push_back(MakeList(std::move(out)));
            }
            return;
        }
    }
    if (kind == BinOpKind::kMod && lhs->type == PyType::kStr) {
        RaiseError("TypeError",
                   "%-formatting is not supported by MiniPy; use str() "
                   "and concatenation");
        frame.stack.push_back(MakeNone());
        return;
    }
    RaiseError("TypeError",
               std::string("unsupported operand types: '") +
                   PyTypeName(lhs->type) + "' and '" +
                   PyTypeName(rhs->type) + "'");
    frame.stack.push_back(MakeNone());
}

void
Vm::DispatchCompare(Frame& frame, CmpOpKind kind)
{
    PyRef rhs = std::move(frame.stack.back());
    frame.stack.pop_back();
    PyRef lhs = std::move(frame.stack.back());
    frame.stack.pop_back();

    auto push_bool = [&frame](SymValue value) {
        frame.stack.push_back(MakeBool(value));
    };

    switch (kind) {
      case CmpOpKind::kEq:
        push_bool(ValueEq(lhs, rhs));
        return;
      case CmpOpKind::kNe:
        push_bool(SvBoolNot(ValueEq(lhs, rhs)));
        return;
      case CmpOpKind::kIs:
        push_bool(SymValue(
            lhs.get() == rhs.get() ||
                    (lhs->type == PyType::kNone &&
                     rhs->type == PyType::kNone)
                ? 1
                : 0,
            1));
        return;
      case CmpOpKind::kIsNot:
        push_bool(SymValue(
            lhs.get() == rhs.get() ||
                    (lhs->type == PyType::kNone &&
                     rhs->type == PyType::kNone)
                ? 0
                : 1,
            1));
        return;
      case CmpOpKind::kIn:
      case CmpOpKind::kNotIn: {
        SymValue contains(0, 1);
        if (rhs->type == PyType::kStr) {
            if (lhs->type != PyType::kStr) {
                RaiseError("TypeError",
                           "'in <string>' requires string operand");
                frame.stack.push_back(MakeNone());
                return;
            }
            contains = SymValue(
                str_ops_.Find(rhs->str, lhs->str) >= 0 ? 1 : 0, 1);
        } else if (rhs->type == PyType::kList ||
                   rhs->type == PyType::kTuple) {
            for (const PyRef& item : rhs->items) {
                if (rt_->Branch(ValueEq(item, lhs), CHEF_LLPC)) {
                    contains = SymValue(1, 1);
                    break;
                }
                if (!rt_->running()) {
                    break;
                }
            }
        } else if (rhs->type == PyType::kDict) {
            contains = SymValue(
                rhs->dict.Find(*this, lhs) != nullptr ? 1 : 0, 1);
            if (raised()) {
                frame.stack.push_back(MakeNone());
                return;
            }
        } else {
            RaiseError("TypeError",
                       std::string("argument of type '") +
                           PyTypeName(rhs->type) + "' is not iterable");
            frame.stack.push_back(MakeNone());
            return;
        }
        if (kind == CmpOpKind::kNotIn) {
            contains = SvBoolNot(contains);
        }
        push_bool(contains);
        return;
      }
      default:
        break;
    }

    // Ordering comparisons.
    const bool lhs_num =
        lhs->type == PyType::kInt || lhs->type == PyType::kBool;
    const bool rhs_num =
        rhs->type == PyType::kInt || rhs->type == PyType::kBool;
    if (lhs_num && rhs_num) {
        switch (kind) {
          case CmpOpKind::kLt: push_bool(SvSlt(lhs->num, rhs->num)); return;
          case CmpOpKind::kLe: push_bool(SvSle(lhs->num, rhs->num)); return;
          case CmpOpKind::kGt: push_bool(SvSgt(lhs->num, rhs->num)); return;
          case CmpOpKind::kGe: push_bool(SvSge(lhs->num, rhs->num)); return;
          default: break;
        }
    }
    if (lhs->type == PyType::kStr && rhs->type == PyType::kStr) {
        const int ordering = str_ops_.Compare(lhs->str, rhs->str);
        bool result = false;
        switch (kind) {
          case CmpOpKind::kLt: result = ordering < 0; break;
          case CmpOpKind::kLe: result = ordering <= 0; break;
          case CmpOpKind::kGt: result = ordering > 0; break;
          case CmpOpKind::kGe: result = ordering >= 0; break;
          default: break;
        }
        push_bool(SymValue(result ? 1 : 0, 1));
        return;
    }
    RaiseError("TypeError",
               std::string("'<' not supported between instances of '") +
                   PyTypeName(lhs->type) + "' and '" +
                   PyTypeName(rhs->type) + "'");
    frame.stack.push_back(MakeNone());
}

// ---------------------------------------------------------------------------
// The dispatch loop.
// ---------------------------------------------------------------------------

PyRef
Vm::RunFrame(Frame& frame)
{
    std::unordered_map<std::string, PyRef> class_namespace;
    if (frame.ns == nullptr && !frame.code->is_function) {
        frame.ns = &class_namespace;
    }

    const std::vector<Instr>& instrs = frame.code->instrs;
    while (frame.ip < instrs.size()) {
        if (!rt_->running()) {
            return nullptr;
        }
        const Instr& instr = instrs[frame.ip];
        // The paper's log_pc instrumentation: one call at the head of the
        // dispatch loop (§4.1, §5.1).
        rt_->LogPc(MakeHlpc(frame.code->id, frame.ip),
                   static_cast<uint32_t>(instr.op));
        if (options_.coverage && instr.line > 0) {
            covered_lines_.insert(instr.line);
        }
        ++frame.ip;

        switch (instr.op) {
          case Op::kNop:
            break;
          case Op::kLoadConst: {
            const Const& constant = frame.code->consts[instr.arg];
            switch (constant.kind) {
              case Const::Kind::kNone:
                frame.stack.push_back(MakeNone());
                break;
              case Const::Kind::kBool:
                frame.stack.push_back(
                    MakeBool(SymValue(constant.int_value, 1)));
                break;
              case Const::Kind::kInt:
                frame.stack.push_back(MakeInt64(constant.int_value));
                break;
              case Const::Kind::kStr: {
                PyRef value = MakeStrC(constant.str_value);
                // CPython interns short identifier-like strings; the
                // optimized build removes interning.
                if (!options_.build.avoid_symbolic_pointers &&
                    value->str.size() <= 8) {
                    interns_.Intern(value->str);
                }
                frame.stack.push_back(std::move(value));
                break;
              }
              case Const::Kind::kCode:
                frame.stack.push_back(MakeInt64(constant.code_id));
                break;
            }
            break;
          }
          case Op::kLoadLocal: {
            PyRef value = frame.locals[instr.arg];
            if (value == nullptr) {
                RaiseError("NameError",
                           "local variable '" +
                               frame.code->local_names[instr.arg] +
                               "' referenced before assignment");
                break;
            }
            frame.stack.push_back(std::move(value));
            break;
          }
          case Op::kStoreLocal:
            frame.locals[instr.arg] = std::move(frame.stack.back());
            frame.stack.pop_back();
            break;
          case Op::kLoadName: {
            const std::string& name = frame.code->names[instr.arg];
            auto local = frame.ns->find(name);
            if (local != frame.ns->end()) {
                frame.stack.push_back(local->second);
                break;
            }
            auto global = globals_.find(name);
            if (global != globals_.end()) {
                frame.stack.push_back(global->second);
                break;
            }
            auto builtin = builtins_.find(name);
            if (builtin != builtins_.end()) {
                frame.stack.push_back(builtin->second);
                break;
            }
            RaiseError("NameError",
                       "name '" + name + "' is not defined");
            break;
          }
          case Op::kStoreName:
            (*frame.ns)[frame.code->names[instr.arg]] =
                std::move(frame.stack.back());
            frame.stack.pop_back();
            break;
          case Op::kLoadGlobal: {
            const std::string& name = frame.code->names[instr.arg];
            auto global = globals_.find(name);
            if (global != globals_.end()) {
                frame.stack.push_back(global->second);
                break;
            }
            auto builtin = builtins_.find(name);
            if (builtin != builtins_.end()) {
                frame.stack.push_back(builtin->second);
                break;
            }
            RaiseError("NameError",
                       "name '" + name + "' is not defined");
            break;
          }
          case Op::kStoreGlobal:
            globals_[frame.code->names[instr.arg]] =
                std::move(frame.stack.back());
            frame.stack.pop_back();
            break;
          case Op::kBinaryOp:
            DispatchBinary(frame, static_cast<BinOpKind>(instr.arg));
            break;
          case Op::kUnaryOp: {
            PyRef value = std::move(frame.stack.back());
            frame.stack.pop_back();
            switch (static_cast<UnOpKind>(instr.arg)) {
              case UnOpKind::kNeg:
                if (value->type != PyType::kInt &&
                    value->type != PyType::kBool) {
                    RaiseError("TypeError", "bad operand for unary -");
                    break;
                }
                frame.stack.push_back(MakeArithInt(SvNeg(value->num)));
                break;
              case UnOpKind::kInvert:
                if (value->type != PyType::kInt &&
                    value->type != PyType::kBool) {
                    RaiseError("TypeError", "bad operand for unary ~");
                    break;
                }
                frame.stack.push_back(MakeArithInt(SvNot(value->num)));
                break;
              case UnOpKind::kNot:
                frame.stack.push_back(MakeBool(SvBoolNot(Truthy(value))));
                break;
            }
            break;
          }
          case Op::kCompareOp:
            DispatchCompare(frame, static_cast<CmpOpKind>(instr.arg));
            break;
          case Op::kJump:
            frame.ip = static_cast<size_t>(instr.arg);
            break;
          case Op::kPopJumpIfFalse: {
            PyRef value = std::move(frame.stack.back());
            frame.stack.pop_back();
            if (!DecideTruthy(value, CHEF_LLPC)) {
                frame.ip = static_cast<size_t>(instr.arg);
            }
            break;
          }
          case Op::kPopJumpIfTrue: {
            PyRef value = std::move(frame.stack.back());
            frame.stack.pop_back();
            if (DecideTruthy(value, CHEF_LLPC)) {
                frame.ip = static_cast<size_t>(instr.arg);
            }
            break;
          }
          case Op::kJumpIfFalseOrPop: {
            if (!DecideTruthy(frame.stack.back(), CHEF_LLPC)) {
                frame.ip = static_cast<size_t>(instr.arg);
            } else {
                frame.stack.pop_back();
            }
            break;
          }
          case Op::kJumpIfTrueOrPop: {
            if (DecideTruthy(frame.stack.back(), CHEF_LLPC)) {
                frame.ip = static_cast<size_t>(instr.arg);
            } else {
                frame.stack.pop_back();
            }
            break;
          }
          case Op::kPop:
            frame.stack.pop_back();
            break;
          case Op::kDup:
            frame.stack.push_back(frame.stack.back());
            break;
          case Op::kRot2:
            std::swap(frame.stack[frame.stack.size() - 1],
                      frame.stack[frame.stack.size() - 2]);
            break;
          case Op::kBuildList:
          case Op::kBuildTuple: {
            std::vector<PyRef> items(
                frame.stack.end() - instr.arg, frame.stack.end());
            frame.stack.resize(frame.stack.size() - instr.arg);
            frame.stack.push_back(instr.op == Op::kBuildList
                                      ? MakeList(std::move(items))
                                      : MakeTuple(std::move(items)));
            break;
          }
          case Op::kBuildDict: {
            PyRef dict = MakeDict();
            const size_t base = frame.stack.size() -
                                2 * static_cast<size_t>(instr.arg);
            for (int i = 0; i < instr.arg; ++i) {
                dict->dict.Set(*this, frame.stack[base + 2 * i],
                               frame.stack[base + 2 * i + 1]);
                if (raised()) {
                    break;
                }
            }
            frame.stack.resize(base);
            frame.stack.push_back(std::move(dict));
            break;
          }
          case Op::kIndexLoad: {
            PyRef index = std::move(frame.stack.back());
            frame.stack.pop_back();
            PyRef object = std::move(frame.stack.back());
            frame.stack.pop_back();
            frame.stack.push_back(IndexLoad(object, index));
            break;
          }
          case Op::kIndexStore: {
            PyRef index = std::move(frame.stack.back());
            frame.stack.pop_back();
            PyRef object = std::move(frame.stack.back());
            frame.stack.pop_back();
            PyRef value = std::move(frame.stack.back());
            frame.stack.pop_back();
            IndexStore(object, index, std::move(value));
            break;
          }
          case Op::kSliceLoad: {
            PyRef stop;
            PyRef start;
            if (instr.arg & 2) {
                stop = std::move(frame.stack.back());
                frame.stack.pop_back();
            }
            if (instr.arg & 1) {
                start = std::move(frame.stack.back());
                frame.stack.pop_back();
            }
            PyRef object = std::move(frame.stack.back());
            frame.stack.pop_back();
            frame.stack.push_back(SliceLoad(object, start, stop));
            break;
          }
          case Op::kLoadAttr: {
            PyRef object = std::move(frame.stack.back());
            frame.stack.pop_back();
            frame.stack.push_back(
                LoadAttribute(object, frame.code->names[instr.arg]));
            break;
          }
          case Op::kStoreAttr: {
            PyRef object = std::move(frame.stack.back());
            frame.stack.pop_back();
            PyRef value = std::move(frame.stack.back());
            frame.stack.pop_back();
            StoreAttribute(object, frame.code->names[instr.arg],
                           std::move(value));
            break;
          }
          case Op::kCall: {
            const int argc = instr.arg & 0xffff;
            const int kwc = (instr.arg >> 16) & 0xffff;
            // Keyword pairs are on top: name const, value, repeated.
            std::vector<std::pair<std::string, PyRef>> kwargs;
            for (int i = 0; i < kwc; ++i) {
                PyRef value = std::move(frame.stack.back());
                frame.stack.pop_back();
                PyRef name = std::move(frame.stack.back());
                frame.stack.pop_back();
                kwargs.emplace_back(ConcreteView(name->str),
                                    std::move(value));
            }
            std::vector<PyRef> args(frame.stack.end() - argc,
                                    frame.stack.end());
            frame.stack.resize(frame.stack.size() - argc);
            PyRef callable = std::move(frame.stack.back());
            frame.stack.pop_back();

            if (!kwargs.empty()) {
                // Resolve the target user function so keywords can be
                // mapped onto parameter slots.
                PyRef target = callable;
                size_t param_offset = 0;
                if (target->type == PyType::kBoundMethod &&
                    target->builtin_id == 0) {
                    target = target->callee;
                    param_offset = 1;  // self
                }
                PyRef function = target;
                if (target->type == PyType::kClass) {
                    const PyClass* walk = target->cls.get();
                    function = nullptr;
                    while (walk != nullptr) {
                        auto it = walk->ns.find("__init__");
                        if (it != walk->ns.end() &&
                            it->second->type == PyType::kFunction) {
                            function = it->second;
                            param_offset = 1;  // self
                            break;
                        }
                        walk = walk->base ? walk->base->cls.get()
                                          : nullptr;
                    }
                }
                if (function == nullptr ||
                    function->type != PyType::kFunction) {
                    RaiseError("TypeError",
                               "keyword arguments are only supported "
                               "for user-defined callables");
                    frame.stack.push_back(MakeNone());
                    break;
                }
                const CodeObject* code = function->func.code;
                const size_t nparams =
                    code->params.size() - param_offset;
                std::vector<PyRef> slots(nparams);
                bool kw_error = false;
                if (args.size() > nparams) {
                    RaiseError("TypeError", "too many positional "
                                            "arguments");
                    kw_error = true;
                }
                for (size_t i = 0; !kw_error && i < args.size(); ++i) {
                    slots[i] = std::move(args[i]);
                }
                for (auto& [name, value] : kwargs) {
                    if (kw_error) {
                        break;
                    }
                    size_t position = SIZE_MAX;
                    for (size_t p = param_offset;
                         p < code->params.size(); ++p) {
                        if (code->params[p] == name) {
                            position = p - param_offset;
                            break;
                        }
                    }
                    if (position == SIZE_MAX) {
                        RaiseError("TypeError",
                                   "unexpected keyword argument '" +
                                       name + "'");
                        kw_error = true;
                    } else if (slots[position] != nullptr) {
                        RaiseError("TypeError",
                                   "got multiple values for argument "
                                   "'" + name + "'");
                        kw_error = true;
                    } else {
                        slots[position] = std::move(value);
                    }
                }
                if (!kw_error) {
                    const size_t defaults_start =
                        nparams - function->func.defaults.size();
                    for (size_t i = 0; i < nparams; ++i) {
                        if (slots[i] != nullptr) {
                            continue;
                        }
                        if (i >= defaults_start) {
                            slots[i] = function->func
                                           .defaults[i - defaults_start];
                        } else {
                            RaiseError("TypeError",
                                       "missing required argument '" +
                                           code->params[param_offset +
                                                        i] + "'");
                            kw_error = true;
                            break;
                        }
                    }
                }
                if (kw_error) {
                    frame.stack.push_back(MakeNone());
                    break;
                }
                frame.stack.push_back(
                    CallCallable(callable, std::move(slots)));
                break;
            }
            frame.stack.push_back(CallCallable(callable, std::move(args)));
            break;
          }
          case Op::kReturn: {
            PyRef value = std::move(frame.stack.back());
            frame.stack.pop_back();
            return value;
          }
          case Op::kGetIter: {
            PyRef iterable = std::move(frame.stack.back());
            frame.stack.pop_back();
            frame.stack.push_back(GetIter(iterable));
            break;
          }
          case Op::kForIter: {
            bool exhausted = false;
            PyRef value = IterNext(frame.stack.back(), &exhausted);
            if (raised()) {
                break;
            }
            if (exhausted) {
                frame.stack.pop_back();  // Drop the iterator.
                frame.ip = static_cast<size_t>(instr.arg);
            } else {
                frame.stack.push_back(std::move(value));
            }
            break;
          }
          case Op::kUnpack: {
            PyRef sequence = std::move(frame.stack.back());
            frame.stack.pop_back();
            if (sequence->type != PyType::kList &&
                sequence->type != PyType::kTuple) {
                RaiseError("TypeError", "cannot unpack non-sequence");
                break;
            }
            if (sequence->items.size() !=
                static_cast<size_t>(instr.arg)) {
                RaiseError("ValueError",
                           "unpack expected " +
                               std::to_string(instr.arg) +
                               " values, got " +
                               std::to_string(sequence->items.size()));
                break;
            }
            // Push in reverse so targets store left-to-right.
            for (size_t i = sequence->items.size(); i > 0; --i) {
                frame.stack.push_back(sequence->items[i - 1]);
            }
            break;
          }
          case Op::kMakeFunction: {
            const int code_const = instr.arg & 0xffff;
            const int defaults_count = (instr.arg >> 16) & 0xffff;
            const Const& constant = frame.code->consts[code_const];
            std::vector<PyRef> defaults(
                frame.stack.end() - defaults_count, frame.stack.end());
            frame.stack.resize(frame.stack.size() - defaults_count);
            frame.stack.push_back(MakeFunctionObject(
                program_->code[constant.code_id].get(),
                std::move(defaults)));
            break;
          }
          case Op::kMakeClass: {
            // Stack: base-or-None, code-const-int.
            PyRef code_ref = std::move(frame.stack.back());
            frame.stack.pop_back();
            PyRef base = std::move(frame.stack.back());
            frame.stack.pop_back();
            // The code constant pushes the code-object id itself.
            const CodeObject* body =
                program_->code[static_cast<size_t>(
                                   code_ref->num.concrete())]
                    .get();
            if (base->type == PyType::kNone) {
                base = nullptr;
            } else if (base->type != PyType::kClass) {
                RaiseError("TypeError", "base must be a class");
                break;
            }
            PyRef cls = MakeClassObject(
                frame.code->names[instr.arg], base);
            // Execute the class body with the class namespace.
            Frame class_frame;
            class_frame.code = body;
            class_frame.ns = &cls->cls->ns;
            RunFrame(class_frame);
            if (raised()) {
                break;
            }
            frame.stack.push_back(std::move(cls));
            break;
          }
          case Op::kSetupExcept:
            frame.blocks.push_back(
                {instr.arg, frame.stack.size()});
            break;
          case Op::kPopBlock:
            frame.blocks.pop_back();
            break;
          case Op::kRaise: {
            PyRef value = std::move(frame.stack.back());
            frame.stack.pop_back();
            if (instr.arg == 0) {
                // Internal re-raise: value is the exception instance.
                current_exception_ = value;
            } else {
                RaiseObject(value);
            }
            break;
          }
          case Op::kExcMatch: {
            PyRef cls = std::move(frame.stack.back());
            frame.stack.pop_back();
            const bool matches =
                IsInstanceOf(frame.stack.back(), cls);
            frame.stack.push_back(
                MakeBool(SymValue(matches ? 1 : 0, 1)));
            break;
          }
          default:
            CHEF_UNREACHABLE("unhandled opcode");
        }

        // Exception unwinding.
        if (raised()) {
            if (frame.blocks.empty()) {
                return nullptr;  // Propagate to the caller.
            }
            const Frame::Block block = frame.blocks.back();
            frame.blocks.pop_back();
            frame.stack.resize(block.stack_size);
            frame.stack.push_back(current_exception_);
            ClearException();
            frame.ip = static_cast<size_t>(block.handler);
        }
    }
    return MakeNone();
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

VmOutcome
Vm::RunModule()
{
    Frame frame;
    frame.code = program_->code[0].get();
    frame.ns = &globals_;
    ClearException();
    RunFrame(frame);
    VmOutcome outcome;
    if (!rt_->running()) {
        outcome.ok = false;
        outcome.aborted = true;
        return outcome;
    }
    if (raised()) {
        outcome.ok = false;
        outcome.exception_type = ExceptionTypeName(current_exception_);
        outcome.exception_message = ExceptionMessage(current_exception_);
        ClearException();
        return outcome;
    }
    module_ran_ = true;
    return outcome;
}

VmOutcome
Vm::CallGlobal(const std::string& name, std::vector<PyRef> args,
               PyRef* result)
{
    VmOutcome outcome;
    auto it = globals_.find(name);
    if (it == globals_.end()) {
        outcome.ok = false;
        outcome.exception_type = "NameError";
        outcome.exception_message = "name '" + name + "' is not defined";
        return outcome;
    }
    PyRef value = CallCallable(it->second, std::move(args));
    if (!rt_->running()) {
        outcome.ok = false;
        outcome.aborted = true;
        return outcome;
    }
    if (raised()) {
        outcome.ok = false;
        outcome.exception_type = ExceptionTypeName(current_exception_);
        outcome.exception_message = ExceptionMessage(current_exception_);
        ClearException();
        return outcome;
    }
    if (result != nullptr) {
        *result = std::move(value);
    }
    return outcome;
}

}  // namespace chef::minipy
