#ifndef CHEF_MINIPY_LEXER_H_
#define CHEF_MINIPY_LEXER_H_

/// \file
/// MiniPy lexer: tokenizes Python-style source with significant
/// indentation (INDENT/DEDENT tokens), line continuation inside brackets,
/// and comments.

#include <cstdint>
#include <string>
#include <vector>

namespace chef::minipy {

enum class TokKind : uint8_t {
    kEof,
    kNewline,
    kIndent,
    kDedent,
    kName,
    kInt,
    kString,
    // Punctuation and operators.
    kLParen, kRParen, kLBracket, kRBracket, kLBrace, kRBrace,
    kComma, kColon, kSemicolon, kDot,
    kAssign,          // =
    kPlus, kMinus, kStar, kSlash, kSlashSlash, kPercent,
    kAmp, kPipe, kCaret, kTilde, kShl, kShr,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kPlusEq, kMinusEq, kStarEq, kSlashEq, kSlashSlashEq, kPercentEq,
    kAmpEq, kPipeEq,
    // Keywords.
    kKwDef, kKwReturn, kKwIf, kKwElif, kKwElse, kKwWhile, kKwFor, kKwIn,
    kKwNot, kKwAnd, kKwOr, kKwBreak, kKwContinue, kKwPass, kKwRaise,
    kKwTry, kKwExcept, kKwFinally, kKwAs, kKwClass, kKwNone, kKwTrue,
    kKwFalse, kKwAssert, kKwIs, kKwDel, kKwGlobal, kKwImport, kKwFrom,
    kKwLambda,
};

const char* TokKindName(TokKind kind);

struct Token {
    TokKind kind = TokKind::kEof;
    std::string text;     ///< Name text or decoded string literal.
    int64_t int_value = 0;
    int line = 0;
    int column = 0;
};

/// Result of lexing: tokens or an error message with position.
struct LexResult {
    bool ok = true;
    std::string error;
    int error_line = 0;
    std::vector<Token> tokens;
};

/// Tokenizes MiniPy source. Tabs in indentation count as 8 columns.
LexResult Lex(const std::string& source);

}  // namespace chef::minipy

#endif  // CHEF_MINIPY_LEXER_H_
