#ifndef CHEF_MINIPY_BUILTIN_IDS_H_
#define CHEF_MINIPY_BUILTIN_IDS_H_

/// \file
/// Identifiers for builtin functions and builtin methods (shared between
/// the VM dispatch and the builtin library implementation).

namespace chef::minipy {

enum BuiltinFn : int {
    kFnLen = 1,
    kFnOrd,
    kFnChr,
    kFnStr,
    kFnInt,
    kFnBool,
    kFnRange,
    kFnPrint,
    kFnIsinstance,
    kFnMin,
    kFnMax,
    kFnAbs,
    kFnRepr,
    kFnList,
    kFnDict,
    kFnTuple,
};

enum BuiltinMethod : int {
    // str methods.
    kStrFind = 100,
    kStrSplit,
    kStrStrip,
    kStrLstrip,
    kStrRstrip,
    kStrStartswith,
    kStrEndswith,
    kStrLower,
    kStrUpper,
    kStrJoin,
    kStrReplace,
    kStrCount,
    kStrIsdigit,
    kStrIsalpha,
    kStrIsspace,
    kStrIndex,
    // list methods.
    kListAppend = 200,
    kListPop,
    kListExtend,
    kListInsert,
    kListIndex,
    kListRemove,
    kListReverse,
    kListCount,
    // dict methods.
    kDictGet = 300,
    kDictKeys,
    kDictValues,
    kDictItems,
    kDictSetdefault,
    kDictPop,
    kDictUpdate,
};

}  // namespace chef::minipy

#endif  // CHEF_MINIPY_BUILTIN_IDS_H_
