#include "minipy/lexer.h"

#include <cctype>
#include <unordered_map>

namespace chef::minipy {

const char*
TokKindName(TokKind kind)
{
    switch (kind) {
      case TokKind::kEof: return "eof";
      case TokKind::kNewline: return "newline";
      case TokKind::kIndent: return "indent";
      case TokKind::kDedent: return "dedent";
      case TokKind::kName: return "name";
      case TokKind::kInt: return "int";
      case TokKind::kString: return "string";
      case TokKind::kLParen: return "(";
      case TokKind::kRParen: return ")";
      case TokKind::kLBracket: return "[";
      case TokKind::kRBracket: return "]";
      case TokKind::kLBrace: return "{";
      case TokKind::kRBrace: return "}";
      case TokKind::kComma: return ",";
      case TokKind::kColon: return ":";
      case TokKind::kSemicolon: return ";";
      case TokKind::kDot: return ".";
      case TokKind::kAssign: return "=";
      case TokKind::kPlus: return "+";
      case TokKind::kMinus: return "-";
      case TokKind::kStar: return "*";
      case TokKind::kSlash: return "/";
      case TokKind::kSlashSlash: return "//";
      case TokKind::kPercent: return "%";
      case TokKind::kAmp: return "&";
      case TokKind::kPipe: return "|";
      case TokKind::kCaret: return "^";
      case TokKind::kTilde: return "~";
      case TokKind::kShl: return "<<";
      case TokKind::kShr: return ">>";
      case TokKind::kEq: return "==";
      case TokKind::kNe: return "!=";
      case TokKind::kLt: return "<";
      case TokKind::kLe: return "<=";
      case TokKind::kGt: return ">";
      case TokKind::kGe: return ">=";
      case TokKind::kPlusEq: return "+=";
      case TokKind::kMinusEq: return "-=";
      case TokKind::kStarEq: return "*=";
      case TokKind::kSlashEq: return "/=";
      case TokKind::kSlashSlashEq: return "//=";
      case TokKind::kPercentEq: return "%=";
      case TokKind::kAmpEq: return "&=";
      case TokKind::kPipeEq: return "|=";
      case TokKind::kKwDef: return "def";
      case TokKind::kKwReturn: return "return";
      case TokKind::kKwIf: return "if";
      case TokKind::kKwElif: return "elif";
      case TokKind::kKwElse: return "else";
      case TokKind::kKwWhile: return "while";
      case TokKind::kKwFor: return "for";
      case TokKind::kKwIn: return "in";
      case TokKind::kKwNot: return "not";
      case TokKind::kKwAnd: return "and";
      case TokKind::kKwOr: return "or";
      case TokKind::kKwBreak: return "break";
      case TokKind::kKwContinue: return "continue";
      case TokKind::kKwPass: return "pass";
      case TokKind::kKwRaise: return "raise";
      case TokKind::kKwTry: return "try";
      case TokKind::kKwExcept: return "except";
      case TokKind::kKwFinally: return "finally";
      case TokKind::kKwAs: return "as";
      case TokKind::kKwClass: return "class";
      case TokKind::kKwNone: return "None";
      case TokKind::kKwTrue: return "True";
      case TokKind::kKwFalse: return "False";
      case TokKind::kKwAssert: return "assert";
      case TokKind::kKwIs: return "is";
      case TokKind::kKwDel: return "del";
      case TokKind::kKwGlobal: return "global";
      case TokKind::kKwImport: return "import";
      case TokKind::kKwFrom: return "from";
      case TokKind::kKwLambda: return "lambda";
    }
    return "?";
}

namespace {

const std::unordered_map<std::string, TokKind>&
Keywords()
{
    static const std::unordered_map<std::string, TokKind> keywords = {
        {"def", TokKind::kKwDef},         {"return", TokKind::kKwReturn},
        {"if", TokKind::kKwIf},           {"elif", TokKind::kKwElif},
        {"else", TokKind::kKwElse},       {"while", TokKind::kKwWhile},
        {"for", TokKind::kKwFor},         {"in", TokKind::kKwIn},
        {"not", TokKind::kKwNot},         {"and", TokKind::kKwAnd},
        {"or", TokKind::kKwOr},           {"break", TokKind::kKwBreak},
        {"continue", TokKind::kKwContinue}, {"pass", TokKind::kKwPass},
        {"raise", TokKind::kKwRaise},     {"try", TokKind::kKwTry},
        {"except", TokKind::kKwExcept},   {"finally", TokKind::kKwFinally},
        {"as", TokKind::kKwAs},           {"class", TokKind::kKwClass},
        {"None", TokKind::kKwNone},       {"True", TokKind::kKwTrue},
        {"False", TokKind::kKwFalse},     {"assert", TokKind::kKwAssert},
        {"is", TokKind::kKwIs},           {"del", TokKind::kKwDel},
        {"global", TokKind::kKwGlobal},   {"import", TokKind::kKwImport},
        {"from", TokKind::kKwFrom},       {"lambda", TokKind::kKwLambda},
    };
    return keywords;
}

class Lexer
{
  public:
    explicit Lexer(const std::string& source) : src_(source) {}

    LexResult Run();

  private:
    char Peek(int ahead = 0) const
    {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }
    char Get()
    {
        const char c = Peek();
        ++pos_;
        if (c == '\n') {
            ++line_;
            line_start_ = pos_;
        }
        return c;
    }
    int Column() const { return static_cast<int>(pos_ - line_start_) + 1; }

    void Error(const std::string& message)
    {
        if (result_.ok) {
            result_.ok = false;
            result_.error = message;
            result_.error_line = line_;
        }
    }

    void Emit(TokKind kind, std::string text = "", int64_t value = 0)
    {
        Token token;
        token.kind = kind;
        token.text = std::move(text);
        token.int_value = value;
        token.line = line_;
        token.column = Column();
        result_.tokens.push_back(std::move(token));
    }

    void LexString(char quote);
    void LexNumber();
    void LexOperator();
    bool HandleIndentation();

    const std::string& src_;
    size_t pos_ = 0;
    size_t line_start_ = 0;
    int line_ = 1;
    int bracket_depth_ = 0;
    bool at_line_start_ = true;
    std::vector<int> indent_stack_{0};
    LexResult result_;
};

bool
Lexer::HandleIndentation()
{
    // Measure the indentation of the upcoming logical line; blank lines
    // and comment-only lines produce no tokens.
    for (;;) {
        size_t scan = pos_;
        int width = 0;
        while (scan < src_.size() &&
               (src_[scan] == ' ' || src_[scan] == '\t')) {
            width += (src_[scan] == '\t') ? 8 - (width % 8) : 1;
            ++scan;
        }
        if (scan >= src_.size()) {
            pos_ = scan;
            return false;
        }
        if (src_[scan] == '\n') {
            // Blank line.
            while (pos_ <= scan) {
                Get();
            }
            continue;
        }
        if (src_[scan] == '#') {
            while (pos_ < src_.size() && Peek() != '\n') {
                Get();
            }
            if (pos_ < src_.size()) {
                Get();  // Consume the newline.
            }
            continue;
        }
        // A real line: emit INDENT/DEDENT as needed.
        while (pos_ < scan) {
            Get();
        }
        if (width > indent_stack_.back()) {
            indent_stack_.push_back(width);
            Emit(TokKind::kIndent);
        } else {
            while (width < indent_stack_.back()) {
                indent_stack_.pop_back();
                Emit(TokKind::kDedent);
            }
            if (width != indent_stack_.back()) {
                Error("inconsistent dedent");
                return false;
            }
        }
        return true;
    }
}

void
Lexer::LexString(char quote)
{
    std::string decoded;
    Get();  // Opening quote.
    for (;;) {
        if (pos_ >= src_.size() || Peek() == '\n') {
            Error("unterminated string literal");
            return;
        }
        char c = Get();
        if (c == quote) {
            break;
        }
        if (c != '\\') {
            decoded.push_back(c);
            continue;
        }
        const char escape = Get();
        switch (escape) {
          case 'n': decoded.push_back('\n'); break;
          case 't': decoded.push_back('\t'); break;
          case 'r': decoded.push_back('\r'); break;
          case '0': decoded.push_back('\0'); break;
          case '\\': decoded.push_back('\\'); break;
          case '\'': decoded.push_back('\''); break;
          case '"': decoded.push_back('"'); break;
          case 'x': {
            int value = 0;
            for (int i = 0; i < 2; ++i) {
                const char h = Get();
                if (h >= '0' && h <= '9') {
                    value = value * 16 + (h - '0');
                } else if (h >= 'a' && h <= 'f') {
                    value = value * 16 + (h - 'a' + 10);
                } else if (h >= 'A' && h <= 'F') {
                    value = value * 16 + (h - 'A' + 10);
                } else {
                    Error("invalid \\x escape");
                    return;
                }
            }
            decoded.push_back(static_cast<char>(value));
            break;
          }
          default:
            // Unknown escapes keep the backslash, like Python.
            decoded.push_back('\\');
            decoded.push_back(escape);
        }
    }
    Emit(TokKind::kString, std::move(decoded));
}

void
Lexer::LexNumber()
{
    int64_t value = 0;
    if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
        Get();
        Get();
        bool any = false;
        while (std::isxdigit(static_cast<unsigned char>(Peek()))) {
            const char c = Get();
            int digit;
            if (c >= '0' && c <= '9') {
                digit = c - '0';
            } else {
                digit = (std::tolower(c) - 'a') + 10;
            }
            value = value * 16 + digit;
            any = true;
        }
        if (!any) {
            Error("invalid hex literal");
            return;
        }
    } else {
        while (std::isdigit(static_cast<unsigned char>(Peek()))) {
            value = value * 10 + (Get() - '0');
        }
        if (Peek() == '.') {
            Error("floating point literals are not supported by MiniPy "
                  "(the engine executes floats concretely only; see "
                  "DESIGN.md)");
            return;
        }
    }
    Emit(TokKind::kInt, "", value);
}

void
Lexer::LexOperator()
{
    const char c = Get();
    auto two = [this](char next, TokKind yes, TokKind no) {
        if (Peek() == next) {
            Get();
            Emit(yes);
        } else {
            Emit(no);
        }
    };
    switch (c) {
      case '(': ++bracket_depth_; Emit(TokKind::kLParen); break;
      case ')': --bracket_depth_; Emit(TokKind::kRParen); break;
      case '[': ++bracket_depth_; Emit(TokKind::kLBracket); break;
      case ']': --bracket_depth_; Emit(TokKind::kRBracket); break;
      case '{': ++bracket_depth_; Emit(TokKind::kLBrace); break;
      case '}': --bracket_depth_; Emit(TokKind::kRBrace); break;
      case ',': Emit(TokKind::kComma); break;
      case ':': Emit(TokKind::kColon); break;
      case ';': Emit(TokKind::kSemicolon); break;
      case '.': Emit(TokKind::kDot); break;
      case '~': Emit(TokKind::kTilde); break;
      case '+': two('=', TokKind::kPlusEq, TokKind::kPlus); break;
      case '-': two('=', TokKind::kMinusEq, TokKind::kMinus); break;
      case '*': two('=', TokKind::kStarEq, TokKind::kStar); break;
      case '%': two('=', TokKind::kPercentEq, TokKind::kPercent); break;
      case '&': two('=', TokKind::kAmpEq, TokKind::kAmp); break;
      case '|': two('=', TokKind::kPipeEq, TokKind::kPipe); break;
      case '^': Emit(TokKind::kCaret); break;
      case '=': two('=', TokKind::kEq, TokKind::kAssign); break;
      case '!':
        if (Peek() == '=') {
            Get();
            Emit(TokKind::kNe);
        } else {
            Error("unexpected '!'");
        }
        break;
      case '<':
        if (Peek() == '=') {
            Get();
            Emit(TokKind::kLe);
        } else if (Peek() == '<') {
            Get();
            Emit(TokKind::kShl);
        } else {
            Emit(TokKind::kLt);
        }
        break;
      case '>':
        if (Peek() == '=') {
            Get();
            Emit(TokKind::kGe);
        } else if (Peek() == '>') {
            Get();
            Emit(TokKind::kShr);
        } else {
            Emit(TokKind::kGt);
        }
        break;
      case '/':
        if (Peek() == '/') {
            Get();
            two('=', TokKind::kSlashSlashEq, TokKind::kSlashSlash);
        } else {
            two('=', TokKind::kSlashEq, TokKind::kSlash);
        }
        break;
      default:
        Error(std::string("unexpected character '") + c + "'");
    }
}

LexResult
Lexer::Run()
{
    while (result_.ok && pos_ < src_.size()) {
        if (at_line_start_ && bracket_depth_ == 0) {
            at_line_start_ = false;
            if (!HandleIndentation()) {
                break;
            }
            continue;
        }
        const char c = Peek();
        if (c == '\n') {
            Get();
            if (bracket_depth_ == 0) {
                Emit(TokKind::kNewline);
                at_line_start_ = true;
            }
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r') {
            Get();
            continue;
        }
        if (c == '#') {
            while (pos_ < src_.size() && Peek() != '\n') {
                Get();
            }
            continue;
        }
        if (c == '\\' && Peek(1) == '\n') {
            Get();
            Get();  // Explicit line continuation.
            continue;
        }
        if (c == '\'' || c == '"') {
            LexString(c);
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            LexNumber();
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string name;
            while (std::isalnum(static_cast<unsigned char>(Peek())) ||
                   Peek() == '_') {
                name.push_back(Get());
            }
            auto it = Keywords().find(name);
            if (it != Keywords().end()) {
                Emit(it->second, name);
            } else {
                Emit(TokKind::kName, std::move(name));
            }
            continue;
        }
        LexOperator();
    }
    if (result_.ok) {
        // Close the final line and any open indentation.
        if (!result_.tokens.empty() &&
            result_.tokens.back().kind != TokKind::kNewline) {
            Emit(TokKind::kNewline);
        }
        while (indent_stack_.size() > 1) {
            indent_stack_.pop_back();
            Emit(TokKind::kDedent);
        }
        Emit(TokKind::kEof);
    }
    return std::move(result_);
}

}  // namespace

LexResult
Lex(const std::string& source)
{
    return Lexer(source).Run();
}

}  // namespace chef::minipy
