#ifndef CHEF_MINIPY_VM_H_
#define CHEF_MINIPY_VM_H_

/// \file
/// The MiniPy virtual machine: an instrumented CPython-style bytecode
/// interpreter.
///
/// The dispatch loop reports every executed instruction through
/// log_pc(HLPC, opcode) (§4.1); every guest-data-dependent branch inside
/// the VM and its builtin library goes through the low-level runtime. The
/// same VM serves as the "vanilla interpreter" for test replay (same code,
/// concrete inputs, optimizations off, coverage on).

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/build_options.h"
#include "interp/int_ops.h"
#include "interp/mem_ops.h"
#include "interp/str_ops.h"
#include "lowlevel/runtime.h"
#include "minipy/code.h"
#include "minipy/object.h"

namespace chef::minipy {

/// Result of executing guest code.
struct VmOutcome {
    bool ok = true;
    /// Set when an exception escaped to the top level.
    std::string exception_type;
    std::string exception_message;
    /// True when the run was cut short by the engine (hang budget).
    bool aborted = false;
};

class Vm
{
  public:
    struct Options {
        interp::InterpBuildOptions build =
            interp::InterpBuildOptions::FullyOptimized();
        /// Record executed source lines (replay/coverage mode).
        bool coverage = false;
        int max_recursion = 64;
    };

    Vm(lowlevel::LowLevelRuntime* rt, std::shared_ptr<Program> program,
       Options options);

    /// Executes the module body (defines functions/classes, runs
    /// top-level statements).
    VmOutcome RunModule();

    /// Calls a module-level function. RunModule must have succeeded.
    VmOutcome CallGlobal(const std::string& name, std::vector<PyRef> args,
                         PyRef* result = nullptr);

    /// Everything print()ed by the guest.
    const std::string& output() const { return output_; }

    /// Covered source lines (when Options::coverage).
    const std::set<int>& covered_lines() const { return covered_lines_; }

    lowlevel::LowLevelRuntime* rt() { return rt_; }
    interp::StrOps& str_ops() { return str_ops_; }
    const interp::InterpBuildOptions& build() const
    {
        return options_.build;
    }

    /// Module namespace access (used by symbolic tests to inject values).
    std::unordered_map<std::string, PyRef>& globals() { return globals_; }

    // -- Guest-value operations (used by the VM, builtins, and PyDict) ----

    /// Generic equality as a width-1 concolic value. String comparisons
    /// run the instrumented loop (forking in vanilla builds).
    SymValue ValueEq(const PyRef& a, const PyRef& b);

    /// Hash of a dict key (instrumented; neutralization-aware). Raises
    /// TypeError for unhashable types and returns 0.
    SymValue HashKey(const PyRef& key);

    /// Truthiness as a width-1 concolic value.
    SymValue Truthy(const PyRef& value);

    /// Branches on the truthiness of a guest value.
    bool DecideTruthy(const PyRef& value, uint64_t llpc);

    /// str() of a value (instrumented; symbolic ints produce symbolic
    /// digit strings).
    SymStr ToStr(const PyRef& value);

    /// repr() used inside container printing.
    SymStr ToRepr(const PyRef& value);

    // -- Exception machinery ------------------------------------------------

    /// Raises a builtin exception of the named class.
    void RaiseError(const std::string& class_name,
                    const std::string& message);

    /// Raises a guest exception object (class or instance).
    void RaiseObject(const PyRef& exception);

    bool raised() const { return current_exception_ != nullptr; }
    const PyRef& current_exception() const { return current_exception_; }
    void ClearException() { current_exception_ = nullptr; }

    /// The exception's class name (for outcome reporting).
    std::string ExceptionTypeName(const PyRef& exception) const;
    std::string ExceptionMessage(const PyRef& exception);

    /// isinstance check against a class object (concrete).
    bool IsInstanceOf(const PyRef& value, const PyRef& cls);

    /// Calls a callable with arguments (used by builtins like map-style
    /// helpers and by the dedicated-engine comparison harness).
    PyRef CallCallable(const PyRef& callable, std::vector<PyRef> args);

    /// Looks up the class object for a builtin type name.
    PyRef BuiltinClass(const std::string& name);

  private:
    friend class PyDict;

    struct Frame {
        const CodeObject* code = nullptr;
        size_t ip = 0;
        std::vector<PyRef> stack;
        std::vector<PyRef> locals;  ///< Function fast locals.
        /// Module or class-body namespace (null for functions).
        std::unordered_map<std::string, PyRef>* ns = nullptr;
        struct Block {
            int handler = 0;
            size_t stack_size = 0;
        };
        std::vector<Block> blocks;
    };

    PyRef RunFrame(Frame& frame);
    void DispatchBinary(Frame& frame, BinOpKind kind);
    void DispatchCompare(Frame& frame, CmpOpKind kind);
    PyRef LoadAttribute(const PyRef& object, const std::string& name);
    void StoreAttribute(const PyRef& object, const std::string& name,
                        PyRef value);
    PyRef IndexLoad(const PyRef& object, const PyRef& index);
    void IndexStore(const PyRef& object, const PyRef& index, PyRef value);
    PyRef SliceLoad(const PyRef& object, PyRef start, PyRef stop);
    PyRef GetIter(const PyRef& iterable);
    PyRef IterNext(const PyRef& iterator, bool* exhausted);
    PyRef MakeFunctionObject(const CodeObject* code,
                             std::vector<PyRef> defaults);
    PyRef InstantiateClass(const PyRef& cls, std::vector<PyRef> args);

    /// Resolves a possibly negative / possibly symbolic sequence index to
    /// a concrete position, raising IndexError when out of bounds.
    bool ResolveSequenceIndex(const PyRef& index, size_t length,
                              uint64_t* out);

    /// Builtins.
    PyRef CallBuiltinFunction(int builtin_id, std::vector<PyRef>& args);
    PyRef CallBuiltinMethod(const PyRef& self, int method_id,
                            std::vector<PyRef>& args);
    int LookupBuiltinMethod(PyType type, const std::string& name) const;
    void RegisterBuiltins();

    /// Integer construction applying CPython-model costs (bignum digit
    /// normalization + small-int cache) to fresh arithmetic results.
    PyRef MakeArithInt(SymValue value);

    /// 1-character string construction; models CPython's cached character
    /// objects (interned in the vanilla build).
    PyRef MakeCharString(const SymValue& byte);

    int64_t ConcretizeStep(const SymValue& value);

    lowlevel::LowLevelRuntime* rt_;
    std::shared_ptr<Program> program_;
    Options options_;
    interp::StrOps str_ops_;
    interp::InternTable interns_;

    std::unordered_map<std::string, PyRef> globals_;
    std::unordered_map<std::string, PyRef> builtins_;
    PyRef current_exception_;
    int call_depth_ = 0;
    bool module_ran_ = false;

    std::string output_;
    std::set<int> covered_lines_;
};

}  // namespace chef::minipy

#endif  // CHEF_MINIPY_VM_H_
