#ifndef CHEF_MINIPY_CODE_H_
#define CHEF_MINIPY_CODE_H_

/// \file
/// MiniPy bytecode: opcodes, code objects, and compiled programs.
///
/// MiniPy compiles to a CPython-style stack machine. The dispatch loop of
/// the VM reports (HLPC, opcode) for every instruction executed; the HLPC
/// is the concatenation of the code-object id and the instruction offset,
/// exactly the paper's Python HLPC definition (§5.1: "the concatenation of
/// the unique block address of the top frame and the current instruction
/// offset inside the block").

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace chef::minipy {

enum class Op : uint8_t {
    kLoadConst,      ///< arg: const index.
    kLoadLocal,      ///< arg: local slot.
    kStoreLocal,     ///< arg: local slot.
    kLoadName,       ///< arg: name index (module/class namespace).
    kStoreName,      ///< arg: name index.
    kLoadGlobal,     ///< arg: name index (explicit global or builtin).
    kStoreGlobal,    ///< arg: name index.
    kBinaryOp,       ///< arg: BinOpKind.
    kUnaryOp,        ///< arg: UnOpKind.
    kCompareOp,      ///< arg: CmpOpKind.
    kJump,           ///< arg: target offset.
    kPopJumpIfFalse, ///< arg: target offset.
    kPopJumpIfTrue,  ///< arg: target offset.
    kJumpIfFalseOrPop,  ///< arg: target (for `and`).
    kJumpIfTrueOrPop,   ///< arg: target (for `or`).
    kPop,
    kDup,
    kRot2,
    kBuildList,      ///< arg: element count.
    kBuildTuple,     ///< arg: element count.
    kBuildDict,      ///< arg: pair count.
    kIndexLoad,
    kIndexStore,     ///< Stack: value, obj, index -> (pops all three).
    kSliceLoad,      ///< arg: bit0 = has start, bit1 = has stop.
    kLoadAttr,       ///< arg: name index.
    kStoreAttr,      ///< arg: name index. Stack: value, obj.
    kCall,           ///< arg: positional argc; kw names tuple on stack if
                     ///< arg2 != 0 (encoded: argc | (kwcount << 16)).
    kReturn,
    kGetIter,
    kForIter,        ///< arg: jump target when exhausted.
    kUnpack,         ///< arg: element count (tuple/list unpacking).
    kMakeFunction,   ///< arg: const index of code id; arg2: default count
                     ///< (encoded in high bits). Defaults are on stack.
    kMakeClass,      ///< Stack: namespace dict, base-or-None; arg: name
                     ///< index.
    kSetupExcept,    ///< arg: handler offset.
    kPopBlock,
    kRaise,          ///< arg: 0 = bare re-raise (unsupported), 1 = value.
    kExcMatch,       ///< Stack: exc, class -> exc, bool.
    kNop,
};

const char* OpName(Op op);

enum class BinOpKind : uint8_t {
    kAdd, kSub, kMul, kDiv, kFloorDiv, kMod,
    kAnd, kOr, kXor, kShl, kShr,
};

enum class UnOpKind : uint8_t { kNeg, kNot, kInvert };

enum class CmpOpKind : uint8_t {
    kEq, kNe, kLt, kLe, kGt, kGe, kIn, kNotIn, kIs, kIsNot,
};

/// One bytecode instruction.
struct Instr {
    Op op = Op::kNop;
    int32_t arg = 0;
    int32_t line = 0;
};

/// Constant pool entry.
struct Const {
    enum class Kind : uint8_t { kNone, kBool, kInt, kStr, kCode } kind =
        Kind::kNone;
    int64_t int_value = 0;
    std::string str_value;
    int32_t code_id = 0;
};

/// A compiled block: module, function, class body, or lambda.
struct CodeObject {
    int32_t id = 0;
    std::string name;
    /// kFunction uses slot-addressed fast locals; module and class bodies
    /// use name-addressed namespaces.
    bool is_function = false;
    std::vector<std::string> params;
    int32_t num_defaults = 0;
    std::vector<std::string> local_names;  ///< Slot -> name.
    std::vector<Instr> instrs;
    std::vector<Const> consts;
    std::vector<std::string> names;
};

/// A compiled program: all code objects; id 0 is the module body.
struct Program {
    std::vector<std::unique_ptr<CodeObject>> code;
    /// Source lines that carry at least one instruction ("coverable").
    std::vector<int> coverable_lines;
};

/// Compilation outcome.
struct CompileResult {
    bool ok = true;
    std::string error;
    int error_line = 0;
    std::shared_ptr<Program> program;
};

/// Compiles MiniPy source to bytecode.
CompileResult Compile(const std::string& source,
                      const std::string& module_name = "<module>");

}  // namespace chef::minipy

#endif  // CHEF_MINIPY_CODE_H_
