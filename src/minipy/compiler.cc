#include <set>
#include <unordered_map>

#include "minipy/ast.h"
#include "minipy/code.h"
#include "support/diagnostics.h"

namespace chef::minipy {

const char*
OpName(Op op)
{
    switch (op) {
      case Op::kLoadConst: return "LOAD_CONST";
      case Op::kLoadLocal: return "LOAD_LOCAL";
      case Op::kStoreLocal: return "STORE_LOCAL";
      case Op::kLoadName: return "LOAD_NAME";
      case Op::kStoreName: return "STORE_NAME";
      case Op::kLoadGlobal: return "LOAD_GLOBAL";
      case Op::kStoreGlobal: return "STORE_GLOBAL";
      case Op::kBinaryOp: return "BINARY_OP";
      case Op::kUnaryOp: return "UNARY_OP";
      case Op::kCompareOp: return "COMPARE_OP";
      case Op::kJump: return "JUMP";
      case Op::kPopJumpIfFalse: return "POP_JUMP_IF_FALSE";
      case Op::kPopJumpIfTrue: return "POP_JUMP_IF_TRUE";
      case Op::kJumpIfFalseOrPop: return "JUMP_IF_FALSE_OR_POP";
      case Op::kJumpIfTrueOrPop: return "JUMP_IF_TRUE_OR_POP";
      case Op::kPop: return "POP";
      case Op::kDup: return "DUP";
      case Op::kRot2: return "ROT2";
      case Op::kBuildList: return "BUILD_LIST";
      case Op::kBuildTuple: return "BUILD_TUPLE";
      case Op::kBuildDict: return "BUILD_DICT";
      case Op::kIndexLoad: return "INDEX_LOAD";
      case Op::kIndexStore: return "INDEX_STORE";
      case Op::kSliceLoad: return "SLICE_LOAD";
      case Op::kLoadAttr: return "LOAD_ATTR";
      case Op::kStoreAttr: return "STORE_ATTR";
      case Op::kCall: return "CALL";
      case Op::kReturn: return "RETURN";
      case Op::kGetIter: return "GET_ITER";
      case Op::kForIter: return "FOR_ITER";
      case Op::kUnpack: return "UNPACK";
      case Op::kMakeFunction: return "MAKE_FUNCTION";
      case Op::kMakeClass: return "MAKE_CLASS";
      case Op::kSetupExcept: return "SETUP_EXCEPT";
      case Op::kPopBlock: return "POP_BLOCK";
      case Op::kRaise: return "RAISE";
      case Op::kExcMatch: return "EXC_MATCH";
      case Op::kNop: return "NOP";
    }
    return "?";
}

namespace {

/// Collects names assigned in a scope body (without descending into nested
/// function/class scopes) and names declared global.
void
CollectAssigned(const Ast& node, std::set<std::string>* assigned,
                std::set<std::string>* declared_global)
{
    switch (node.kind) {
      case AstKind::kAssign:
      case AstKind::kAugAssign: {
        const Ast* target = node.kids[0].get();
        std::vector<const Ast*> targets{target};
        while (!targets.empty()) {
            const Ast* t = targets.back();
            targets.pop_back();
            if (t == nullptr) {
                continue;
            }
            if (t->kind == AstKind::kName) {
                assigned->insert(t->name);
            } else if (t->kind == AstKind::kTupleLit ||
                       t->kind == AstKind::kListLit) {
                for (const AstPtr& kid : t->kids) {
                    targets.push_back(kid.get());
                }
            }
        }
        break;
      }
      case AstKind::kFor: {
        const Ast* target = node.kids[0].get();
        if (target->kind == AstKind::kName) {
            assigned->insert(target->name);
        } else if (target->kind == AstKind::kTupleLit) {
            for (const AstPtr& kid : target->kids) {
                if (kid && kid->kind == AstKind::kName) {
                    assigned->insert(kid->name);
                }
            }
        }
        break;
      }
      case AstKind::kDef:
      case AstKind::kClass:
        assigned->insert(node.name);
        return;  // Do not descend into the nested scope.
      case AstKind::kHandler:
        if (!node.name.empty()) {
            assigned->insert(node.name);
        }
        break;
      case AstKind::kGlobal:
        for (const std::string& name : node.strings) {
            declared_global->insert(name);
        }
        break;
      case AstKind::kLambda:
        return;
      default:
        break;
    }
    for (const AstPtr& kid : node.kids) {
        if (kid) {
            CollectAssigned(*kid, assigned, declared_global);
        }
    }
    for (const AstPtr& kid : node.extra) {
        if (kid) {
            CollectAssigned(*kid, assigned, declared_global);
        }
    }
}

class Compiler
{
  public:
    CompileResult Run(const Ast& module, const std::string& module_name);

  private:
    struct Scope {
        CodeObject* code = nullptr;
        bool is_function = false;
        std::unordered_map<std::string, int> local_slots;
        std::set<std::string> declared_global;
        // Loop patch lists.
        struct Loop {
            int start = 0;
            std::vector<int> break_jumps;
            std::vector<int> continue_jumps;  ///< For FOR loops only.
            bool is_for = false;
            int try_depth = 0;  ///< Except-block depth at loop entry.
        };
        std::vector<Loop> loops;
        int try_depth = 0;
    };

    void Error(const std::string& message, int line)
    {
        if (ok_) {
            ok_ = false;
            error_ = message;
            error_line_ = line;
        }
    }

    CodeObject* NewCode(const std::string& name, bool is_function);

    int Emit(Op op, int arg = 0)
    {
        scope().code->instrs.push_back({op, arg, current_line_});
        return static_cast<int>(scope().code->instrs.size()) - 1;
    }
    int Here() const
    {
        return static_cast<int>(scope().code->instrs.size());
    }
    void Patch(int instr_index, int target)
    {
        scope().code->instrs[instr_index].arg = target;
    }

    Scope& scope() { return scopes_.back(); }
    const Scope& scope() const { return scopes_.back(); }

    int ConstNone();
    int ConstBool(bool value);
    int ConstInt(int64_t value);
    int ConstStr(const std::string& value);
    int ConstCode(int code_id);
    int NameIndex(const std::string& name);

    void EmitLoadName(const std::string& name, int line);
    void EmitStoreName(const std::string& name, int line);

    void CompileBody(const Ast& body);
    void CompileStatement(const Ast& stmt);
    void CompileExpr(const Ast& expr);
    void CompileStoreTarget(const Ast& target);
    void CompileFunction(const Ast& def);
    void CompileClass(const Ast& cls);
    void CompileTry(const Ast& try_stmt);
    void CompileFor(const Ast& for_stmt);

    std::shared_ptr<Program> program_;
    std::vector<Scope> scopes_;
    int current_line_ = 0;
    bool ok_ = true;
    std::string error_;
    int error_line_ = 0;
};

CodeObject*
Compiler::NewCode(const std::string& name, bool is_function)
{
    auto code = std::make_unique<CodeObject>();
    code->id = static_cast<int32_t>(program_->code.size());
    code->name = name;
    code->is_function = is_function;
    CodeObject* raw = code.get();
    program_->code.push_back(std::move(code));
    return raw;
}

int
Compiler::ConstNone()
{
    auto& consts = scope().code->consts;
    for (size_t i = 0; i < consts.size(); ++i) {
        if (consts[i].kind == Const::Kind::kNone) {
            return static_cast<int>(i);
        }
    }
    consts.push_back({Const::Kind::kNone, 0, "", 0});
    return static_cast<int>(consts.size()) - 1;
}

int
Compiler::ConstBool(bool value)
{
    auto& consts = scope().code->consts;
    for (size_t i = 0; i < consts.size(); ++i) {
        if (consts[i].kind == Const::Kind::kBool &&
            consts[i].int_value == (value ? 1 : 0)) {
            return static_cast<int>(i);
        }
    }
    consts.push_back({Const::Kind::kBool, value ? 1 : 0, "", 0});
    return static_cast<int>(consts.size()) - 1;
}

int
Compiler::ConstInt(int64_t value)
{
    auto& consts = scope().code->consts;
    for (size_t i = 0; i < consts.size(); ++i) {
        if (consts[i].kind == Const::Kind::kInt &&
            consts[i].int_value == value) {
            return static_cast<int>(i);
        }
    }
    consts.push_back({Const::Kind::kInt, value, "", 0});
    return static_cast<int>(consts.size()) - 1;
}

int
Compiler::ConstStr(const std::string& value)
{
    auto& consts = scope().code->consts;
    for (size_t i = 0; i < consts.size(); ++i) {
        if (consts[i].kind == Const::Kind::kStr &&
            consts[i].str_value == value) {
            return static_cast<int>(i);
        }
    }
    consts.push_back({Const::Kind::kStr, 0, value, 0});
    return static_cast<int>(consts.size()) - 1;
}

int
Compiler::ConstCode(int code_id)
{
    auto& consts = scope().code->consts;
    consts.push_back({Const::Kind::kCode, 0, "", code_id});
    return static_cast<int>(consts.size()) - 1;
}

int
Compiler::NameIndex(const std::string& name)
{
    auto& names = scope().code->names;
    for (size_t i = 0; i < names.size(); ++i) {
        if (names[i] == name) {
            return static_cast<int>(i);
        }
    }
    names.push_back(name);
    return static_cast<int>(names.size()) - 1;
}

void
Compiler::EmitLoadName(const std::string& name, int /*line*/)
{
    if (scope().is_function) {
        auto it = scope().local_slots.find(name);
        if (it != scope().local_slots.end()) {
            Emit(Op::kLoadLocal, it->second);
            return;
        }
        Emit(Op::kLoadGlobal, NameIndex(name));
        return;
    }
    Emit(Op::kLoadName, NameIndex(name));
}

void
Compiler::EmitStoreName(const std::string& name, int /*line*/)
{
    if (scope().is_function) {
        auto it = scope().local_slots.find(name);
        if (it != scope().local_slots.end()) {
            Emit(Op::kStoreLocal, it->second);
            return;
        }
        Emit(Op::kStoreGlobal, NameIndex(name));
        return;
    }
    Emit(Op::kStoreName, NameIndex(name));
}

void
Compiler::CompileBody(const Ast& body)
{
    for (const AstPtr& stmt : body.kids) {
        if (ok_ && stmt) {
            CompileStatement(*stmt);
        }
    }
}

void
Compiler::CompileStoreTarget(const Ast& target)
{
    switch (target.kind) {
      case AstKind::kName:
        EmitStoreName(target.name, target.line);
        break;
      case AstKind::kAttribute:
        CompileExpr(*target.kids[0]);
        Emit(Op::kStoreAttr, NameIndex(target.name));
        break;
      case AstKind::kSubscript:
        CompileExpr(*target.kids[0]);
        CompileExpr(*target.kids[1]);
        Emit(Op::kIndexStore);
        break;
      case AstKind::kTupleLit:
      case AstKind::kListLit: {
        Emit(Op::kUnpack, static_cast<int>(target.kids.size()));
        for (const AstPtr& element : target.kids) {
            CompileStoreTarget(*element);
        }
        break;
      }
      default:
        Error("invalid assignment target", target.line);
    }
}

void
Compiler::CompileStatement(const Ast& stmt)
{
    current_line_ = stmt.line;
    switch (stmt.kind) {
      case AstKind::kBody:
        CompileBody(stmt);
        break;
      case AstKind::kExprStmt:
        CompileExpr(*stmt.kids[0]);
        Emit(Op::kPop);
        break;
      case AstKind::kAssign:
        CompileExpr(*stmt.kids[1]);
        CompileStoreTarget(*stmt.kids[0]);
        break;
      case AstKind::kAugAssign: {
        const Ast& target = *stmt.kids[0];
        // Load current value (re-evaluates subexpressions; MiniPy
        // documents this deviation for attribute/subscript targets).
        CompileExpr(target);
        CompileExpr(*stmt.kids[1]);
        BinOpKind kind;
        switch (stmt.op) {
          case TokKind::kPlusEq: kind = BinOpKind::kAdd; break;
          case TokKind::kMinusEq: kind = BinOpKind::kSub; break;
          case TokKind::kStarEq: kind = BinOpKind::kMul; break;
          case TokKind::kSlashEq: kind = BinOpKind::kDiv; break;
          case TokKind::kSlashSlashEq:
            kind = BinOpKind::kFloorDiv;
            break;
          case TokKind::kPercentEq: kind = BinOpKind::kMod; break;
          case TokKind::kAmpEq: kind = BinOpKind::kAnd; break;
          case TokKind::kPipeEq: kind = BinOpKind::kOr; break;
          default:
            Error("unsupported augmented assignment", stmt.line);
            return;
        }
        Emit(Op::kBinaryOp, static_cast<int>(kind));
        CompileStoreTarget(target);
        break;
      }
      case AstKind::kIf: {
        CompileExpr(*stmt.kids[0]);
        const int jump_false = Emit(Op::kPopJumpIfFalse);
        CompileStatement(*stmt.kids[1]);
        if (stmt.kids.size() > 2) {
            const int jump_end = Emit(Op::kJump);
            Patch(jump_false, Here());
            CompileStatement(*stmt.kids[2]);
            Patch(jump_end, Here());
        } else {
            Patch(jump_false, Here());
        }
        break;
      }
      case AstKind::kWhile: {
        const int start = Here();
        scope().loops.push_back({start, {}, {}, false,
                                 scope().try_depth});
        CompileExpr(*stmt.kids[0]);
        const int jump_exit = Emit(Op::kPopJumpIfFalse);
        CompileStatement(*stmt.kids[1]);
        Emit(Op::kJump, start);
        const int exit = Here();
        Patch(jump_exit, exit);
        for (int index : scope().loops.back().break_jumps) {
            Patch(index, exit);
        }
        scope().loops.pop_back();
        break;
      }
      case AstKind::kFor:
        CompileFor(stmt);
        break;
      case AstKind::kDef:
        CompileFunction(stmt);
        break;
      case AstKind::kClass:
        CompileClass(stmt);
        break;
      case AstKind::kReturn:
        if (!scope().is_function) {
            Error("'return' outside function", stmt.line);
            return;
        }
        if (!stmt.kids.empty()) {
            CompileExpr(*stmt.kids[0]);
        } else {
            Emit(Op::kLoadConst, ConstNone());
        }
        Emit(Op::kReturn);
        break;
      case AstKind::kRaise:
        if (stmt.kids.empty()) {
            Error("bare 'raise' is not supported", stmt.line);
            return;
        }
        CompileExpr(*stmt.kids[0]);
        Emit(Op::kRaise, 1);
        break;
      case AstKind::kAssert: {
        CompileExpr(*stmt.kids[0]);
        const int jump_ok = Emit(Op::kPopJumpIfTrue);
        EmitLoadName("AssertionError", stmt.line);
        int argc = 0;
        if (stmt.kids.size() > 1) {
            CompileExpr(*stmt.kids[1]);
            argc = 1;
        }
        Emit(Op::kCall, argc);
        Emit(Op::kRaise, 1);
        Patch(jump_ok, Here());
        break;
      }
      case AstKind::kTry:
        CompileTry(stmt);
        break;
      case AstKind::kBreak: {
        if (scope().loops.empty()) {
            Error("'break' outside loop", stmt.line);
            return;
        }
        Scope::Loop& loop = scope().loops.back();
        // Jumping out of enclosing try blocks must unwind them.
        for (int d = scope().try_depth; d > loop.try_depth; --d) {
            Emit(Op::kPopBlock);
        }
        loop.break_jumps.push_back(Emit(Op::kJump));
        break;
      }
      case AstKind::kContinue: {
        if (scope().loops.empty()) {
            Error("'continue' outside loop", stmt.line);
            return;
        }
        Scope::Loop& loop = scope().loops.back();
        for (int d = scope().try_depth; d > loop.try_depth; --d) {
            Emit(Op::kPopBlock);
        }
        Emit(Op::kJump, loop.start);
        break;
      }
      case AstKind::kGlobal:
      case AstKind::kPass:
        break;
      default:
        Error("unexpected statement node", stmt.line);
    }
}

void
Compiler::CompileFor(const Ast& stmt)
{
    CompileExpr(*stmt.kids[1]);
    Emit(Op::kGetIter);
    const int start = Here();
    scope().loops.push_back({start, {}, {}, true, scope().try_depth});
    const int for_iter = Emit(Op::kForIter);
    CompileStoreTarget(*stmt.kids[0]);
    CompileStatement(*stmt.kids[2]);
    Emit(Op::kJump, start);
    const int exit = Here();
    Patch(for_iter, exit);
    for (int index : scope().loops.back().break_jumps) {
        // break must also discard the iterator: FOR_ITER pops it when
        // exhausted, so breaks jump to a small epilogue that pops it.
        Patch(index, exit + 1);
    }
    const bool had_breaks = !scope().loops.back().break_jumps.empty();
    scope().loops.pop_back();
    if (had_breaks) {
        // Exhausted loops jump over the iterator-pop epilogue.
        // Layout: exit: JUMP done; exit+1: POP; done:
        // We need to insert; instead emit: at exit, the FOR_ITER target.
        // Simpler scheme: FOR_ITER pops the iterator itself on
        // exhaustion, and breaks jump to an epilogue popping it.
        const int jump_done = Emit(Op::kJump);
        CHEF_CHECK(Here() == exit + 1);
        Emit(Op::kPop);  // Discard the iterator on break.
        Patch(jump_done, Here());
    }
}

void
Compiler::CompileTry(const Ast& stmt)
{
    const int setup = Emit(Op::kSetupExcept);
    ++scope().try_depth;
    CompileStatement(*stmt.kids[0]);
    --scope().try_depth;
    Emit(Op::kPopBlock);
    const int jump_end = Emit(Op::kJump);
    Patch(setup, Here());
    // Handler entry: VM pushes the exception instance.
    std::vector<int> end_jumps{jump_end};
    for (size_t i = 0; i < stmt.extra.size(); ++i) {
        const Ast& handler = *stmt.extra[i];
        int jump_next = -1;
        if (handler.kids[0] != nullptr) {
            Emit(Op::kDup);
            CompileExpr(*handler.kids[0]);
            Emit(Op::kExcMatch);
            jump_next = Emit(Op::kPopJumpIfFalse);
        }
        if (!handler.name.empty()) {
            EmitStoreName(handler.name, handler.line);
        } else {
            Emit(Op::kPop);  // Discard the exception instance.
        }
        CompileStatement(*handler.kids[1]);
        end_jumps.push_back(Emit(Op::kJump));
        if (jump_next >= 0) {
            Patch(jump_next, Here());
        } else {
            break;  // A bare except is terminal.
        }
    }
    // No handler matched: re-raise the exception on the stack.
    Emit(Op::kRaise, 0);
    const int end = Here();
    for (int index : end_jumps) {
        Patch(index, end);
    }
}

void
Compiler::CompileFunction(const Ast& def)
{
    CodeObject* code = NewCode(def.name, /*is_function=*/true);
    code->params = def.strings;
    code->num_defaults = static_cast<int32_t>(def.extra.size());

    // Defaults are evaluated in the enclosing scope, pushed left to right.
    for (const AstPtr& default_expr : def.extra) {
        CompileExpr(*default_expr);
    }

    Scope function_scope;
    function_scope.code = code;
    function_scope.is_function = true;
    std::set<std::string> assigned;
    std::set<std::string> declared_global;
    for (const std::string& param : def.strings) {
        assigned.insert(param);
    }
    CollectAssigned(*def.kids[0], &assigned, &declared_global);
    // Params get the first slots, in order.
    for (const std::string& param : def.strings) {
        function_scope.local_slots[param] =
            static_cast<int>(function_scope.local_slots.size());
        code->local_names.push_back(param);
    }
    for (const std::string& name : assigned) {
        if (declared_global.count(name) ||
            function_scope.local_slots.count(name)) {
            continue;
        }
        function_scope.local_slots[name] =
            static_cast<int>(function_scope.local_slots.size());
        code->local_names.push_back(name);
    }
    function_scope.declared_global = declared_global;

    const int defaults_count = static_cast<int>(def.extra.size());
    scopes_.push_back(std::move(function_scope));
    CompileStatement(*def.kids[0]);
    current_line_ = def.line;
    Emit(Op::kLoadConst, ConstNone());
    Emit(Op::kReturn);
    scopes_.pop_back();

    const int code_const = ConstCode(code->id);
    Emit(Op::kMakeFunction, code_const | (defaults_count << 16));
    EmitStoreName(def.name, def.line);
}

void
Compiler::CompileClass(const Ast& cls)
{
    CodeObject* code = NewCode(cls.name, /*is_function=*/false);

    // Base class (or None).
    if (cls.kids[0] != nullptr) {
        CompileExpr(*cls.kids[0]);
    } else {
        Emit(Op::kLoadConst, ConstNone());
    }

    Scope class_scope;
    class_scope.code = code;
    class_scope.is_function = false;
    scopes_.push_back(std::move(class_scope));
    CompileStatement(*cls.kids[1]);
    current_line_ = cls.line;
    Emit(Op::kLoadConst, ConstNone());
    Emit(Op::kReturn);
    scopes_.pop_back();

    const int code_const = ConstCode(code->id);
    Emit(Op::kLoadConst, code_const);
    Emit(Op::kMakeClass, NameIndex(cls.name));
    EmitStoreName(cls.name, cls.line);
}

void
Compiler::CompileExpr(const Ast& expr)
{
    if (!ok_) {
        return;
    }
    current_line_ = expr.line ? expr.line : current_line_;
    switch (expr.kind) {
      case AstKind::kIntLit:
        Emit(Op::kLoadConst, ConstInt(expr.int_value));
        break;
      case AstKind::kStrLit:
        Emit(Op::kLoadConst, ConstStr(expr.str_value));
        break;
      case AstKind::kBoolLit:
        Emit(Op::kLoadConst, ConstBool(expr.int_value != 0));
        break;
      case AstKind::kNoneLit:
        Emit(Op::kLoadConst, ConstNone());
        break;
      case AstKind::kName:
        EmitLoadName(expr.name, expr.line);
        break;
      case AstKind::kBinOp: {
        CompileExpr(*expr.kids[0]);
        CompileExpr(*expr.kids[1]);
        BinOpKind kind;
        switch (expr.op) {
          case TokKind::kPlus: kind = BinOpKind::kAdd; break;
          case TokKind::kMinus: kind = BinOpKind::kSub; break;
          case TokKind::kStar: kind = BinOpKind::kMul; break;
          case TokKind::kSlash: kind = BinOpKind::kDiv; break;
          case TokKind::kSlashSlash: kind = BinOpKind::kFloorDiv; break;
          case TokKind::kPercent: kind = BinOpKind::kMod; break;
          case TokKind::kAmp: kind = BinOpKind::kAnd; break;
          case TokKind::kPipe: kind = BinOpKind::kOr; break;
          case TokKind::kCaret: kind = BinOpKind::kXor; break;
          case TokKind::kShl: kind = BinOpKind::kShl; break;
          case TokKind::kShr: kind = BinOpKind::kShr; break;
          default:
            Error("unsupported binary operator", expr.line);
            return;
        }
        Emit(Op::kBinaryOp, static_cast<int>(kind));
        break;
      }
      case AstKind::kUnaryOp: {
        CompileExpr(*expr.kids[0]);
        UnOpKind kind;
        switch (expr.op) {
          case TokKind::kMinus: kind = UnOpKind::kNeg; break;
          case TokKind::kKwNot: kind = UnOpKind::kNot; break;
          case TokKind::kTilde: kind = UnOpKind::kInvert; break;
          default:
            Error("unsupported unary operator", expr.line);
            return;
        }
        Emit(Op::kUnaryOp, static_cast<int>(kind));
        break;
      }
      case AstKind::kBoolOp: {
        const Op jump_op = (expr.op == TokKind::kKwAnd)
                               ? Op::kJumpIfFalseOrPop
                               : Op::kJumpIfTrueOrPop;
        std::vector<int> jumps;
        for (size_t i = 0; i < expr.kids.size(); ++i) {
            CompileExpr(*expr.kids[i]);
            if (i + 1 < expr.kids.size()) {
                jumps.push_back(Emit(jump_op));
            }
        }
        const int end = Here();
        for (int index : jumps) {
            Patch(index, end);
        }
        break;
      }
      case AstKind::kCompare: {
        if (expr.strings.size() != 1) {
            Error("chained comparisons are not supported; split with "
                  "'and'",
                  expr.line);
            return;
        }
        CompileExpr(*expr.kids[0]);
        CompileExpr(*expr.kids[1]);
        const std::string& op = expr.strings[0];
        CmpOpKind kind;
        if (op == "==") kind = CmpOpKind::kEq;
        else if (op == "!=") kind = CmpOpKind::kNe;
        else if (op == "<") kind = CmpOpKind::kLt;
        else if (op == "<=") kind = CmpOpKind::kLe;
        else if (op == ">") kind = CmpOpKind::kGt;
        else if (op == ">=") kind = CmpOpKind::kGe;
        else if (op == "in") kind = CmpOpKind::kIn;
        else if (op == "not in") kind = CmpOpKind::kNotIn;
        else if (op == "is") kind = CmpOpKind::kIs;
        else kind = CmpOpKind::kIsNot;
        Emit(Op::kCompareOp, static_cast<int>(kind));
        break;
      }
      case AstKind::kCall: {
        CompileExpr(*expr.kids[0]);
        for (size_t i = 1; i < expr.kids.size(); ++i) {
            CompileExpr(*expr.kids[i]);
        }
        for (size_t i = 0; i < expr.strings.size(); ++i) {
            Emit(Op::kLoadConst, ConstStr(expr.strings[i]));
            CompileExpr(*expr.extra[i]);
        }
        const int argc = static_cast<int>(expr.kids.size()) - 1;
        const int kwc = static_cast<int>(expr.strings.size());
        Emit(Op::kCall, argc | (kwc << 16));
        break;
      }
      case AstKind::kAttribute:
        CompileExpr(*expr.kids[0]);
        Emit(Op::kLoadAttr, NameIndex(expr.name));
        break;
      case AstKind::kSubscript:
        CompileExpr(*expr.kids[0]);
        CompileExpr(*expr.kids[1]);
        Emit(Op::kIndexLoad);
        break;
      case AstKind::kSlice: {
        CompileExpr(*expr.kids[0]);
        int flags = 0;
        if (expr.kids[1] != nullptr) {
            CompileExpr(*expr.kids[1]);
            flags |= 1;
        }
        if (expr.kids[2] != nullptr) {
            CompileExpr(*expr.kids[2]);
            flags |= 2;
        }
        Emit(Op::kSliceLoad, flags);
        break;
      }
      case AstKind::kListLit:
        for (const AstPtr& element : expr.kids) {
            CompileExpr(*element);
        }
        Emit(Op::kBuildList, static_cast<int>(expr.kids.size()));
        break;
      case AstKind::kTupleLit:
        for (const AstPtr& element : expr.kids) {
            CompileExpr(*element);
        }
        Emit(Op::kBuildTuple, static_cast<int>(expr.kids.size()));
        break;
      case AstKind::kDictLit:
        for (const AstPtr& element : expr.kids) {
            CompileExpr(*element);
        }
        Emit(Op::kBuildDict,
             static_cast<int>(expr.kids.size()) / 2);
        break;
      case AstKind::kLambda: {
        CodeObject* code = NewCode("<lambda>", /*is_function=*/true);
        code->params = expr.strings;
        Scope lambda_scope;
        lambda_scope.code = code;
        lambda_scope.is_function = true;
        for (const std::string& param : expr.strings) {
            lambda_scope.local_slots[param] =
                static_cast<int>(lambda_scope.local_slots.size());
            code->local_names.push_back(param);
        }
        scopes_.push_back(std::move(lambda_scope));
        CompileExpr(*expr.kids[0]);
        Emit(Op::kReturn);
        scopes_.pop_back();
        Emit(Op::kMakeFunction, ConstCode(code->id));
        break;
      }
      default:
        Error("unexpected expression node", expr.line);
    }
}

CompileResult
Compiler::Run(const Ast& module, const std::string& module_name)
{
    program_ = std::make_shared<Program>();
    CodeObject* code = NewCode(module_name, /*is_function=*/false);
    Scope module_scope;
    module_scope.code = code;
    module_scope.is_function = false;
    scopes_.push_back(std::move(module_scope));
    CompileBody(module);
    Emit(Op::kLoadConst, ConstNone());
    Emit(Op::kReturn);
    scopes_.pop_back();

    CompileResult result;
    result.ok = ok_;
    result.error = error_;
    result.error_line = error_line_;
    if (ok_) {
        std::set<int> lines;
        for (const auto& code_object : program_->code) {
            for (const Instr& instr : code_object->instrs) {
                if (instr.line > 0) {
                    lines.insert(instr.line);
                }
            }
        }
        program_->coverable_lines.assign(lines.begin(), lines.end());
        result.program = program_;
    }
    return result;
}

}  // namespace

CompileResult
Compile(const std::string& source, const std::string& module_name)
{
    ParseResult parsed = Parse(source);
    if (!parsed.ok) {
        CompileResult result;
        result.ok = false;
        result.error = parsed.error;
        result.error_line = parsed.error_line;
        return result;
    }
    return Compiler().Run(*parsed.module, module_name);
}

}  // namespace chef::minipy
