#ifndef CHEF_MINIPY_AST_H_
#define CHEF_MINIPY_AST_H_

/// \file
/// MiniPy abstract syntax tree.
///
/// A single tagged node type keeps the front end compact. Child-slot
/// conventions per kind are documented on the enumerators; optional
/// children are null unique_ptrs.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "minipy/lexer.h"

namespace chef::minipy {

enum class AstKind : uint8_t {
    // Expressions.
    kIntLit,     ///< int_value.
    kStrLit,     ///< str_value.
    kBoolLit,    ///< int_value (0/1).
    kNoneLit,
    kName,       ///< name.
    kBinOp,      ///< op; kids = {lhs, rhs}.
    kUnaryOp,    ///< op (kMinus/kTilde/kKwNot); kids = {operand}.
    kBoolOp,     ///< op (kKwAnd/kKwOr); kids = operands (>= 2).
    kCompare,    ///< kids = {left, comp...}; strings = op spellings.
    kCall,       ///< kids = {func, pos args...}; strings = kw names,
                 ///< extra = kw value exprs.
    kAttribute,  ///< name; kids = {object}.
    kSubscript,  ///< kids = {object, index}.
    kSlice,      ///< kids = {object, start?, stop?} (null = omitted).
    kListLit,    ///< kids = elements.
    kTupleLit,   ///< kids = elements.
    kDictLit,    ///< kids alternate key, value.
    kLambda,     ///< strings = params; kids = {expr}.
    // Statements.
    kModule,     ///< kids = statements.
    kBody,       ///< kids = statements.
    kExprStmt,   ///< kids = {expr}.
    kAssign,     ///< kids = {target, value}.
    kAugAssign,  ///< op; kids = {target, value}.
    kIf,         ///< kids = {cond, then-body, else-body?}.
    kWhile,      ///< kids = {cond, body}.
    kFor,        ///< kids = {target, iterable, body}.
    kDef,        ///< name; strings = params; extra = trailing defaults;
                 ///< kids = {body}.
    kReturn,     ///< kids = {expr?}.
    kRaise,      ///< kids = {expr?}.
    kAssert,     ///< kids = {test, message?}.
    kTry,        ///< kids = {body}; extra = handlers (kHandler).
    kHandler,    ///< name = bound variable (may be empty);
                 ///< kids = {class-expr?, body}.
    kClass,      ///< name; kids = {base?, body}.
    kGlobal,     ///< strings = names.
    kBreak,
    kContinue,
    kPass,
};

struct Ast;
using AstPtr = std::unique_ptr<Ast>;

struct Ast {
    AstKind kind;
    int line = 0;
    std::string name;
    std::string str_value;
    int64_t int_value = 0;
    TokKind op = TokKind::kEof;
    std::vector<AstPtr> kids;
    std::vector<AstPtr> extra;
    std::vector<std::string> strings;

    explicit Ast(AstKind k, int source_line = 0)
        : kind(k), line(source_line)
    {
    }
};

/// Result of parsing: a kModule root or an error.
struct ParseResult {
    bool ok = true;
    std::string error;
    int error_line = 0;
    AstPtr module;
};

/// Parses MiniPy source into an AST.
ParseResult Parse(const std::string& source);

}  // namespace chef::minipy

#endif  // CHEF_MINIPY_AST_H_
