#ifndef CHEF_SUPPORT_STRINGS_H_
#define CHEF_SUPPORT_STRINGS_H_

/// \file
/// Small string helpers shared across the project.

#include <cstdint>
#include <string>
#include <vector>

namespace chef {

/// Splits \p text on the single-character separator \p sep. Keeps empty
/// fields, so Split("a,,b", ',') yields {"a", "", "b"}.
std::vector<std::string> Split(const std::string& text, char sep);

/// Joins \p parts with \p sep between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Returns text with leading and trailing ASCII whitespace removed.
std::string Trim(const std::string& text);

/// True if \p text begins with \p prefix.
bool StartsWith(const std::string& text, const std::string& prefix);

/// True if \p text ends with \p suffix.
bool EndsWith(const std::string& text, const std::string& suffix);

/// Renders a byte buffer as a C-style escaped string literal (for test-case
/// reports), e.g. bytes {0x41, 0x00} become "A\x00".
std::string EscapeBytes(const std::vector<uint8_t>& bytes);

/// FNV-1a hash of a byte range; used for structural hashing.
uint64_t FnvHash(const void* data, size_t size, uint64_t seed = 0xcbf29ce484222325ull);

/// Combines two hash values (boost-style).
inline uint64_t
HashCombine(uint64_t a, uint64_t b)
{
    return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
}

}  // namespace chef

#endif  // CHEF_SUPPORT_STRINGS_H_
