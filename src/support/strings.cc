#include "support/strings.h"

#include <cctype>
#include <cstdio>

namespace chef {

std::vector<std::string>
Split(const std::string& text, char sep)
{
    std::vector<std::string> parts;
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            parts.push_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return parts;
}

std::string
Join(const std::vector<std::string>& parts, const std::string& sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) {
            out += sep;
        }
        out += parts[i];
    }
    return out;
}

std::string
Trim(const std::string& text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

bool
StartsWith(const std::string& text, const std::string& prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

bool
EndsWith(const std::string& text, const std::string& suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

std::string
EscapeBytes(const std::vector<uint8_t>& bytes)
{
    std::string out;
    for (uint8_t b : bytes) {
        if (b >= 0x20 && b < 0x7f && b != '\\' && b != '"') {
            out.push_back(static_cast<char>(b));
        } else {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\x%02x", b);
            out += buf;
        }
    }
    return out;
}

uint64_t
FnvHash(const void* data, size_t size, uint64_t seed)
{
    const auto* p = static_cast<const uint8_t*>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

}  // namespace chef
