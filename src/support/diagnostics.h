#ifndef CHEF_SUPPORT_DIAGNOSTICS_H_
#define CHEF_SUPPORT_DIAGNOSTICS_H_

/// \file
/// Internal-error checking and user-facing fatal error reporting.
///
/// Following the gem5 panic()/fatal() distinction:
///  - CHEF_CHECK / Panic(): an internal invariant of the library broke; this
///    is a bug in the engine itself and aborts.
///  - Fatal(): the caller misused the library (bad configuration, malformed
///    guest program where no diagnostic channel exists); exits cleanly.

#include <cstdint>
#include <string>

namespace chef {

/// Aborts with a formatted message; use for internal invariant violations.
[[noreturn]] void Panic(const char* file, int line, const std::string& msg);

/// Exits with a formatted message; use for unrecoverable user errors.
[[noreturn]] void Fatal(const std::string& msg);

}  // namespace chef

/// Checks an internal invariant; aborts with location info on failure.
#define CHEF_CHECK(cond)                                                   \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::chef::Panic(__FILE__, __LINE__,                              \
                          "check failed: " #cond);                        \
        }                                                                  \
    } while (0)

/// Checks an internal invariant with an explanatory message.
#define CHEF_CHECK_MSG(cond, msg)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::chef::Panic(__FILE__, __LINE__,                              \
                          std::string("check failed: " #cond ": ") +       \
                              (msg));                                      \
        }                                                                  \
    } while (0)

#define CHEF_UNREACHABLE(msg) ::chef::Panic(__FILE__, __LINE__, (msg))

#endif  // CHEF_SUPPORT_DIAGNOSTICS_H_
