#include "support/rng.h"

#include "support/diagnostics.h"

namespace chef {

namespace {

uint64_t
SplitMix64(uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
Rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto& word : state_) {
        word = SplitMix64(s);
    }
}

uint64_t
Rng::Next()
{
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::NextBelow(uint64_t bound)
{
    CHEF_CHECK(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        const uint64_t r = Next();
        if (r >= threshold) {
            return r % bound;
        }
    }
}

double
Rng::NextDouble()
{
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool
Rng::Chance(double p)
{
    if (p <= 0.0) {
        return false;
    }
    if (p >= 1.0) {
        return true;
    }
    return NextDouble() < p;
}

size_t
Rng::PickWeighted(const std::vector<double>& weights)
{
    CHEF_CHECK(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
        total += (w > 0.0) ? w : 0.0;
    }
    if (total <= 0.0) {
        return NextBelow(weights.size());
    }
    double point = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        const double w = (weights[i] > 0.0) ? weights[i] : 0.0;
        if (point < w) {
            return i;
        }
        point -= w;
    }
    return weights.size() - 1;
}

}  // namespace chef
