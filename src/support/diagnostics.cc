#include "support/diagnostics.h"

#include <cstdio>
#include <cstdlib>

namespace chef {

void
Panic(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "chef: PANIC at %s:%d: %s\n", file, line,
                 msg.c_str());
    std::abort();
}

void
Fatal(const std::string& msg)
{
    std::fprintf(stderr, "chef: fatal: %s\n", msg.c_str());
    std::exit(1);
}

}  // namespace chef
