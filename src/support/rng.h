#ifndef CHEF_SUPPORT_RNG_H_
#define CHEF_SUPPORT_RNG_H_

/// \file
/// Deterministic pseudo-random number generation.
///
/// All stochastic components of the engine (CUPA random descent, baseline
/// random state selection, SAT decision phases) draw from an explicitly
/// seeded Rng so that experiments are reproducible run-to-run.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chef {

/// xoshiro256** generator seeded via SplitMix64.
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /// Returns a uniformly distributed 64-bit value.
    uint64_t Next();

    /// Returns a uniform value in [0, bound); bound must be non-zero.
    uint64_t NextBelow(uint64_t bound);

    /// Returns a uniform double in [0, 1).
    double NextDouble();

    /// Returns true with probability p (clamped to [0,1]).
    bool Chance(double p);

    /// Picks an index in [0, weights.size()) with probability proportional
    /// to the (non-negative) weights. If all weights are zero, picks
    /// uniformly. The weight vector must be non-empty.
    size_t PickWeighted(const std::vector<double>& weights);

  private:
    uint64_t state_[4];
};

}  // namespace chef

#endif  // CHEF_SUPPORT_RNG_H_
