#ifndef CHEF_SUPPORT_JSON_H_
#define CHEF_SUPPORT_JSON_H_

/// \file
/// JSON emission, strict validation, and a small DOM parser.
///
/// One implementation of RFC 8259 for the whole codebase: the service's
/// JSON report writer, the shard layer's wire format, and the tests'
/// strict validation all go through here, so the "reports are valid
/// strict JSON" contract is enforced by the same grammar everywhere
/// (this used to live as a private writer in service/report.cc and a
/// test-only parser in tests/scheduler_test.cc).
///
/// The grammar is exactly the RFC 8259 value grammar: objects, arrays,
/// strings with escapes, numbers (no bare nan/inf/hex), true/false/null.
/// ParseJson succeeds iff the whole text is exactly one valid value.
/// Non-finite doubles are *emitted* as null ("not a measurement"), and
/// null parses back as 0.0 through JsonValue::AsDouble — the NaN/Inf
/// round-trip contract the wire format relies on.

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace chef::support {

/// Escapes a string for embedding in a JSON document (without the
/// surrounding quotes). Control characters and bytes >= 0x7f are emitted
/// as \u00xx escapes: guest strings are raw byte strings (often built
/// from symbolic input bytes), not guaranteed UTF-8, and escaping per
/// byte keeps output pure ASCII.
std::string JsonEscape(const std::string& text);

/// Minimal append-only JSON builder. Document structures in this
/// codebase are fixed, so a full serializer would be overkill; this
/// keeps key order stable and escaping in one place.
class JsonWriter
{
  public:
    std::string Take() { return std::move(out_); }

    void BeginObject() { Punct('{'); }
    void EndObject()
    {
        out_ += '}';
        needs_comma_ = true;
    }
    void BeginArray() { Punct('['); }
    void EndArray()
    {
        out_ += ']';
        needs_comma_ = true;
    }

    void Key(const char* name)
    {
        Comma();
        out_ += '"';
        out_ += name;
        out_ += "\":";
        needs_comma_ = false;
    }

    void Value(const std::string& text)
    {
        Comma();
        out_ += '"';
        out_ += JsonEscape(text);
        out_ += '"';
        needs_comma_ = true;
    }

    /// Without this, a string literal would convert to bool (pointer ->
    /// bool beats the user-defined conversion to std::string) and
    /// silently serialize as `true`.
    void Value(const char* text) { Value(std::string(text)); }

    /// One template for every integral width/signedness (size_t is a
    /// distinct type from uint64_t on some ABIs; separate overloads
    /// would be ambiguous there). All emitted fields are non-negative.
    template <typename T,
              typename std::enable_if<std::is_integral<T>::value &&
                                          !std::is_same<T, bool>::value,
                                      int>::type = 0>
    void Value(T value)
    {
        AppendUnsigned(static_cast<uint64_t>(value));
    }

    /// 64-bit identities (fingerprints, seeds) go out as hex *strings*:
    /// they routinely exceed 2^53 and would be silently rounded by
    /// double-based JSON consumers, breaking cross-report comparison.
    void HexValue(uint64_t value);

    /// Non-finite values serialize as null — "not a measurement" —
    /// rather than a clamped number a consumer could mistake for data
    /// (%.6f would print bare `nan`/`inf`, which no strict parser
    /// accepts).
    void Value(double value);

    void Value(bool value) { Raw(value ? "true" : "false"); }

    void Null() { Raw("null"); }

    /// Splices an already-rendered JSON value (e.g. a nested report
    /// fragment) into the document verbatim. The caller vouches for its
    /// validity.
    void RawValue(const std::string& json) { Raw(json.c_str()); }

  private:
    void Comma()
    {
        if (needs_comma_) {
            out_ += ',';
        }
    }
    void Punct(char c)
    {
        Comma();
        out_ += c;
        needs_comma_ = false;
    }
    void Raw(const char* text)
    {
        Comma();
        out_ += text;
        needs_comma_ = true;
    }
    void AppendUnsigned(uint64_t value);

    std::string out_;
    bool needs_comma_ = false;
};

/// One parsed JSON value. Plain aggregate: the wire format reads fields
/// through the typed accessors below, which encode the codebase's
/// conventions (hex-string u64 identities, null-as-0.0 doubles).
struct JsonValue {
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind = Kind::kNull;
    bool bool_value = false;
    /// Numbers keep both the parsed double and the raw token: u64 fields
    /// beyond 2^53 would be silently rounded by the double alone.
    double number_value = 0.0;
    std::string number_token;
    std::string string_value;
    std::vector<JsonValue> items;  ///< kArray elements.
    /// kObject members in document order (duplicate keys kept; Find
    /// returns the first, matching typical first-wins consumers).
    std::vector<std::pair<std::string, JsonValue>> members;

    bool IsNull() const { return kind == Kind::kNull; }

    /// First member with the given key; nullptr when absent or not an
    /// object.
    const JsonValue* Find(const std::string& key) const;

    /// Numeric value as uint64_t. Accepts a decimal number token or a
    /// "0x..." hex string (the writer's HexValue convention). Returns
    /// false for anything else.
    bool AsUint64(uint64_t* out) const;

    /// Numeric value as double; null reads as 0.0 (the emitted form of
    /// NaN/Inf — "not a measurement"). Returns false for other kinds.
    bool AsDouble(double* out) const;

    bool AsBool(bool* out) const;
    bool AsString(std::string* out) const;

    // Keyed convenience lookups: false when the key is absent or the
    // value has the wrong type.
    bool GetUint64(const std::string& key, uint64_t* out) const;
    bool GetDouble(const std::string& key, double* out) const;
    bool GetBool(const std::string& key, bool* out) const;
    bool GetString(const std::string& key, std::string* out) const;
};

/// Parses \p text as exactly one JSON value spanning the whole input
/// (leading/trailing whitespace allowed). On failure returns false and
/// fills \p error (if non-null) with a byte offset and reason.
bool ParseJson(const std::string& text, JsonValue* value,
               std::string* error = nullptr);

/// Strict RFC 8259 validation: true iff the whole text is exactly one
/// valid JSON value. This is precisely what the report contract promises
/// external consumers (no bare nan/inf, no trailing garbage).
bool JsonValid(const std::string& text);

}  // namespace chef::support

#endif  // CHEF_SUPPORT_JSON_H_
