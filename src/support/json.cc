#include "support/json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace chef::support {

std::string
JsonEscape(const std::string& text)
{
    std::string escaped;
    escaped.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': escaped += "\\\""; break;
          case '\\': escaped += "\\\\"; break;
          case '\b': escaped += "\\b"; break;
          case '\f': escaped += "\\f"; break;
          case '\n': escaped += "\\n"; break;
          case '\r': escaped += "\\r"; break;
          case '\t': escaped += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20 ||
                static_cast<unsigned char>(c) >= 0x7f) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned char>(c));
                escaped += buffer;
            } else {
                escaped += c;
            }
        }
    }
    return escaped;
}

void
JsonWriter::AppendUnsigned(uint64_t value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
    Raw(buffer);
}

void
JsonWriter::HexValue(uint64_t value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "\"0x%016" PRIx64 "\"", value);
    Raw(buffer);
}

void
JsonWriter::Value(double value)
{
    if (!std::isfinite(value)) {
        Raw("null");
        return;
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6f", value);
    Raw(buffer);
}

// ---------------------------------------------------------------------------
// JsonValue accessors.
// ---------------------------------------------------------------------------

const JsonValue*
JsonValue::Find(const std::string& key) const
{
    if (kind != Kind::kObject) {
        return nullptr;
    }
    for (const auto& [name, value] : members) {
        if (name == key) {
            return &value;
        }
    }
    return nullptr;
}

bool
JsonValue::AsUint64(uint64_t* out) const
{
    if (kind == Kind::kNumber) {
        // Re-parse the raw token: the double alone rounds above 2^53.
        // Negative or fractional tokens are not u64 fields.
        if (number_token.empty() || number_token[0] == '-' ||
            number_token.find_first_of(".eE") != std::string::npos) {
            return false;
        }
        errno = 0;
        char* end = nullptr;
        const unsigned long long parsed =
            std::strtoull(number_token.c_str(), &end, 10);
        if (errno != 0 || end == nullptr || *end != '\0') {
            return false;
        }
        *out = static_cast<uint64_t>(parsed);
        return true;
    }
    if (kind == Kind::kString && string_value.size() > 2 &&
        string_value[0] == '0' &&
        (string_value[1] == 'x' || string_value[1] == 'X')) {
        // The writer's HexValue convention for 64-bit identities.
        errno = 0;
        char* end = nullptr;
        const unsigned long long parsed =
            std::strtoull(string_value.c_str() + 2, &end, 16);
        if (errno != 0 || end == nullptr || *end != '\0') {
            return false;
        }
        *out = static_cast<uint64_t>(parsed);
        return true;
    }
    return false;
}

bool
JsonValue::AsDouble(double* out) const
{
    if (kind == Kind::kNumber) {
        *out = number_value;
        return true;
    }
    if (kind == Kind::kNull) {
        // null is how the writer emits NaN/Inf ("not a measurement");
        // reading it back as 0.0 keeps decoded structs finite.
        *out = 0.0;
        return true;
    }
    return false;
}

bool
JsonValue::AsBool(bool* out) const
{
    if (kind != Kind::kBool) {
        return false;
    }
    *out = bool_value;
    return true;
}

bool
JsonValue::AsString(std::string* out) const
{
    if (kind != Kind::kString) {
        return false;
    }
    *out = string_value;
    return true;
}

bool
JsonValue::GetUint64(const std::string& key, uint64_t* out) const
{
    const JsonValue* value = Find(key);
    return value != nullptr && value->AsUint64(out);
}

bool
JsonValue::GetDouble(const std::string& key, double* out) const
{
    const JsonValue* value = Find(key);
    return value != nullptr && value->AsDouble(out);
}

bool
JsonValue::GetBool(const std::string& key, bool* out) const
{
    const JsonValue* value = Find(key);
    return value != nullptr && value->AsBool(out);
}

bool
JsonValue::GetString(const std::string& key, std::string* out) const
{
    const JsonValue* value = Find(key);
    return value != nullptr && value->AsString(out);
}

// ---------------------------------------------------------------------------
// Parser. Strict RFC 8259 value grammar: objects, arrays, strings with
// escapes, numbers (no bare nan/inf/hex), true/false/null. Succeeds iff
// the whole text is exactly one valid value.
// ---------------------------------------------------------------------------

namespace {

/// Wire messages and reports nest a handful of levels; anything deeper
/// is garbage input, not a document — bail before the recursion can
/// overflow the stack.
constexpr int kMaxDepth = 128;

class Parser
{
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    bool Parse(JsonValue* value, std::string* error)
    {
        SkipWs();
        if (!ParseValue(value, 0)) {
            if (error != nullptr) {
                char buffer[64];
                std::snprintf(buffer, sizeof(buffer), " at offset %zu",
                              pos_);
                *error = reason_ + buffer;
            }
            return false;
        }
        SkipWs();
        if (pos_ != text_.size()) {
            if (error != nullptr) {
                char buffer[96];
                std::snprintf(buffer, sizeof(buffer),
                              "trailing content at offset %zu", pos_);
                *error = buffer;
            }
            return false;
        }
        return true;
    }

  private:
    bool Fail(const char* reason)
    {
        if (reason_.empty()) {
            reason_ = reason;
        }
        return false;
    }

    char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
    bool Eat(char c)
    {
        if (Peek() != c) {
            return false;
        }
        ++pos_;
        return true;
    }
    void SkipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }
    static bool IsDigit(char c) { return c >= '0' && c <= '9'; }
    static bool IsHexDigit(char c)
    {
        return IsDigit(c) || (c >= 'a' && c <= 'f') ||
               (c >= 'A' && c <= 'F');
    }
    static int HexDigit(char c)
    {
        if (IsDigit(c)) {
            return c - '0';
        }
        return (c >= 'a' ? c - 'a' : c - 'A') + 10;
    }

    bool ParseLiteral(const char* literal)
    {
        const size_t len = std::strlen(literal);
        if (text_.compare(pos_, len, literal) != 0) {
            return Fail("invalid literal");
        }
        pos_ += len;
        return true;
    }

    void AppendCodepoint(std::string* out, uint32_t code)
    {
        // Codepoints up to 0xff decode to ONE raw byte: JsonEscape emits
        // raw (not-necessarily-UTF-8) guest bytes as per-byte \u00xx
        // escapes, and the round-trip contract is byte-exact. Larger
        // codepoints (foreign documents) get standard UTF-8.
        if (code < 0x100) {
            *out += static_cast<char>(code);
        } else if (code < 0x800) {
            *out += static_cast<char>(0xc0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3f));
        } else if (code < 0x10000) {
            *out += static_cast<char>(0xe0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            *out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            *out += static_cast<char>(0xf0 | (code >> 18));
            *out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            *out += static_cast<char>(0x80 | (code & 0x3f));
        }
    }

    bool ParseHex4(uint32_t* out)
    {
        uint32_t code = 0;
        for (int i = 0; i < 4; ++i) {
            if (!IsHexDigit(Peek())) {
                return Fail("bad \\u escape");
            }
            code = code * 16 + static_cast<uint32_t>(HexDigit(Peek()));
            ++pos_;
        }
        *out = code;
        return true;
    }

    bool ParseString(std::string* out)
    {
        if (!Eat('"')) {
            return Fail("expected string");
        }
        while (pos_ < text_.size()) {
            const unsigned char c = static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20) {
                return Fail("unescaped control character");
            }
            if (c == '\\') {
                ++pos_;
                const char escape = Peek();
                ++pos_;
                switch (escape) {
                  case '"': *out += '"'; break;
                  case '\\': *out += '\\'; break;
                  case '/': *out += '/'; break;
                  case 'b': *out += '\b'; break;
                  case 'f': *out += '\f'; break;
                  case 'n': *out += '\n'; break;
                  case 'r': *out += '\r'; break;
                  case 't': *out += '\t'; break;
                  case 'u': {
                    uint32_t code = 0;
                    if (!ParseHex4(&code)) {
                        return false;
                    }
                    if (code >= 0xd800 && code < 0xdc00 &&
                        Peek() == '\\') {
                        // Surrogate pair.
                        ++pos_;
                        if (!Eat('u')) {
                            return Fail("lone surrogate");
                        }
                        uint32_t low = 0;
                        if (!ParseHex4(&low)) {
                            return false;
                        }
                        if (low < 0xdc00 || low >= 0xe000) {
                            return Fail("invalid surrogate pair");
                        }
                        code = 0x10000 + ((code - 0xd800) << 10) +
                               (low - 0xdc00);
                    }
                    AppendCodepoint(out, code);
                    break;
                  }
                  default: return Fail("bad escape");
                }
            } else {
                *out += static_cast<char>(c);
                ++pos_;
            }
        }
        return Fail("unterminated string");
    }

    bool ParseNumber(JsonValue* value)
    {
        const size_t start = pos_;
        Eat('-');
        if (Peek() == '0') {
            ++pos_;
        } else if (IsDigit(Peek())) {
            while (IsDigit(Peek())) {
                ++pos_;
            }
        } else {
            return Fail("expected value");  // nan/inf/hex land here.
        }
        if (Eat('.')) {
            if (!IsDigit(Peek())) {
                return Fail("digits required after decimal point");
            }
            while (IsDigit(Peek())) {
                ++pos_;
            }
        }
        if (Peek() == 'e' || Peek() == 'E') {
            ++pos_;
            if (Peek() == '+' || Peek() == '-') {
                ++pos_;
            }
            if (!IsDigit(Peek())) {
                return Fail("digits required in exponent");
            }
            while (IsDigit(Peek())) {
                ++pos_;
            }
        }
        value->kind = JsonValue::Kind::kNumber;
        value->number_token = text_.substr(start, pos_ - start);
        value->number_value = std::strtod(value->number_token.c_str(),
                                          nullptr);
        return true;
    }

    bool ParseObject(JsonValue* value, int depth)
    {
        if (!Eat('{')) {
            return Fail("expected object");
        }
        value->kind = JsonValue::Kind::kObject;
        SkipWs();
        if (Eat('}')) {
            return true;
        }
        for (;;) {
            SkipWs();
            std::string key;
            if (!ParseString(&key)) {
                return false;
            }
            SkipWs();
            if (!Eat(':')) {
                return Fail("expected ':'");
            }
            SkipWs();
            JsonValue member;
            if (!ParseValue(&member, depth + 1)) {
                return false;
            }
            value->members.emplace_back(std::move(key), std::move(member));
            SkipWs();
            if (Eat(',')) {
                continue;
            }
            if (Eat('}')) {
                return true;
            }
            return Fail("expected ',' or '}'");
        }
    }

    bool ParseArray(JsonValue* value, int depth)
    {
        if (!Eat('[')) {
            return Fail("expected array");
        }
        value->kind = JsonValue::Kind::kArray;
        SkipWs();
        if (Eat(']')) {
            return true;
        }
        for (;;) {
            SkipWs();
            JsonValue item;
            if (!ParseValue(&item, depth + 1)) {
                return false;
            }
            value->items.push_back(std::move(item));
            SkipWs();
            if (Eat(',')) {
                continue;
            }
            if (Eat(']')) {
                return true;
            }
            return Fail("expected ',' or ']'");
        }
    }

    bool ParseValue(JsonValue* value, int depth)
    {
        if (depth > kMaxDepth) {
            return Fail("nesting too deep");
        }
        switch (Peek()) {
          case '{': return ParseObject(value, depth);
          case '[': return ParseArray(value, depth);
          case '"':
            value->kind = JsonValue::Kind::kString;
            return ParseString(&value->string_value);
          case 't':
            value->kind = JsonValue::Kind::kBool;
            value->bool_value = true;
            return ParseLiteral("true");
          case 'f':
            value->kind = JsonValue::Kind::kBool;
            value->bool_value = false;
            return ParseLiteral("false");
          case 'n':
            value->kind = JsonValue::Kind::kNull;
            return ParseLiteral("null");
          default: return ParseNumber(value);
        }
    }

    const std::string& text_;
    size_t pos_ = 0;
    std::string reason_;
};

}  // namespace

bool
ParseJson(const std::string& text, JsonValue* value, std::string* error)
{
    *value = JsonValue();  // A reused output must not accumulate state.
    Parser parser(text);
    return parser.Parse(value, error);
}

bool
JsonValid(const std::string& text)
{
    JsonValue value;
    return ParseJson(text, &value, nullptr);
}

}  // namespace chef::support
