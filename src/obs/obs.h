#ifndef CHEF_OBS_OBS_H_
#define CHEF_OBS_OBS_H_

/// \file
/// ObsContext: the handle every layer takes to participate in
/// telemetry. A pair of non-owning pointers — null members mean "that
/// facility is off", and the instrumentation sites are written so the
/// null case costs a single branch. Default-constructed ObsContext is
/// fully disabled, which is the default everywhere: telemetry is strictly
/// opt-in per run.
///
/// Ownership: whoever creates the run scope owns the registry and
/// tracer (a shard worker per RunRequest, chef_shard's coordinator path
/// per invocation, a test per fixture) and keeps them alive across the
/// run; everything downstream copies the context by value.

#include "obs/metrics.h"
#include "obs/trace.h"

namespace chef::obs {

class AttributionProfiler;
class TimeSeriesRecorder;

struct ObsContext {
    MetricsRegistry* metrics = nullptr;
    PhaseTracer* tracer = nullptr;
    /// Interval sampler over `metrics` (see obs/timeseries.h). When
    /// set alongside `metrics`, ExplorationService::RunBatch runs a
    /// sampler thread at the recorder's cadence for the life of the
    /// batch.
    TimeSeriesRecorder* timeseries = nullptr;
    /// Per-location cost/yield accounting (see obs/attribution.h).
    /// Installed per job by ExplorationService::RunJob; Solver::Solve
    /// charges wall time to the ambient location through it.
    AttributionProfiler* attribution = nullptr;

    bool metrics_enabled() const { return metrics != nullptr; }
    bool tracing_enabled() const
    {
        return tracer != nullptr && tracer->enabled();
    }
    bool timeseries_enabled() const
    {
        return timeseries != nullptr && metrics != nullptr;
    }
    bool attribution_enabled() const { return attribution != nullptr; }
};

}  // namespace chef::obs

#endif  // CHEF_OBS_OBS_H_
