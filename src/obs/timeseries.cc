#include "obs/timeseries.h"

#include <algorithm>
#include <array>
#include <cstdio>

#include "support/json.h"

namespace chef::obs {

namespace {

// Baseline position for a window ending at samples.back(): the newest
// sample with t <= t_end - window, else the oldest. Callers guarantee
// samples.size() >= 2.
size_t BaselinePosition(const std::vector<SeriesSample>& samples,
                        double window_seconds)
{
    const double cutoff = samples.back().t_seconds - window_seconds;
    size_t best = 0;
    for (size_t i = 0; i + 1 < samples.size(); ++i) {
        if (samples[i].t_seconds <= cutoff) {
            best = i;
        } else {
            break;
        }
    }
    return best;
}

// Counter delta between baseline and newest, clamped at 0, plus the
// elapsed time. Returns false when fewer than two samples or no time
// elapsed.
bool WindowDelta(const std::vector<SeriesSample>& samples,
                 const std::string& counter, double window_seconds,
                 uint64_t* delta, double* dt)
{
    if (samples.size() < 2) {
        return false;
    }
    const size_t base = BaselinePosition(samples, window_seconds);
    const SeriesSample& oldest = samples[base];
    const SeriesSample& newest = samples.back();
    *dt = newest.t_seconds - oldest.t_seconds;
    if (*dt <= 0.0) {
        return false;
    }
    const uint64_t before = oldest.metrics.CounterValue(counter);
    const uint64_t after = newest.metrics.CounterValue(counter);
    *delta = after > before ? after - before : 0;
    return true;
}

}  // namespace

int64_t SnapshotGauge(const MetricsSnapshot& snapshot,
                      const std::string& name, int64_t fallback)
{
    for (const auto& [gauge_name, value] : snapshot.gauges) {
        if (gauge_name == name) {
            return value;
        }
    }
    return fallback;
}

double WindowedCounterRate(const std::vector<SeriesSample>& samples,
                           const std::string& counter, double window_seconds)
{
    uint64_t delta = 0;
    double dt = 0.0;
    if (!WindowDelta(samples, counter, window_seconds, &delta, &dt)) {
        return 0.0;
    }
    return static_cast<double>(delta) / dt;
}

double WindowedCounterRatio(const std::vector<SeriesSample>& samples,
                            const std::string& numerator,
                            const std::string& denominator,
                            double window_seconds)
{
    uint64_t num = 0;
    uint64_t den = 0;
    double dt = 0.0;
    if (!WindowDelta(samples, denominator, window_seconds, &den, &dt) ||
        den == 0) {
        return 0.0;
    }
    WindowDelta(samples, numerator, window_seconds, &num, &dt);
    return static_cast<double>(num) / static_cast<double>(den);
}

double WindowedHistogramSumRate(const std::vector<SeriesSample>& samples,
                                const std::string& histogram,
                                double window_seconds)
{
    if (samples.size() < 2) {
        return 0.0;
    }
    const size_t base = BaselinePosition(samples, window_seconds);
    const SeriesSample& oldest = samples[base];
    const SeriesSample& newest = samples.back();
    const double dt = newest.t_seconds - oldest.t_seconds;
    if (dt <= 0.0) {
        return 0.0;
    }
    const HistogramSnapshot* after = newest.metrics.FindHistogram(histogram);
    if (after == nullptr) {
        return 0.0;
    }
    const HistogramSnapshot* before = oldest.metrics.FindHistogram(histogram);
    const uint64_t sum_before = before == nullptr ? 0 : before->sum_nanos;
    const uint64_t delta =
        after->sum_nanos > sum_before ? after->sum_nanos - sum_before : 0;
    return static_cast<double>(delta) / 1e9 / dt;
}

bool WindowedHistogramDelta(const std::vector<SeriesSample>& samples,
                            const std::string& histogram,
                            double window_seconds, HistogramSnapshot* delta)
{
    if (samples.size() < 2) {
        return false;
    }
    const size_t base = BaselinePosition(samples, window_seconds);
    const HistogramSnapshot* after =
        samples.back().metrics.FindHistogram(histogram);
    if (after == nullptr) {
        return false;
    }
    const HistogramSnapshot* before =
        samples[base].metrics.FindHistogram(histogram);
    HistogramSnapshot out;
    out.name = after->name;
    const uint64_t count_before = before == nullptr ? 0 : before->count;
    if (after->count <= count_before) {
        return false;
    }
    out.count = after->count - count_before;
    const uint64_t sum_before = before == nullptr ? 0 : before->sum_nanos;
    out.sum_nanos =
        after->sum_nanos > sum_before ? after->sum_nanos - sum_before : 0;
    // Min/max are cumulative in the source snapshots; the window keeps
    // the newest cumulative values so QuantileSeconds stays clamped to
    // a real observed latency (conservative, biased high).
    out.min_nanos = after->min_nanos;
    out.max_nanos = after->max_nanos;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
        const uint64_t bucket_before =
            before == nullptr ? 0 : before->buckets[b];
        out.buckets[b] = after->buckets[b] > bucket_before
                             ? after->buckets[b] - bucket_before
                             : 0;
    }
    *delta = std::move(out);
    return true;
}

// --- TimeSeriesRecorder -----------------------------------------------

TimeSeriesRecorder::TimeSeriesRecorder(Options options)
    : options_(options), epoch_(std::chrono::steady_clock::now())
{
    if (options_.interval_seconds <= 0.0) {
        options_.interval_seconds = 0.1;
    }
    if (options_.raw_capacity == 0) {
        options_.raw_capacity = 1;
    }
    if (options_.tier_capacity == 0) {
        options_.tier_capacity = 1;
    }
    if (options_.coarsen_factor < 2) {
        options_.coarsen_factor = 2;
    }
    if (options_.default_window_seconds <= 0.0) {
        options_.default_window_seconds = 2.0;
    }
    tiers_.resize(1 + options_.coarse_tiers);
    arrivals_.assign(tiers_.size(), 0);
}

double TimeSeriesRecorder::ElapsedSeconds() const
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
}

void TimeSeriesRecorder::SampleNow(const MetricsRegistry& registry)
{
    MetricsSnapshot snapshot = registry.Snapshot();
    const double t = ElapsedSeconds();
    std::lock_guard<std::mutex> lock(mutex_);
    RecordLocked(t, std::move(snapshot));
}

bool TimeSeriesRecorder::MaybeSample(const MetricsRegistry& registry)
{
    const double t = ElapsedSeconds();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (last_sample_t_ >= 0.0 &&
            t - last_sample_t_ < options_.interval_seconds) {
            return false;
        }
    }
    SampleNow(registry);
    return true;
}

void TimeSeriesRecorder::Record(double t_seconds, MetricsSnapshot snapshot)
{
    std::lock_guard<std::mutex> lock(mutex_);
    RecordLocked(t_seconds, std::move(snapshot));
}

void TimeSeriesRecorder::RecordLocked(double t_seconds,
                                      MetricsSnapshot snapshot)
{
    SeriesSample sample;
    sample.index = next_index_++;
    sample.t_seconds = std::max(t_seconds, last_sample_t_);
    sample.metrics = std::move(snapshot);
    last_sample_t_ = sample.t_seconds;

    // Tier 0 always takes the sample; every coarsen_factor-th arrival
    // at tier k also lands in tier k+1.
    size_t k = 0;
    while (true) {
        arrivals_[k]++;
        const size_t capacity =
            k == 0 ? options_.raw_capacity : options_.tier_capacity;
        tiers_[k].push_back(sample);
        if (tiers_[k].size() > capacity) {
            tiers_[k].pop_front();
        }
        if (k + 1 >= tiers_.size() ||
            arrivals_[k] % options_.coarsen_factor != 0) {
            break;
        }
        ++k;
    }
}

uint64_t TimeSeriesRecorder::last_index() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return next_index_ - 1;
}

uint64_t TimeSeriesRecorder::total_recorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return next_index_ - 1;
}

std::vector<SeriesSample> TimeSeriesRecorder::SamplesSince(
    uint64_t since_index) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SeriesSample> out;
    for (const SeriesSample& sample : tiers_[0]) {
        if (sample.index > since_index) {
            out.push_back(sample);
        }
    }
    return out;
}

std::vector<SeriesSample> TimeSeriesRecorder::RetainedLocked() const
{
    std::vector<SeriesSample> out;
    for (const auto& tier : tiers_) {
        out.insert(out.end(), tier.begin(), tier.end());
    }
    std::sort(out.begin(), out.end(),
              [](const SeriesSample& a, const SeriesSample& b) {
                  return a.index < b.index;
              });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const SeriesSample& a, const SeriesSample& b) {
                              return a.index == b.index;
                          }),
              out.end());
    return out;
}

std::vector<SeriesSample> TimeSeriesRecorder::Retained() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return RetainedLocked();
}

bool TimeSeriesRecorder::Latest(SeriesSample* out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (tiers_[0].empty()) {
        return false;
    }
    *out = tiers_[0].back();
    return true;
}

double TimeSeriesRecorder::WindowedRate(const std::string& counter,
                                        double window_seconds) const
{
    if (window_seconds <= 0.0) {
        window_seconds = options_.default_window_seconds;
    }
    return WindowedCounterRate(Retained(), counter, window_seconds);
}

double TimeSeriesRecorder::WindowedRatio(const std::string& numerator,
                                         const std::string& denominator,
                                         double window_seconds) const
{
    if (window_seconds <= 0.0) {
        window_seconds = options_.default_window_seconds;
    }
    return WindowedCounterRatio(Retained(), numerator, denominator,
                                window_seconds);
}

bool TimeSeriesRecorder::WindowedHistogram(const std::string& histogram,
                                           HistogramSnapshot* delta,
                                           double window_seconds) const
{
    if (window_seconds <= 0.0) {
        window_seconds = options_.default_window_seconds;
    }
    return WindowedHistogramDelta(Retained(), histogram, window_seconds,
                                  delta);
}

// --- ClusterSeries ----------------------------------------------------

ClusterSeries::ClusterSeries(Options options) : options_(options)
{
    if (options_.max_samples_per_source < 8) {
        options_.max_samples_per_source = 8;
    }
}

size_t ClusterSeries::Update(const std::string& source,
                             const std::vector<SeriesSample>& samples)
{
    std::vector<SeriesSample>& series = series_[source];
    size_t fresh = 0;
    for (const SeriesSample& sample : samples) {
        if (series.empty() || sample.index > series.back().index) {
            series.push_back(sample);
            ++fresh;
            continue;
        }
        auto it = std::lower_bound(
            series.begin(), series.end(), sample.index,
            [](const SeriesSample& a, uint64_t index) {
                return a.index < index;
            });
        if (it != series.end() && it->index == sample.index) {
            continue;  // Re-delivered sample: idempotent.
        }
        series.insert(it, sample);
        ++fresh;
    }
    if (series.size() > options_.max_samples_per_source) {
        // Thin the older half: drop every second sample, keeping curve
        // shape while bounding retention.
        std::vector<SeriesSample> thinned;
        thinned.reserve(series.size() * 3 / 4 + 1);
        const size_t half = series.size() / 2;
        for (size_t i = 0; i < series.size(); ++i) {
            if (i >= half || i % 2 == 0) {
                thinned.push_back(std::move(series[i]));
            }
        }
        series = std::move(thinned);
    }
    return fresh;
}

void ClusterSeries::Clear() { series_.clear(); }

std::vector<std::string> ClusterSeries::Sources() const
{
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto& [source, samples] : series_) {
        (void)samples;
        out.push_back(source);
    }
    return out;
}

const std::vector<SeriesSample>* ClusterSeries::SeriesFor(
    const std::string& source) const
{
    auto it = series_.find(source);
    return it == series_.end() ? nullptr : &it->second;
}

size_t ClusterSeries::total_samples() const
{
    size_t total = 0;
    for (const auto& [source, samples] : series_) {
        (void)source;
        total += samples.size();
    }
    return total;
}

double ClusterSeries::LatestTimeSeconds() const
{
    double latest = 0.0;
    for (const auto& [source, samples] : series_) {
        (void)source;
        if (!samples.empty()) {
            latest = std::max(latest, samples.back().t_seconds);
        }
    }
    return latest;
}

MetricsSnapshot ClusterSeries::MergedLatest() const
{
    MetricsSnapshot merged;
    for (const auto& [source, samples] : series_) {
        (void)source;
        if (!samples.empty()) {
            merged.MergeFrom(samples.back().metrics);
        }
    }
    return merged;
}

std::vector<std::pair<double, uint64_t>> ClusterSeries::MergedCounterCurve(
    const std::string& counter) const
{
    // Per-source step functions (t -> cumulative value).
    struct Walker {
        const std::vector<SeriesSample>* samples;
        size_t pos = 0;
        uint64_t current = 0;
    };
    std::vector<Walker> walkers;
    std::vector<double> times;
    for (const auto& [source, samples] : series_) {
        (void)source;
        if (samples.empty()) {
            continue;
        }
        walkers.push_back(Walker{&samples, 0, 0});
        for (const SeriesSample& sample : samples) {
            times.push_back(sample.t_seconds);
        }
    }
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());

    std::vector<std::pair<double, uint64_t>> curve;
    curve.reserve(times.size());
    for (double t : times) {
        uint64_t total = 0;
        for (Walker& walker : walkers) {
            const std::vector<SeriesSample>& samples = *walker.samples;
            while (walker.pos < samples.size() &&
                   samples[walker.pos].t_seconds <= t) {
                walker.current =
                    samples[walker.pos].metrics.CounterValue(counter);
                ++walker.pos;
            }
            total += walker.current;
        }
        curve.emplace_back(t, total);
    }
    return curve;
}

double ClusterSeries::WindowedRate(const std::string& source,
                                   const std::string& counter,
                                   double window_seconds) const
{
    const std::vector<SeriesSample>* samples = SeriesFor(source);
    if (samples == nullptr) {
        return 0.0;
    }
    return WindowedCounterRate(*samples, counter, window_seconds);
}

// --- Serialization ----------------------------------------------------

void WriteSeriesSamples(support::JsonWriter& json,
                        const std::vector<SeriesSample>& samples)
{
    json.BeginArray();
    for (const SeriesSample& sample : samples) {
        json.BeginObject();
        json.Key("index");
        json.Value(sample.index);
        json.Key("t_seconds");
        json.Value(sample.t_seconds);
        json.Key("metrics");
        WriteMetricsSnapshot(json, sample.metrics);
        json.EndObject();
    }
    json.EndArray();
}

bool DecodeSeriesSamples(const support::JsonValue& array,
                         std::vector<SeriesSample>* samples,
                         std::string* error)
{
    if (array.kind != support::JsonValue::Kind::kArray) {
        if (error != nullptr) {
            *error = "series: expected array";
        }
        return false;
    }
    std::vector<SeriesSample> out;
    out.reserve(array.items.size());
    for (const support::JsonValue& item : array.items) {
        SeriesSample sample;
        if (!item.GetUint64("index", &sample.index) || sample.index == 0) {
            if (error != nullptr) {
                *error = "series sample: missing or zero index";
            }
            return false;
        }
        if (!item.GetDouble("t_seconds", &sample.t_seconds)) {
            if (error != nullptr) {
                *error = "series sample: missing t_seconds";
            }
            return false;
        }
        const support::JsonValue* metrics = item.Find("metrics");
        if (metrics == nullptr ||
            !DecodeMetricsSnapshot(*metrics, &sample.metrics, error)) {
            if (error != nullptr && metrics == nullptr) {
                *error = "series sample: missing metrics";
            }
            return false;
        }
        out.push_back(std::move(sample));
    }
    *samples = std::move(out);
    return true;
}

std::string RenderClusterSeriesJson(const ClusterSeries& series)
{
    support::JsonWriter json;
    json.BeginObject();
    json.Key("series");
    json.BeginObject();
    for (const std::string& source : series.Sources()) {
        json.Key(source.c_str());
        WriteSeriesSamples(json, *series.SeriesFor(source));
    }
    json.EndObject();
    json.EndObject();
    return json.Take();
}

std::string RenderSeriesSampleNdjson(const ClusterSeries& series,
                                     const std::string& source,
                                     const SeriesSample& sample,
                                     double window_seconds)
{
    // Rates are computed over this source's samples up to (and
    // including) the reported one, so a drained backlog renders the
    // same lines that live streaming would have.
    std::vector<SeriesSample> prefix;
    if (const std::vector<SeriesSample>* samples = series.SeriesFor(source)) {
        for (const SeriesSample& s : *samples) {
            if (s.index <= sample.index) {
                prefix.push_back(s);
            }
        }
    }
    if (prefix.empty() || prefix.back().index != sample.index) {
        prefix.push_back(sample);
    }

    support::JsonWriter json;
    json.BeginObject();
    json.Key("source");
    json.Value(source);
    json.Key("index");
    json.Value(sample.index);
    json.Key("t_seconds");
    json.Value(sample.t_seconds);
    json.Key("jobs_per_second");
    json.Value(WindowedCounterRate(prefix, kJobsFinishedCounter,
                                   window_seconds));
    json.Key("fingerprints_per_second");
    json.Value(WindowedCounterRate(prefix, kFingerprintsNewCounter,
                                   window_seconds));
    json.Key("solver_seconds_per_second");
    json.Value(WindowedHistogramSumRate(prefix, kSolverSolveHistogram,
                                        window_seconds));
    json.Key("shared_cache_hit_rate");
    json.Value(WindowedCounterRatio(prefix, kSharedCacheHitsCounter,
                                    kSolverQueriesCounter, window_seconds));
    HistogramSnapshot delta;
    json.Key("solver_p95_seconds");
    json.Value(WindowedHistogramDelta(prefix, kSolverSolveHistogram,
                                      window_seconds, &delta)
                   ? delta.QuantileSeconds(0.95)
                   : 0.0);
    json.Key("corpus_size");
    json.Value(
        static_cast<uint64_t>(std::max<int64_t>(
            0, SnapshotGauge(sample.metrics, kCorpusSizeGauge))));
    json.Key("plateau_cancels");
    json.Value(sample.metrics.CounterValue(kPlateauCancelsCounter));
    json.Key("cluster");
    json.BeginObject();
    const MetricsSnapshot merged = series.MergedLatest();
    json.Key("sources");
    json.Value(series.Sources().size());
    json.Key("jobs_finished");
    json.Value(merged.CounterValue(kJobsFinishedCounter));
    json.Key("fingerprints_total");
    json.Value(merged.CounterValue(kFingerprintsNewCounter));
    json.EndObject();
    json.EndObject();
    std::string line = json.Take();
    line += '\n';
    return line;
}

std::string RenderCoverageCurvesCsv(const ClusterSeries& series)
{
    std::string out = "workload,t_seconds,jobs_finished,new_fingerprints\n";
    const MetricsSnapshot merged = series.MergedLatest();

    // (display name, fingerprint counter, jobs counter) per workload;
    // "__all__" carries the unsuffixed cluster totals.
    std::vector<std::array<std::string, 3>> curves;
    const std::string prefix = std::string(kFingerprintsNewCounter) + ".";
    if (merged.CounterValue(kFingerprintsNewCounter) > 0 ||
        merged.CounterValue(kJobsFinishedCounter) > 0) {
        curves.push_back({"__all__", kFingerprintsNewCounter,
                          kJobsFinishedCounter});
    }
    for (const auto& [name, value] : merged.counters) {
        (void)value;
        if (name.size() > prefix.size() &&
            name.compare(0, prefix.size(), prefix) == 0) {
            const std::string workload = name.substr(prefix.size());
            curves.push_back(
                {workload, name,
                 std::string(kJobsFinishedCounter) + "." + workload});
        }
    }

    char row[256];
    for (const auto& curve : curves) {
        const auto fingerprints = series.MergedCounterCurve(curve[1]);
        const auto jobs = series.MergedCounterCurve(curve[2]);
        size_t jobs_pos = 0;
        uint64_t jobs_at_t = 0;
        for (const auto& [t, value] : fingerprints) {
            while (jobs_pos < jobs.size() && jobs[jobs_pos].first <= t) {
                jobs_at_t = jobs[jobs_pos].second;
                ++jobs_pos;
            }
            std::snprintf(row, sizeof(row),
                          "%s,%.6f,%llu,%llu\n", curve[0].c_str(), t,
                          static_cast<unsigned long long>(jobs_at_t),
                          static_cast<unsigned long long>(value));
            out += row;
        }
    }
    return out;
}

}  // namespace chef::obs
