#ifndef CHEF_OBS_TIMESERIES_H_
#define CHEF_OBS_TIMESERIES_H_

/// \file
/// Time-series telemetry on top of the metrics registry: the temporal
/// axis the paper's headline figures live on (Figure 9 plots coverage
/// *over time*), and the data the rate-based plateau policy and the
/// live cluster monitor consume.
///
/// A TimeSeriesRecorder samples a MetricsRegistry on a steady-clock
/// interval into bounded ring tiers:
///
///   tier 0  — every sample, a ring of the most recent `raw_capacity`
///             snapshots (the "recent window" all rate queries hit);
///   tier k  — every `coarsen_factor`^k-th sample, rings of
///             `tier_capacity` snapshots each (the coarsened
///             long-horizon view that survives tier-0 wraparound).
///
/// Each sample is one whole MetricsSnapshot, so serialization, cluster
/// merging, and windowed histogram quantiles all reuse the PR 6
/// machinery instead of inventing per-metric storage. Memory is bounded
/// by (raw_capacity + coarse_tiers * tier_capacity) snapshots
/// regardless of run length.
///
/// Windowed rates are counter deltas between the newest sample and the
/// newest sample at least `window` seconds older (falling back to the
/// oldest retained sample for short runs): jobs/s, new-fingerprints/s,
/// solver-seconds/s, shared-cache hit rate. Windowed latency quantiles
/// come from bucket-wise histogram deltas between the same two samples.
///
/// ClusterSeries is the coordinator-side merge: one series per source
/// shard, updated idempotently from gossip (samples keyed by index),
/// with merged counter curves defined as the sum over sources of each
/// source's last value at-or-before t — order- and arrival-independent,
/// and monotone whenever the per-source counters are.
///
/// Serialization: strict JSON sample arrays (wire v2.1 "series" fields,
/// report telemetry), NDJSON lines for --stats-out streaming, and the
/// per-workload coverage_curves CSV that reproduces Figure 9.

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace chef::support {
class JsonWriter;
struct JsonValue;
}  // namespace chef::support

namespace chef::obs {

// Instrument names the service layer publishes for time-series
// consumers. Per-workload variants append ".<workload>".
inline constexpr char kJobsFinishedCounter[] = "service.jobs_finished";
inline constexpr char kFingerprintsNewCounter[] = "corpus.fingerprints_new";
inline constexpr char kCorpusSizeGauge[] = "corpus.size";
inline constexpr char kSolverSolveHistogram[] = "solver.solve_seconds";
inline constexpr char kSolverQueriesCounter[] = "solver.queries";
inline constexpr char kSharedCacheHitsCounter[] = "solver.shared_cache_hits";
inline constexpr char kPlateauCancelsCounter[] = "scheduler.plateau_cancels";
inline constexpr char kStatesInFlightGauge[] =
    "engine.parallel.states_in_flight";
inline constexpr char kClaimContentionCounter[] =
    "engine.parallel.claim_contention";

/// One point on the time axis: a whole-registry snapshot stamped with
/// the recorder's 1-based sample index and seconds since its epoch.
struct SeriesSample {
    uint64_t index = 0;
    double t_seconds = 0.0;
    MetricsSnapshot metrics;
};

/// Gauge lookup over a snapshot (counters have CounterValue already).
/// Returns \p fallback when absent.
int64_t SnapshotGauge(const MetricsSnapshot& snapshot,
                      const std::string& name, int64_t fallback = 0);

// --- Windowed queries over an ascending-by-time sample vector ---------
//
// The baseline sample is the newest one with t <= newest.t - window,
// falling back to the oldest available; all return 0 / false when fewer
// than two distinct samples (or zero elapsed time) are in range.

/// (counter[newest] - counter[baseline]) / (t_newest - t_baseline).
/// Clamped at 0 (counters are monotone per source).
double WindowedCounterRate(const std::vector<SeriesSample>& samples,
                           const std::string& counter,
                           double window_seconds);

/// delta(numerator) / delta(denominator) over the window; 0 when the
/// denominator did not move.
double WindowedCounterRatio(const std::vector<SeriesSample>& samples,
                            const std::string& numerator,
                            const std::string& denominator,
                            double window_seconds);

/// Histogram-sum rate: delta(sum_nanos)/1e9 per elapsed second — e.g.
/// solver-seconds spent per wall second over the window.
double WindowedHistogramSumRate(const std::vector<SeriesSample>& samples,
                                const std::string& histogram,
                                double window_seconds);

/// Bucket-wise histogram delta over the window (count, sum, buckets
/// subtract; min/max fall back to the newest sample's cumulative values,
/// keeping QuantileSeconds' conservative-high bias). False when the
/// histogram is absent or nothing was recorded in the window.
bool WindowedHistogramDelta(const std::vector<SeriesSample>& samples,
                            const std::string& histogram,
                            double window_seconds, HistogramSnapshot* delta);

/// Bounded-memory interval sampler over one MetricsRegistry. Thread-safe:
/// the service's sampler thread records while the shard worker's protocol
/// thread drains SamplesSince for gossip.
class TimeSeriesRecorder
{
  public:
    struct Options {
        /// Sampling cadence for MaybeSample (the service sampler thread
        /// also sleeps this long between samples).
        double interval_seconds = 0.1;
        /// Tier-0 ring: every sample, most recent window.
        size_t raw_capacity = 256;
        /// Coarse rings above tier 0.
        size_t coarse_tiers = 2;
        /// Every coarsen_factor-th sample of tier k promotes to k+1.
        size_t coarsen_factor = 8;
        /// Capacity of each coarse tier's ring.
        size_t tier_capacity = 128;
        /// Default window for the convenience rate queries below.
        double default_window_seconds = 2.0;
    };

    // Delegation instead of a default argument: a `= Options()` default
    // would need the nested struct's member initializers before the
    // enclosing class is complete, which gcc rejects.
    TimeSeriesRecorder() : TimeSeriesRecorder(Options()) {}
    explicit TimeSeriesRecorder(Options options);

    const Options& options() const { return options_; }

    /// Seconds since construction on the steady clock.
    double ElapsedSeconds() const;

    /// Unconditionally snapshot \p registry now.
    void SampleNow(const MetricsRegistry& registry);

    /// Snapshot iff at least interval_seconds elapsed since the last
    /// sample. Returns true when a sample was taken.
    bool MaybeSample(const MetricsRegistry& registry);

    /// Deterministic entry (tests, replay): record a pre-built snapshot
    /// at an explicit time. Times must be non-decreasing.
    void Record(double t_seconds, MetricsSnapshot snapshot);

    /// Index of the newest sample; 0 when none recorded yet.
    uint64_t last_index() const;
    /// Total samples ever recorded (>= retained).
    uint64_t total_recorded() const;

    /// Tier-0 samples with index > since_index, ascending. The gossip
    /// shipper's incremental drain: callers remember the last shipped
    /// index. After tier-0 wraparound older unshipped samples are gone —
    /// by design; shippers run at the same cadence as sampling.
    std::vector<SeriesSample> SamplesSince(uint64_t since_index) const;

    /// Every retained sample across all tiers, deduplicated by index,
    /// ascending. The long-horizon view: recent samples dense, older
    /// samples coarsened.
    std::vector<SeriesSample> Retained() const;

    /// Newest sample; false when none.
    bool Latest(SeriesSample* out) const;

    // Windowed conveniences over Retained().
    double WindowedRate(const std::string& counter,
                        double window_seconds = 0.0) const;
    double WindowedRatio(const std::string& numerator,
                         const std::string& denominator,
                         double window_seconds = 0.0) const;
    bool WindowedHistogram(const std::string& histogram,
                           HistogramSnapshot* delta,
                           double window_seconds = 0.0) const;

  private:
    void RecordLocked(double t_seconds, MetricsSnapshot snapshot);
    std::vector<SeriesSample> RetainedLocked() const;

    Options options_;
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mutex_;
    uint64_t next_index_ = 1;
    double last_sample_t_ = -1.0;
    /// tiers_[0] is raw; tiers_[k] holds every coarsen_factor^k-th
    /// sample. arrivals_[k] counts samples ever offered to tier k.
    std::vector<std::deque<SeriesSample>> tiers_;
    std::vector<uint64_t> arrivals_;
};

/// The coordinator's merged cluster view: one bounded series per source
/// shard, fed idempotently from gossip/result "series" payloads.
/// Not internally synchronized — the coordinator mutates and reads it
/// from its Run() thread only (monitor callbacks run on that thread).
class ClusterSeries
{
  public:
    struct Options {
        /// Per-source retention bound; exceeding it thins the older
        /// half (every second sample dropped), preserving curve shape.
        size_t max_samples_per_source = 4096;
    };

    ClusterSeries() : ClusterSeries(Options()) {}
    explicit ClusterSeries(Options options);

    /// Merges \p samples into \p source's series, deduplicating by
    /// sample index (re-delivery is a no-op). Returns how many samples
    /// were new.
    size_t Update(const std::string& source,
                  const std::vector<SeriesSample>& samples);

    void Clear();

    std::vector<std::string> Sources() const;
    /// nullptr when the source is unknown.
    const std::vector<SeriesSample>* SeriesFor(
        const std::string& source) const;
    size_t total_samples() const;

    /// Largest t_seconds across all sources; 0 when empty.
    double LatestTimeSeconds() const;

    /// MergeFrom-fold of every source's newest snapshot (the cluster
    /// point-in-time view; counters sum, gauges label as *_max/_total).
    MetricsSnapshot MergedLatest() const;

    /// Merged counter curve: for each time in the union of all sample
    /// times, the sum over sources of that source's last value
    /// at-or-before t. Order-independent in arrival and merge order;
    /// monotone when every per-source counter is.
    std::vector<std::pair<double, uint64_t>> MergedCounterCurve(
        const std::string& counter) const;

    /// Windowed rate over one source's series (0 for unknown sources).
    double WindowedRate(const std::string& source, const std::string& counter,
                        double window_seconds) const;

  private:
    Options options_;
    std::map<std::string, std::vector<SeriesSample>> series_;
};

/// Serializes samples as a JSON array:
///   [{"index":n,"t_seconds":s,"metrics":{...}},...]
/// with metrics in the WriteMetricsSnapshot schema. This is the wire
/// v2.1 "series" payload and the report's per-source series form.
void WriteSeriesSamples(support::JsonWriter& json,
                        const std::vector<SeriesSample>& samples);

/// Inverse of WriteSeriesSamples; \p array must be a JSON array.
bool DecodeSeriesSamples(const support::JsonValue& array,
                         std::vector<SeriesSample>* samples,
                         std::string* error);

/// Whole-cluster series document: {"series":{"<source>":[samples...]}}.
std::string RenderClusterSeriesJson(const ClusterSeries& series);

/// One NDJSON line (newline-terminated strict JSON object) describing
/// \p sample from \p source plus the cluster context at that point:
/// windowed per-source rates (jobs/s, fingerprints/s, solver-seconds/s,
/// shared-cache hit rate, solver p95), corpus size, plateau cancels,
/// and merged cluster totals. This is the --stats-out record schema.
std::string RenderSeriesSampleNdjson(const ClusterSeries& series,
                                     const std::string& source,
                                     const SeriesSample& sample,
                                     double window_seconds);

/// The Figure-9 reproduction: per-workload new-fingerprint curves vs
/// jobs and vs wall time, one CSV row per merged-curve point:
///   workload,t_seconds,jobs_finished,new_fingerprints
/// Workloads come from `corpus.fingerprints_new.<workload>` counters in
/// the merged cluster view; the pseudo-workload "__all__" carries the
/// unsuffixed cluster totals.
std::string RenderCoverageCurvesCsv(const ClusterSeries& series);

}  // namespace chef::obs

#endif  // CHEF_OBS_TIMESERIES_H_
