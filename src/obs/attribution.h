#ifndef CHEF_OBS_ATTRIBUTION_H_
#define CHEF_OBS_ATTRIBUTION_H_

/// \file
/// The exploration attribution profiler: per-location cost/yield
/// accounting over the high-level PC space, plus frontier introspection.
///
/// The telemetry layers below (metrics, traces, time series) say how
/// much the system spends; this layer says *where in the guest program*
/// the spend goes. Every unit of work — a solver wall-nanosecond, an
/// interpreted step, a fork, an assume-failure, a new HL fingerprint —
/// is charged to the (workload, hl_pc) location that incurred it, so
/// "why is this workload plateauing" becomes a table lookup instead of
/// guesswork.
///
/// Design constraints mirror obs/metrics.h:
///
///  1. The charge path is wait-free and allocation-free: one stripe per
///     thread group (obs::ThisThreadStripe), each stripe an
///     open-addressed fixed-capacity table of cache-friendly cells whose
///     key slot is claimed with a single CAS and whose counters are
///     relaxed atomic adds. A full stripe spills into sibling stripes
///     (Snapshot folds stripes by key, so spilled charges merge back
///     exactly); only when every stripe is full do charges fold into a
///     per-stripe overflow aggregate cell, so totals stay exact even
///     then (dropped_locations counts the redirected charges).
///  2. Reads are point-in-time snapshots: Snapshot() sums stripes into a
///     plain value type (AttributionSnapshot) that merges
///     order-independently and serializes through support/json — the
///     same lifecycle as MetricsSnapshot, so the shard wire and the
///     merged report carry it with the established idioms.
///  3. Charging is ambient-location based where the caller cannot know
///     the location: Solver::Solve charges the thread-local location
///     installed by the innermost ScopedLocation (the engine brackets
///     every Solve call site with the hl_pc of the state being solved).
///
/// Parent links: the first charge that creates a location's cell may
/// record a *discovery predecessor* (the hl_pc observed immediately
/// before it in the interpreter trace). Walking parent links yields the
/// folded-stack lines (`workload;0xroot;...;0xleaf value`) that standard
/// flamegraph tools consume (RenderAttributionFoldedStacks).
///
/// FrontierInspector + FrontierSnapshot cover the other half of the
/// question — not where past work went, but what the strategy is *about
/// to* do: pending-state depth histogram, tree branching factor,
/// in-flight lease ages, and per-strategy pick counts from a bounded
/// strategy-decision audit ring.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace chef::support {
class JsonWriter;
struct JsonValue;
}  // namespace chef::support

namespace chef::obs {

/// Cells per stripe. Guest programs expose hundreds of high-level
/// locations; a thread whose stripe fills spills into sibling stripes
/// (kMetricStripes x this many cells in total per profiler), and only a
/// completely full table folds charges into the overflow pseudo
/// location below — nothing is lost either way.
constexpr size_t kAttributionCellsPerStripe = 256;

/// Reserved hl_pc for the per-stripe overflow aggregate. Real high-level
/// PCs are interpreter line/opcode addresses and never reach this value.
constexpr uint64_t kAttributionOverflowHlPc = UINT64_MAX - 1;

/// "No discovery predecessor recorded" sentinel for AttributionRow::parent.
constexpr uint64_t kAttributionNoParent = UINT64_MAX;

/// One location's accumulated costs (what exploration spent there) and
/// yields (what it got back).
struct AttributionRow {
    uint64_t solver_nanos = 0;      ///< Solver wall time charged here.
    uint64_t solver_queries = 0;    ///< Solve() calls charged here.
    uint64_t steps = 0;             ///< Interpreter steps (log_pc events).
    uint64_t forks = 0;             ///< Alternate states registered here.
    uint64_t assume_failures = 0;   ///< Assumption-violation retries.
    uint64_t new_fingerprints = 0;  ///< New HL path fingerprints (yield).
    uint64_t runs = 0;              ///< Concolic runs originating here.
    /// Discovery predecessor (hl_pc observed immediately before this
    /// location's first charge), or kAttributionNoParent.
    uint64_t parent = kAttributionNoParent;

    uint64_t TotalCharges() const
    {
        return solver_queries + steps + forks + assume_failures +
               new_fingerprints + runs;
    }
};

/// Point-in-time copy of one or more profilers: per-workload tables
/// keyed by hl_pc. A plain value type with the MetricsSnapshot
/// lifecycle — merged across jobs, shards, and requeue rounds;
/// serialized on the gossip wire and into the report's
/// telemetry.attribution section.
struct AttributionSnapshot {
    /// workload -> hl_pc -> row. std::map keeps serialization
    /// deterministic (sorted) regardless of accumulation order.
    std::map<std::string, std::map<uint64_t, AttributionRow>> workloads;
    /// Charges redirected to the overflow pseudo location because a
    /// stripe's cell table was full.
    uint64_t dropped_locations = 0;

    bool empty() const;

    /// Name-keyed, order- and grouping-independent merge: counters sum;
    /// parent links resolve to the smallest recorded parent (a pure
    /// function of the operand set, so shard arrival order cannot
    /// change the result).
    void MergeFrom(const AttributionSnapshot& other);

    /// Sum of solver_nanos over every location, in seconds.
    double SolverSecondsTotal() const;
    /// Sum of new_fingerprints over every location.
    uint64_t NewFingerprintsTotal() const;
};

/// True when the two snapshots agree on every deterministic column:
/// same workloads, same locations, and equal solver_queries / steps /
/// forks / assume_failures / new_fingerprints / runs per location.
/// solver_nanos (wall time) and dropped_locations are excluded — wall
/// time varies run to run even when exploration is bit-identical.
bool AttributionCountsEqual(const AttributionSnapshot& a,
                            const AttributionSnapshot& b);

/// The per-job profiler. Bound to one workload; every charge lands in
/// this thread's stripe with one CAS-claimed cell lookup plus relaxed
/// atomic adds (no locks, no allocation).
class AttributionProfiler
{
  public:
    enum CounterKind : uint32_t {
        kSolverNanos = 0,
        kSolverQueries,
        kSteps,
        kForks,
        kAssumeFailures,
        kNewFingerprints,
        kRuns,
        kCounterKinds,
    };

    explicit AttributionProfiler(std::string workload);

    const std::string& workload() const { return workload_; }

    /// Charges \p delta of \p kind to \p hl_pc. Wait-free.
    void Charge(uint64_t hl_pc, CounterKind kind, uint64_t delta = 1);

    /// Charge that additionally records \p parent as the discovery
    /// predecessor if this location has none yet.
    void ChargeWithParent(uint64_t hl_pc, uint64_t parent,
                          CounterKind kind, uint64_t delta = 1);

    /// Charges one solver query of \p nanos wall time to the current
    /// thread's ambient location (see ScopedLocation). Called by
    /// Solver::Solve with the same duration it feeds the latency
    /// histogram, so attribution totals and solver_seconds_total agree.
    void ChargeSolver(uint64_t nanos);

    AttributionSnapshot Snapshot() const;

  private:
    struct Cell {
        std::atomic<uint64_t> key{kEmptyKey};
        std::atomic<uint64_t> parent{kAttributionNoParent};
        std::array<std::atomic<uint64_t>, kCounterKinds> counts{};
    };
    struct alignas(64) Stripe {
        std::array<Cell, kAttributionCellsPerStripe> cells{};
        Cell overflow{};
        std::atomic<uint64_t> dropped{0};
    };

    static constexpr uint64_t kEmptyKey = UINT64_MAX;

    /// Finds or CAS-claims the cell for \p key in \p stripe; null when
    /// the stripe is full.
    Cell* FindCell(Stripe& stripe, uint64_t key);

    /// Finds or claims \p key's cell, probing this thread's stripe
    /// first and spilling into sibling stripes when it is full. Fills
    /// \p home with the thread's own stripe (for overflow accounting);
    /// returns null only when every stripe is full.
    Cell* LocateCell(uint64_t key, Stripe** home);

    std::string workload_;
    std::unique_ptr<Stripe[]> stripes_;
};

/// Installs \p hl_pc as this thread's ambient attribution location for
/// the scope's lifetime (restores the previous location on exit). The
/// engine brackets every Solve call site with the location being
/// solved; code that runs outside any scope charges the root location
/// (hl_pc 0).
class ScopedLocation
{
  public:
    explicit ScopedLocation(uint64_t hl_pc);
    ~ScopedLocation();

    ScopedLocation(const ScopedLocation&) = delete;
    ScopedLocation& operator=(const ScopedLocation&) = delete;

  private:
    uint64_t saved_;
};

/// This thread's current ambient location (0 outside any ScopedLocation).
uint64_t CurrentAmbientLocation();

// ---------------------------------------------------------------------------
// Frontier introspection

/// Depth buckets for the pending-state histogram: bucket b counts
/// pending states with floor(log2(depth + 1)) == b (so bucket 0 is
/// depth 0, bucket 1 is depth 1-2, ...), and the last bucket absorbs
/// the tail.
constexpr size_t kFrontierDepthBuckets = 16;

/// Point-in-time view of the exploration frontier: what is pending,
/// what is leased out, and how the strategy has been picking.
struct FrontierSnapshot {
    uint64_t pending = 0;    ///< States awaiting selection.
    uint64_t in_flight = 0;  ///< States leased to workers.
    uint64_t nodes = 0;      ///< Branch nodes in the low-level tree.
    std::array<uint64_t, kFrontierDepthBuckets> depth_histogram{};
    /// Mean explored children per non-leaf branch node.
    double mean_branching = 0.0;
    /// Ages of outstanding leases at snapshot time, seconds.
    double lease_age_max_seconds = 0.0;
    double lease_age_mean_seconds = 0.0;
    /// strategy name -> states claimed through it.
    std::map<std::string, uint64_t> strategy_picks;

    static size_t DepthBucket(uint32_t depth);
};

/// Bounded audit ring over strategy decisions: every successful claim
/// records (strategy, hl_pc, depth). The ring keeps the most recent
/// kFrontierPickRing entries for inspection; totals per strategy are
/// kept exactly.
constexpr size_t kFrontierPickRing = 256;

class FrontierInspector
{
  public:
    struct Pick {
        uint64_t seq = 0;
        uint64_t hl_pc = 0;
        uint32_t depth = 0;
        /// Stable string (a literal or interned name owned by the
        /// caller's strategy); the ring never copies it.
        const char* strategy = nullptr;
    };

    void RecordPick(const char* strategy, uint64_t hl_pc, uint32_t depth);

    /// Most recent picks, oldest first.
    std::vector<Pick> RecentPicks() const;

    /// Exact per-strategy totals over the whole run (not just the ring).
    std::map<std::string, uint64_t> PickCounts() const;

  private:
    mutable std::mutex mutex_;
    std::array<Pick, kFrontierPickRing> ring_{};
    uint64_t next_seq_ = 0;
    std::map<std::string, uint64_t> counts_;
};

// ---------------------------------------------------------------------------
// Serialization and rendering

/// Serializes a snapshot as one JSON object:
///   {"dropped_locations":n,
///    "workloads":[{"workload":w,"locations":[
///        {"hl_pc":"0x..","parent":"0x..",...counters...},...]},...]}
/// hl_pc and parent use the hex-string convention for 64-bit
/// identities; "parent" is omitted when no predecessor was recorded.
void WriteAttributionSnapshot(support::JsonWriter& json,
                              const AttributionSnapshot& snapshot);

/// Inverse of WriteAttributionSnapshot. Unknown keys are ignored
/// (forward compatibility); returns false with \p error on missing or
/// mistyped required fields.
bool DecodeAttributionSnapshot(const support::JsonValue& object,
                               AttributionSnapshot* snapshot,
                               std::string* error);

/// Renders the folded-stack form consumed by standard flamegraph tools:
/// one `workload;0xroot;...;0xleaf value` line per location, where the
/// chain is the location's discovery-parent chain (cycle-guarded,
/// depth-capped) and value is the location's step count (its total
/// charge count when it has no steps, so pure-solver locations still
/// appear).
std::string RenderAttributionFoldedStacks(
    const AttributionSnapshot& snapshot);

/// Renders the "hot locations" monitor panel: the top \p top_n
/// locations by solver-seconds and by fingerprints per solver-second
/// (yield), fixed-width columns, one location per row. Empty string for
/// an empty snapshot.
std::string RenderHotLocations(const AttributionSnapshot& snapshot,
                               size_t top_n);

/// Serializes a frontier snapshot (report use; nothing decodes it).
void WriteFrontierSnapshot(support::JsonWriter& json,
                           const FrontierSnapshot& frontier);

}  // namespace chef::obs

#endif  // CHEF_OBS_ATTRIBUTION_H_
