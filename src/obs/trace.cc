#include "obs/trace.h"

#include <chrono>
#include <cstdio>

#include "support/json.h"

namespace chef::obs {

namespace {

uint64_t SteadyNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace

PhaseTracer::PhaseTracer() : epoch_ns_(SteadyNanos()) {}

uint64_t PhaseTracer::NowMicros() const
{
    return (SteadyNanos() - epoch_ns_) / 1000;
}

uint32_t PhaseTracer::ThisThreadId()
{
    static std::atomic<uint32_t> next_tid{1};
    thread_local uint32_t tid =
        next_tid.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

void PhaseTracer::RecordSpan(const char* name, const char* cat,
                             uint64_t ts_us, uint64_t dur_us,
                             std::string detail)
{
    TraceEvent event;
    event.name = name;
    event.detail = std::move(detail);
    event.cat = cat;
    event.ts_us = ts_us;
    event.dur_us = dur_us;
    event.tid = ThisThreadId();
    event.pid = pid_;

    Buffer& buffer = buffers_[ThisThreadId() % kBuffers];
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.push_back(std::move(event));
}

void PhaseTracer::RecordInstant(const char* name, const char* cat,
                                std::string detail)
{
    if (!enabled()) {
        return;
    }
    RecordSpan(name, cat, NowMicros(), 0, std::move(detail));
}

std::vector<TraceEvent> PhaseTracer::TakeEvents()
{
    std::vector<TraceEvent> drained;
    for (Buffer& buffer : buffers_) {
        std::lock_guard<std::mutex> lock(buffer.mutex);
        if (drained.empty()) {
            drained = std::move(buffer.events);
            buffer.events.clear();
        } else {
            drained.insert(drained.end(),
                           std::make_move_iterator(buffer.events.begin()),
                           std::make_move_iterator(buffer.events.end()));
            buffer.events.clear();
        }
    }
    return drained;
}

size_t PhaseTracer::ApproxEventCount() const
{
    size_t total = 0;
    for (const Buffer& buffer : buffers_) {
        // const_cast for the lock: logically const, the mutex is not.
        std::lock_guard<std::mutex> lock(
            const_cast<std::mutex&>(buffer.mutex));
        total += buffer.events.size();
    }
    return total;
}

namespace {

void WriteOneEvent(support::JsonWriter& json, const TraceEvent& event,
                   bool chrome_form)
{
    json.BeginObject();
    json.Key("name");
    json.Value(event.name);
    json.Key("cat");
    json.Value(event.cat);
    if (chrome_form) {
        json.Key("ph");
        json.Value("X");
        json.Key("ts");
        json.Value(event.ts_us);
        json.Key("dur");
        json.Value(event.dur_us);
    } else {
        json.Key("ts_us");
        json.Value(event.ts_us);
        json.Key("dur_us");
        json.Value(event.dur_us);
    }
    json.Key("pid");
    json.Value(event.pid);
    json.Key("tid");
    json.Value(event.tid);
    if (chrome_form) {
        if (!event.detail.empty()) {
            json.Key("args");
            json.BeginObject();
            json.Key("detail");
            json.Value(event.detail);
            json.EndObject();
        }
    } else {
        json.Key("detail");
        json.Value(event.detail);
    }
    json.EndObject();
}

}  // namespace

std::string RenderChromeTrace(const std::vector<TraceEvent>& events)
{
    support::JsonWriter json;
    json.BeginObject();
    json.Key("traceEvents");
    json.BeginArray();
    for (const TraceEvent& event : events) {
        WriteOneEvent(json, event, /*chrome_form=*/true);
    }
    json.EndArray();
    json.Key("displayTimeUnit");
    json.Value("ms");
    json.EndObject();
    return json.Take();
}

bool WriteChromeTraceFile(const std::string& path,
                          const std::vector<TraceEvent>& events,
                          std::string* error)
{
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
        if (error != nullptr) {
            *error = "trace: cannot open " + path + " for writing";
        }
        return false;
    }
    bool ok = std::fputs("{\"traceEvents\":[", file) >= 0;
    for (size_t i = 0; ok && i < events.size(); ++i) {
        support::JsonWriter json;
        WriteOneEvent(json, events[i], /*chrome_form=*/true);
        const std::string one = json.Take();
        if (i != 0) {
            ok = std::fputc(',', file) != EOF;
        }
        ok = ok &&
             std::fwrite(one.data(), 1, one.size(), file) == one.size();
    }
    ok = ok && std::fputs("],\"displayTimeUnit\":\"ms\"}", file) >= 0;
    ok = (std::fclose(file) == 0) && ok;
    if (!ok && error != nullptr) {
        *error = "trace: short write to " + path;
    }
    return ok;
}

void WriteTraceEvents(support::JsonWriter& json,
                      const std::vector<TraceEvent>& events)
{
    json.BeginArray();
    for (const TraceEvent& event : events) {
        WriteOneEvent(json, event, /*chrome_form=*/false);
    }
    json.EndArray();
}

bool DecodeTraceEvents(const support::JsonValue& array,
                       std::vector<TraceEvent>* events, std::string* error)
{
    using support::JsonValue;
    auto fail = [error](const std::string& message) {
        if (error != nullptr) {
            *error = "trace: " + message;
        }
        return false;
    };
    if (array.kind != JsonValue::Kind::kArray) {
        return fail("events field is not an array");
    }
    events->reserve(events->size() + array.items.size());
    for (const JsonValue& entry : array.items) {
        TraceEvent event;
        uint64_t tid = 0;
        uint64_t pid = 0;
        if (!entry.GetString("name", &event.name) ||
            !entry.GetString("cat", &event.cat) ||
            !entry.GetString("detail", &event.detail) ||
            !entry.GetUint64("ts_us", &event.ts_us) ||
            !entry.GetUint64("dur_us", &event.dur_us) ||
            !entry.GetUint64("tid", &tid) || !entry.GetUint64("pid", &pid)) {
            return fail("event missing required fields");
        }
        event.tid = static_cast<uint32_t>(tid);
        event.pid = static_cast<uint32_t>(pid);
        events->push_back(std::move(event));
    }
    return true;
}

}  // namespace chef::obs
