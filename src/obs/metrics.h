#ifndef CHEF_OBS_METRICS_H_
#define CHEF_OBS_METRICS_H_

/// \file
/// The metrics registry: named counters, gauges, and log-scale latency
/// histograms shared by every layer of the stack.
///
/// Design constraints, in order:
///
///  1. The hot path (a worker thread bumping a counter or recording one
///     solver-call latency) must be wait-free and allocation-free: one
///     relaxed atomic RMW on a cache line this thread rarely shares.
///     Counters and histogram buckets are *striped* — kStripes
///     cache-line-aligned atomic lanes, each thread hashed to one — so
///     eight engine workers incrementing `solver.queries` do not
///     serialize on a single line.
///  2. Reads are point-in-time snapshots. Snapshot() walks the registry
///     under its registration mutex and sums stripes with relaxed loads;
///     the result is a plain value type that can be merged, serialized,
///     and shipped across the shard wire while recording continues.
///  3. Handles are stable. counter()/gauge()/histogram() intern the name
///     once (mutex-guarded) and return a pointer that lives as long as
///     the registry, so instrumented code resolves its handles at
///     construction and never touches the map again.
///
/// Histograms are log2-bucketed over nanoseconds: bucket 0 holds zero,
/// bucket b >= 1 holds [2^(b-1), 2^b) ns, 64 buckets total (the last
/// bucket absorbs everything >= 2^62 ns, ~146 years). Quantile estimates
/// return the *upper edge* of the bucket containing the target rank —
/// within a factor of two of the true order statistic, biased
/// conservatively high, which is the right direction for latency SLOs.
///
/// Snapshots serialize through support/json (WriteMetricsSnapshot /
/// DecodeMetricsSnapshot): this is the schema the shard gossip wire and
/// the merged report's `telemetry` section use.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace chef::support {
class JsonWriter;
struct JsonValue;
}  // namespace chef::support

namespace chef::obs {

/// Number of log2 latency buckets (fixed so snapshots merge bucket-wise
/// without negotiation).
constexpr size_t kHistogramBuckets = 64;

/// Stripes per hot metric. Eight covers the worker counts this codebase
/// runs (shards run 1-4 engine threads each) without making Snapshot()
/// walk hundreds of lanes per counter.
constexpr size_t kMetricStripes = 8;

/// The stripe this thread hashes to: assigned round-robin on first use,
/// so concurrent threads spread across lanes deterministically per
/// thread lifetime.
size_t ThisThreadStripe();

/// Monotonic counter. Add() is one relaxed fetch_add on this thread's
/// stripe; Value() sums stripes (approximate only in the sense that it
/// is a snapshot — no increments are ever lost).
class Counter
{
  public:
    void Add(uint64_t delta = 1)
    {
        stripes_[ThisThreadStripe()].value.fetch_add(
            delta, std::memory_order_relaxed);
    }

    uint64_t Value() const
    {
        uint64_t total = 0;
        for (const Stripe& stripe : stripes_) {
            total += stripe.value.load(std::memory_order_relaxed);
        }
        return total;
    }

  private:
    struct alignas(64) Stripe {
        std::atomic<uint64_t> value{0};
    };
    Stripe stripes_[kMetricStripes];
};

/// Last-writer-wins signed gauge (queue depths, byte budgets). Not
/// striped: gauges are set at checkpoint frequency, not hot-path
/// frequency.
class Gauge
{
  public:
    void Set(int64_t value)
    {
        value_.store(value, std::memory_order_relaxed);
    }
    void Add(int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/// Log2-bucketed latency histogram over nanoseconds. RecordNanos() is
/// three relaxed RMWs on this thread's stripe (bucket, count, sum) plus
/// two rarely-contended CAS loops for min/max.
class Histogram
{
  public:
    void Record(double seconds)
    {
        if (seconds < 0) {
            seconds = 0;
        }
        RecordNanos(static_cast<uint64_t>(seconds * 1e9));
    }

    void RecordNanos(uint64_t nanos);

    /// Bucket index for a nanosecond value (exposed for tests).
    static size_t BucketFor(uint64_t nanos);
    /// Inclusive upper edge of a bucket, in nanoseconds.
    static uint64_t BucketUpperNanos(size_t bucket);

  private:
    friend class MetricsRegistry;

    struct alignas(64) Stripe {
        std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
        std::atomic<uint64_t> count{0};
        std::atomic<uint64_t> sum_nanos{0};
    };
    Stripe stripes_[kMetricStripes];
    std::atomic<uint64_t> min_nanos_{UINT64_MAX};
    std::atomic<uint64_t> max_nanos_{0};
};

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
    std::string name;
    uint64_t count = 0;
    uint64_t sum_nanos = 0;
    uint64_t min_nanos = 0;  ///< 0 when count == 0.
    uint64_t max_nanos = 0;
    std::array<uint64_t, kHistogramBuckets> buckets{};

    /// Upper-edge-of-bucket estimate of the q-quantile (0 < q <= 1), in
    /// seconds. Within a factor of two of the true order statistic,
    /// biased high. 0.0 when the histogram is empty.
    double QuantileSeconds(double q) const;
    double MeanSeconds() const
    {
        return count == 0 ? 0.0
                          : static_cast<double>(sum_nanos) / 1e9 /
                                static_cast<double>(count);
    }
};

/// Point-in-time copy of a whole registry: a plain value type that can
/// be merged (cluster aggregation) and serialized (gossip wire, report
/// telemetry section) while recording continues. Entries are sorted by
/// name, so two snapshots of the same registry diff cleanly.
struct MetricsSnapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<HistogramSnapshot> histograms;

    /// Name-keyed merge: counters sum, histograms add bucket-wise and
    /// combine min/max. Gauges are point-in-time *levels*, so they do
    /// not sum: merging normalizes every gauge into the labeled pair
    /// `<name>_max` (combined by max across sources) and `<name>_total`
    /// (combined by sum — meaningful for capacity-style gauges like
    /// byte budgets), and already-labeled entries keep folding under
    /// their own rule. Entries only one side has are kept. This is the
    /// cluster-aggregation operation — order- and grouping-independent
    /// (hence `_total`, not an arrival-order-dependent `_last`), so the
    /// coordinator can fold shard snapshots in any arrival order.
    void MergeFrom(const MetricsSnapshot& other);

    /// 0 when absent — counters that never incremented are typically
    /// never registered.
    uint64_t CounterValue(const std::string& name) const;
    const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

/// The registry. One per scope that wants an isolated view (one per
/// shard worker, one per coordinator-less service run); layers share it
/// through obs::ObsContext.
class MetricsRegistry
{
  public:
    /// Interns \p name and returns a stable handle (the same pointer for
    /// the same name, forever). Mutex-guarded; resolve handles once at
    /// construction, not on the hot path.
    Counter* counter(const std::string& name);
    Gauge* gauge(const std::string& name);
    Histogram* histogram(const std::string& name);

    MetricsSnapshot Snapshot() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Serializes a snapshot as one JSON object:
///   {"counters":{name:n,...},"gauges":{name:n,...},
///    "histograms":[{"name":...,"count":n,"sum_nanos":n,"min_nanos":n,
///                   "max_nanos":n,"p50":s,"p95":s,"p99":s,"mean":s,
///                   "buckets":[[index,count],...]}]}
/// Buckets are sparse ([index, count] pairs); p50/p95/p99/mean are
/// derived conveniences (seconds) that DecodeMetricsSnapshot ignores.
void WriteMetricsSnapshot(support::JsonWriter& json,
                          const MetricsSnapshot& snapshot);

/// Inverse of WriteMetricsSnapshot. Returns false (with \p error) on
/// missing or mistyped fields.
bool DecodeMetricsSnapshot(const support::JsonValue& object,
                           MetricsSnapshot* snapshot, std::string* error);

}  // namespace chef::obs

#endif  // CHEF_OBS_METRICS_H_
