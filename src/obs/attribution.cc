#include "obs/attribution.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "support/json.h"

namespace chef::obs {

namespace {

/// splitmix64 finalizer: hl_pc values are small and clustered, so the
/// raw key would pile probes into one corner of the table.
uint64_t
MixKey(uint64_t key)
{
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ULL;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebULL;
    key ^= key >> 31;
    return key;
}

thread_local uint64_t t_ambient_hlpc = 0;

}  // namespace

// ---------------------------------------------------------------------------
// AttributionSnapshot

bool
AttributionSnapshot::empty() const
{
    return workloads.empty() && dropped_locations == 0;
}

void
AttributionSnapshot::MergeFrom(const AttributionSnapshot& other)
{
    dropped_locations += other.dropped_locations;
    for (const auto& [workload, table] : other.workloads) {
        std::map<uint64_t, AttributionRow>& mine = workloads[workload];
        for (const auto& [hl_pc, row] : table) {
            AttributionRow& target = mine[hl_pc];
            target.solver_nanos += row.solver_nanos;
            target.solver_queries += row.solver_queries;
            target.steps += row.steps;
            target.forks += row.forks;
            target.assume_failures += row.assume_failures;
            target.new_fingerprints += row.new_fingerprints;
            target.runs += row.runs;
            // min over recorded parents: a pure function of the operand
            // set, so merge order cannot change the result.
            target.parent = std::min(target.parent, row.parent);
        }
    }
}

double
AttributionSnapshot::SolverSecondsTotal() const
{
    uint64_t nanos = 0;
    for (const auto& [workload, table] : workloads) {
        (void)workload;
        for (const auto& [hl_pc, row] : table) {
            (void)hl_pc;
            nanos += row.solver_nanos;
        }
    }
    return static_cast<double>(nanos) / 1e9;
}

uint64_t
AttributionSnapshot::NewFingerprintsTotal() const
{
    uint64_t total = 0;
    for (const auto& [workload, table] : workloads) {
        (void)workload;
        for (const auto& [hl_pc, row] : table) {
            (void)hl_pc;
            total += row.new_fingerprints;
        }
    }
    return total;
}

bool
AttributionCountsEqual(const AttributionSnapshot& a,
                       const AttributionSnapshot& b)
{
    if (a.workloads.size() != b.workloads.size()) {
        return false;
    }
    for (const auto& [workload, table] : a.workloads) {
        const auto other_it = b.workloads.find(workload);
        if (other_it == b.workloads.end() ||
            other_it->second.size() != table.size()) {
            return false;
        }
        for (const auto& [hl_pc, row] : table) {
            const auto row_it = other_it->second.find(hl_pc);
            if (row_it == other_it->second.end()) {
                return false;
            }
            const AttributionRow& other = row_it->second;
            if (row.solver_queries != other.solver_queries ||
                row.steps != other.steps || row.forks != other.forks ||
                row.assume_failures != other.assume_failures ||
                row.new_fingerprints != other.new_fingerprints ||
                row.runs != other.runs) {
                return false;
            }
        }
    }
    return true;
}

// ---------------------------------------------------------------------------
// AttributionProfiler

AttributionProfiler::AttributionProfiler(std::string workload)
    : workload_(std::move(workload)),
      stripes_(new Stripe[kMetricStripes])
{
}

AttributionProfiler::Cell*
AttributionProfiler::FindCell(Stripe& stripe, uint64_t key)
{
    const uint64_t mask = kAttributionCellsPerStripe - 1;
    const uint64_t start = MixKey(key) & mask;
    for (size_t probe = 0; probe < kAttributionCellsPerStripe; ++probe) {
        Cell& cell = stripe.cells[(start + probe) & mask];
        uint64_t current = cell.key.load(std::memory_order_acquire);
        if (current == key) {
            return &cell;
        }
        if (current == kEmptyKey) {
            if (cell.key.compare_exchange_strong(
                    current, key, std::memory_order_acq_rel)) {
                return &cell;
            }
            if (current == key) {  // Lost the race to ourselves-by-key.
                return &cell;
            }
        }
    }
    return nullptr;  // Stripe full; the caller spills to a sibling.
}

AttributionProfiler::Cell*
AttributionProfiler::LocateCell(uint64_t key, Stripe** home)
{
    const size_t start = ThisThreadStripe();
    *home = &stripes_[start];
    for (size_t i = 0; i < kMetricStripes; ++i) {
        Cell* cell =
            FindCell(stripes_[(start + i) % kMetricStripes], key);
        if (cell != nullptr) {
            return cell;
        }
    }
    return nullptr;  // Every stripe full; overflow aggregate it is.
}

void
AttributionProfiler::Charge(uint64_t hl_pc, CounterKind kind,
                            uint64_t delta)
{
    Stripe* home = nullptr;
    Cell* cell = LocateCell(hl_pc, &home);
    if (cell == nullptr) {
        home->dropped.fetch_add(delta, std::memory_order_relaxed);
        cell = &home->overflow;
    }
    cell->counts[kind].fetch_add(delta, std::memory_order_relaxed);
}

void
AttributionProfiler::ChargeWithParent(uint64_t hl_pc, uint64_t parent,
                                      CounterKind kind, uint64_t delta)
{
    Stripe* home = nullptr;
    Cell* cell = LocateCell(hl_pc, &home);
    if (cell == nullptr) {
        home->dropped.fetch_add(delta, std::memory_order_relaxed);
        cell = &home->overflow;
    } else if (parent != kAttributionNoParent && parent != hl_pc) {
        uint64_t expected = kAttributionNoParent;
        cell->parent.compare_exchange_strong(expected, parent,
                                             std::memory_order_relaxed);
    }
    cell->counts[kind].fetch_add(delta, std::memory_order_relaxed);
}

void
AttributionProfiler::ChargeSolver(uint64_t nanos)
{
    Stripe* home = nullptr;
    Cell* cell = LocateCell(t_ambient_hlpc, &home);
    if (cell == nullptr) {
        home->dropped.fetch_add(1, std::memory_order_relaxed);
        cell = &home->overflow;
    }
    cell->counts[kSolverNanos].fetch_add(nanos,
                                         std::memory_order_relaxed);
    cell->counts[kSolverQueries].fetch_add(1, std::memory_order_relaxed);
}

AttributionSnapshot
AttributionProfiler::Snapshot() const
{
    AttributionSnapshot snapshot;
    std::map<uint64_t, AttributionRow>& table =
        snapshot.workloads[workload_];
    const auto fold = [&table](uint64_t key, const Cell& cell) {
        AttributionRow& row = table[key];
        row.solver_nanos +=
            cell.counts[kSolverNanos].load(std::memory_order_relaxed);
        row.solver_queries +=
            cell.counts[kSolverQueries].load(std::memory_order_relaxed);
        row.steps += cell.counts[kSteps].load(std::memory_order_relaxed);
        row.forks += cell.counts[kForks].load(std::memory_order_relaxed);
        row.assume_failures +=
            cell.counts[kAssumeFailures].load(std::memory_order_relaxed);
        row.new_fingerprints +=
            cell.counts[kNewFingerprints].load(std::memory_order_relaxed);
        row.runs += cell.counts[kRuns].load(std::memory_order_relaxed);
        row.parent = std::min(
            row.parent, cell.parent.load(std::memory_order_relaxed));
    };
    for (size_t s = 0; s < kMetricStripes; ++s) {
        const Stripe& stripe = stripes_[s];
        for (const Cell& cell : stripe.cells) {
            const uint64_t key = cell.key.load(std::memory_order_acquire);
            if (key != kEmptyKey) {
                fold(key, cell);
            }
        }
        uint64_t overflow_total = 0;
        for (const auto& count : stripe.overflow.counts) {
            overflow_total += count.load(std::memory_order_relaxed);
        }
        if (overflow_total > 0) {
            fold(kAttributionOverflowHlPc, stripe.overflow);
        }
        snapshot.dropped_locations +=
            stripe.dropped.load(std::memory_order_relaxed);
    }
    // Never-charged cells can appear when a CAS claimed a key but the
    // charging add has not landed yet; drop all-zero rows so snapshots
    // of quiescent profilers are stable.
    for (auto it = table.begin(); it != table.end();) {
        if (it->second.TotalCharges() == 0 &&
            it->second.solver_nanos == 0) {
            it = table.erase(it);
        } else {
            ++it;
        }
    }
    if (table.empty()) {
        snapshot.workloads.erase(workload_);
    }
    return snapshot;
}

// ---------------------------------------------------------------------------
// ScopedLocation

ScopedLocation::ScopedLocation(uint64_t hl_pc) : saved_(t_ambient_hlpc)
{
    t_ambient_hlpc = hl_pc;
}

ScopedLocation::~ScopedLocation()
{
    t_ambient_hlpc = saved_;
}

uint64_t
CurrentAmbientLocation()
{
    return t_ambient_hlpc;
}

// ---------------------------------------------------------------------------
// Frontier introspection

size_t
FrontierSnapshot::DepthBucket(uint32_t depth)
{
    size_t bucket = 0;
    uint64_t value = static_cast<uint64_t>(depth) + 1;
    while (value > 1 && bucket + 1 < kFrontierDepthBuckets) {
        value >>= 1;
        ++bucket;
    }
    return bucket;
}

void
FrontierInspector::RecordPick(const char* strategy, uint64_t hl_pc,
                              uint32_t depth)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Pick& slot = ring_[next_seq_ % kFrontierPickRing];
    slot.seq = next_seq_++;
    slot.hl_pc = hl_pc;
    slot.depth = depth;
    slot.strategy = strategy;
    ++counts_[strategy == nullptr ? "" : strategy];
}

std::vector<FrontierInspector::Pick>
FrontierInspector::RecentPicks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Pick> picks;
    const uint64_t count =
        next_seq_ < kFrontierPickRing ? next_seq_ : kFrontierPickRing;
    picks.reserve(count);
    for (uint64_t i = next_seq_ - count; i < next_seq_; ++i) {
        picks.push_back(ring_[i % kFrontierPickRing]);
    }
    return picks;
}

std::map<std::string, uint64_t>
FrontierInspector::PickCounts() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counts_;
}

// ---------------------------------------------------------------------------
// Serialization and rendering

void
WriteAttributionSnapshot(support::JsonWriter& json,
                         const AttributionSnapshot& snapshot)
{
    json.BeginObject();
    json.Key("dropped_locations"), json.Value(snapshot.dropped_locations);
    json.Key("workloads"), json.BeginArray();
    for (const auto& [workload, table] : snapshot.workloads) {
        json.BeginObject();
        json.Key("workload"), json.Value(workload);
        json.Key("locations"), json.BeginArray();
        for (const auto& [hl_pc, row] : table) {
            json.BeginObject();
            json.Key("hl_pc"), json.HexValue(hl_pc);
            if (row.parent != kAttributionNoParent) {
                json.Key("parent"), json.HexValue(row.parent);
            }
            json.Key("solver_nanos"), json.Value(row.solver_nanos);
            json.Key("solver_queries"), json.Value(row.solver_queries);
            json.Key("steps"), json.Value(row.steps);
            json.Key("forks"), json.Value(row.forks);
            json.Key("assume_failures"), json.Value(row.assume_failures);
            json.Key("new_fingerprints"), json.Value(row.new_fingerprints);
            json.Key("runs"), json.Value(row.runs);
            json.EndObject();
        }
        json.EndArray();
        json.EndObject();
    }
    json.EndArray();
    json.EndObject();
}

bool
DecodeAttributionSnapshot(const support::JsonValue& object,
                          AttributionSnapshot* snapshot,
                          std::string* error)
{
    snapshot->workloads.clear();
    snapshot->dropped_locations = 0;
    object.GetUint64("dropped_locations", &snapshot->dropped_locations);
    const support::JsonValue* workloads = object.Find("workloads");
    if (workloads == nullptr ||
        workloads->kind != support::JsonValue::Kind::kArray) {
        *error = "attribution: missing workloads array";
        return false;
    }
    for (const support::JsonValue& entry : workloads->items) {
        std::string workload;
        if (!entry.GetString("workload", &workload)) {
            *error = "attribution: workload entry without a name";
            return false;
        }
        const support::JsonValue* locations = entry.Find("locations");
        if (locations == nullptr ||
            locations->kind != support::JsonValue::Kind::kArray) {
            *error = "attribution: workload entry without locations";
            return false;
        }
        std::map<uint64_t, AttributionRow>& table =
            snapshot->workloads[workload];
        for (const support::JsonValue& location : locations->items) {
            uint64_t hl_pc = 0;
            if (!location.GetUint64("hl_pc", &hl_pc)) {
                *error = "attribution: location without hl_pc";
                return false;
            }
            AttributionRow& row = table[hl_pc];
            location.GetUint64("parent", &row.parent);
            location.GetUint64("solver_nanos", &row.solver_nanos);
            location.GetUint64("solver_queries", &row.solver_queries);
            location.GetUint64("steps", &row.steps);
            location.GetUint64("forks", &row.forks);
            location.GetUint64("assume_failures", &row.assume_failures);
            location.GetUint64("new_fingerprints",
                               &row.new_fingerprints);
            location.GetUint64("runs", &row.runs);
        }
    }
    return true;
}

std::string
RenderAttributionFoldedStacks(const AttributionSnapshot& snapshot)
{
    std::string out;
    char buffer[64];
    for (const auto& [workload, table] : snapshot.workloads) {
        for (const auto& [hl_pc, row] : table) {
            const uint64_t value =
                row.steps != 0 ? row.steps : row.TotalCharges();
            if (value == 0) {
                continue;
            }
            // Discovery-parent chain, leaf to root; cycle-guarded by
            // the membership scan, depth-capped by the chain size.
            std::vector<uint64_t> chain;
            uint64_t current = hl_pc;
            while (chain.size() < 64) {
                chain.push_back(current);
                const auto it = table.find(current);
                if (it == table.end() ||
                    it->second.parent == kAttributionNoParent) {
                    break;
                }
                const uint64_t parent = it->second.parent;
                if (std::find(chain.begin(), chain.end(), parent) !=
                    chain.end()) {
                    break;
                }
                current = parent;
            }
            out += workload;
            for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
                std::snprintf(buffer, sizeof(buffer), ";0x%" PRIx64, *it);
                out += buffer;
            }
            std::snprintf(buffer, sizeof(buffer), " %" PRIu64 "\n",
                          value);
            out += buffer;
        }
    }
    return out;
}

namespace {

struct HotRow {
    const std::string* workload;
    uint64_t hl_pc;
    const AttributionRow* row;
};

void
AppendHotTable(std::string* out, const std::vector<HotRow>& rows,
               size_t top_n)
{
    char line[192];
    std::snprintf(line, sizeof(line),
                  "  %-18s %-12s %9s %8s %6s %6s %12s\n", "workload",
                  "hl_pc", "solver_s", "queries", "forks", "new_fp",
                  "fp/solver_s");
    *out += line;
    for (size_t i = 0; i < rows.size() && i < top_n; ++i) {
        const HotRow& hot = rows[i];
        const double solver_seconds =
            static_cast<double>(hot.row->solver_nanos) / 1e9;
        const double yield =
            solver_seconds > 0.0
                ? static_cast<double>(hot.row->new_fingerprints) /
                      solver_seconds
                : 0.0;
        char hex[24];
        std::snprintf(hex, sizeof(hex), "0x%" PRIx64, hot.hl_pc);
        std::snprintf(line, sizeof(line),
                      "  %-18.18s %-12s %9.4f %8" PRIu64 " %6" PRIu64
                      " %6" PRIu64 " %12.1f\n",
                      hot.workload->c_str(), hex, solver_seconds,
                      hot.row->solver_queries, hot.row->forks,
                      hot.row->new_fingerprints, yield);
        *out += line;
    }
}

}  // namespace

std::string
RenderHotLocations(const AttributionSnapshot& snapshot, size_t top_n)
{
    std::vector<HotRow> rows;
    for (const auto& [workload, table] : snapshot.workloads) {
        for (const auto& [hl_pc, row] : table) {
            rows.push_back(HotRow{&workload, hl_pc, &row});
        }
    }
    if (rows.empty()) {
        return "";
    }
    std::string out;
    std::stable_sort(rows.begin(), rows.end(),
                     [](const HotRow& a, const HotRow& b) {
                         return a.row->solver_nanos > b.row->solver_nanos;
                     });
    out += "hot locations (by solver seconds)\n";
    AppendHotTable(&out, rows, top_n);
    // Yield ranking: fingerprints per solver-second. Locations that
    // produced fingerprints for ~no solver time are the best deals of
    // all; rank them first.
    std::vector<HotRow> yielding;
    for (const HotRow& hot : rows) {
        if (hot.row->new_fingerprints > 0) {
            yielding.push_back(hot);
        }
    }
    if (!yielding.empty()) {
        std::stable_sort(
            yielding.begin(), yielding.end(),
            [](const HotRow& a, const HotRow& b) {
                const double a_nanos =
                    static_cast<double>(a.row->solver_nanos);
                const double b_nanos =
                    static_cast<double>(b.row->solver_nanos);
                // fp/ns cross-multiplied to dodge divide-by-zero.
                return static_cast<double>(a.row->new_fingerprints) *
                           b_nanos >
                       static_cast<double>(b.row->new_fingerprints) *
                           a_nanos;
            });
        out += "hot locations (by fingerprints per solver second)\n";
        AppendHotTable(&out, yielding, top_n);
    }
    return out;
}

void
WriteFrontierSnapshot(support::JsonWriter& json,
                      const FrontierSnapshot& frontier)
{
    json.BeginObject();
    json.Key("pending"), json.Value(frontier.pending);
    json.Key("in_flight"), json.Value(frontier.in_flight);
    json.Key("nodes"), json.Value(frontier.nodes);
    json.Key("mean_branching"), json.Value(frontier.mean_branching);
    json.Key("lease_age_max_seconds"),
        json.Value(frontier.lease_age_max_seconds);
    json.Key("lease_age_mean_seconds"),
        json.Value(frontier.lease_age_mean_seconds);
    json.Key("depth_histogram"), json.BeginArray();
    for (size_t bucket = 0; bucket < kFrontierDepthBuckets; ++bucket) {
        if (frontier.depth_histogram[bucket] == 0) {
            continue;
        }
        json.BeginArray();
        json.Value(bucket);
        json.Value(frontier.depth_histogram[bucket]);
        json.EndArray();
    }
    json.EndArray();
    json.Key("strategy_picks"), json.BeginObject();
    for (const auto& [strategy, picks] : frontier.strategy_picks) {
        json.Key(strategy.c_str()), json.Value(picks);
    }
    json.EndObject();
    json.EndObject();
}

}  // namespace chef::obs
