#ifndef CHEF_OBS_TRACE_H_
#define CHEF_OBS_TRACE_H_

/// \file
/// Phase tracing: Chrome-trace-event JSON spans for the stack's phases
/// (job lifecycle, solver Solve/SolveLeaf/SolveViaSat, slice and cache
/// work, SAT incremental sessions, interpreter dispatch, scheduler
/// re-ranks and plateau decisions).
///
/// Cost model, because tracing rides the solver hot path:
///
///  - Compile-time: the CHEF_OBS_SPAN macro compiles to nothing when the
///    build sets CHEF_OBS_TRACING=0 (CMake option). The default build
///    keeps it in.
///  - Runtime: tracers are *off* unless explicitly enabled. A disabled
///    span is one null-check plus one relaxed atomic load — no clock
///    read, no lock, no allocation. Only an enabled span reads the
///    steady clock twice and appends one event to a striped buffer.
///
/// Completed spans are buffered as Chrome trace "X" (complete) events:
/// {"name", "cat", "ph":"X", "ts", "dur", "pid", "tid"} with
/// microsecond timestamps relative to the tracer's construction. pid
/// identifies the shard (workers stamp shard_id + 1; 0 = local /
/// coordinator process), tid the recording thread — chrome://tracing
/// and Perfetto group rows by (pid, tid), which makes shard and thread
/// structure visible for free. Buffers are striped by thread the same
/// way the metrics registry stripes counters; TakeEvents() drains them
/// for wire shipping or file rendering.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace chef::support {
class JsonWriter;
struct JsonValue;
}  // namespace chef::support

namespace chef::obs {

/// One completed span (Chrome trace "X" event).
struct TraceEvent {
    std::string name;    ///< Phase name, e.g. "solver/solve".
    std::string detail;  ///< Optional args.detail annotation ("" = none).
    std::string cat;     ///< Category: layer name ("solver", "service", ...).
    uint64_t ts_us = 0;  ///< Start, microseconds since tracer epoch.
    uint64_t dur_us = 0;
    uint32_t tid = 0;  ///< Recording thread (small per-process ordinal).
    uint32_t pid = 0;  ///< Shard: shard_id + 1; 0 = local process.
};

/// Collects spans from many threads. One per scope that renders or
/// ships a trace (one per shard worker run; one per local service run).
class PhaseTracer
{
  public:
    PhaseTracer();

    /// Tracing is off by default; a disabled tracer makes every span a
    /// couple of relaxed loads.
    void set_enabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /// Events recorded from now on are stamped with this pid (shard
    /// identity). Set before the run starts, not concurrently with
    /// recording.
    void set_pid(uint32_t pid) { pid_ = pid; }
    uint32_t pid() const { return pid_; }

    /// Microseconds since this tracer's construction.
    uint64_t NowMicros() const;

    /// Small stable ordinal for the calling thread (first-use assigned).
    static uint32_t ThisThreadId();

    /// Records one completed span. Called by ScopedSpan's destructor;
    /// callable directly for spans whose bounds aren't a C++ scope.
    void RecordSpan(const char* name, const char* cat, uint64_t ts_us,
                    uint64_t dur_us, std::string detail = std::string());

    /// Records a zero-duration marker (rendered as a tiny "X" slice), for
    /// point decisions like a plateau cancellation.
    void RecordInstant(const char* name, const char* cat,
                       std::string detail = std::string());

    /// Drains all buffered events (they stop being this tracer's to
    /// render). Safe while recording continues; events recorded during
    /// the drain land in the next TakeEvents().
    std::vector<TraceEvent> TakeEvents();

    size_t ApproxEventCount() const;

  private:
    struct alignas(64) Buffer {
        std::mutex mutex;
        std::vector<TraceEvent> events;
    };
    static constexpr size_t kBuffers = 8;

    std::atomic<bool> enabled_{false};
    uint32_t pid_ = 0;
    uint64_t epoch_ns_ = 0;  ///< steady_clock at construction.
    Buffer buffers_[kBuffers];
};

/// RAII span: stamps the start time at construction, records the
/// completed event at destruction. When the tracer is null or disabled
/// at construction, both ends are no-ops (the enabled decision is
/// latched at open so a span can't half-record across a toggle).
class ScopedSpan
{
  public:
    ScopedSpan(PhaseTracer* tracer, const char* name, const char* cat)
        : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
          name_(name), cat_(cat),
          start_us_(tracer_ != nullptr ? tracer_->NowMicros() : 0)
    {
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    /// Attaches an annotation rendered as args.detail (e.g. a slice
    /// count or cache outcome decided mid-span).
    void set_detail(std::string detail)
    {
        if (tracer_ != nullptr) {
            detail_ = std::move(detail);
        }
    }

    ~ScopedSpan()
    {
        if (tracer_ != nullptr) {
            tracer_->RecordSpan(name_, cat_, start_us_,
                                tracer_->NowMicros() - start_us_,
                                std::move(detail_));
        }
    }

  private:
    PhaseTracer* tracer_;
    const char* name_;
    const char* cat_;
    uint64_t start_us_;
    std::string detail_;
};

/// Renders events as one Chrome trace document:
/// {"traceEvents":[{"name":...,"cat":...,"ph":"X","ts":n,"dur":n,
///                  "pid":n,"tid":n,("args":{"detail":...})},...]}
/// — loadable in chrome://tracing and Perfetto, and strict RFC 8259
/// (validated by the trace smoke test).
std::string RenderChromeTrace(const std::vector<TraceEvent>& events);

/// Streams the same document RenderChromeTrace builds straight to
/// \p path, one event at a time — peak memory is one rendered event,
/// not the whole trace, which matters for long traced batches (a few
/// hundred bytes instead of O(total-trace) at flush time). Returns
/// false (with \p error) on I/O failure.
bool WriteChromeTraceFile(const std::string& path,
                          const std::vector<TraceEvent>& events,
                          std::string* error = nullptr);

/// Serializes events as a JSON array of flat objects (the shard wire
/// form — same fields as TraceEvent, with ts/dur in microseconds).
void WriteTraceEvents(support::JsonWriter& json,
                      const std::vector<TraceEvent>& events);

/// Inverse of WriteTraceEvents; appends to \p events.
bool DecodeTraceEvents(const support::JsonValue& array,
                       std::vector<TraceEvent>* events, std::string* error);

}  // namespace chef::obs

/// Span macro: the instrumentation sites use this so a build with
/// -DCHEF_OBS_TRACING=OFF compiles every site out entirely. `tracer` is
/// a PhaseTracer* (may be null).
#ifndef CHEF_OBS_TRACING
#define CHEF_OBS_TRACING 1
#endif

#if CHEF_OBS_TRACING
#define CHEF_OBS_SPAN(var, tracer, name, cat) \
    ::chef::obs::ScopedSpan var(tracer, name, cat)
#else
#define CHEF_OBS_SPAN(var, tracer, name, cat) \
    ::chef::obs::NullSpan var
namespace chef::obs {
/// Stand-in so `var.set_detail(...)` still compiles when spans are
/// compiled out.
struct NullSpan {
    void set_detail(const std::string&) {}
};
}  // namespace chef::obs
#endif

#endif  // CHEF_OBS_TRACE_H_
