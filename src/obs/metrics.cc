#include "obs/metrics.h"

#include <algorithm>

#include "support/json.h"

namespace chef::obs {

size_t ThisThreadStripe()
{
    // Round-robin assignment on first use per thread. A global counter
    // (rather than hashing the thread id) guarantees the first
    // kMetricStripes threads land on distinct stripes — the common case
    // of a small fixed worker pool gets perfect spreading.
    static std::atomic<size_t> next_stripe{0};
    thread_local size_t stripe =
        next_stripe.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
    return stripe;
}

void Histogram::RecordNanos(uint64_t nanos)
{
    Stripe& stripe = stripes_[ThisThreadStripe()];
    stripe.buckets[BucketFor(nanos)].fetch_add(1, std::memory_order_relaxed);
    stripe.count.fetch_add(1, std::memory_order_relaxed);
    stripe.sum_nanos.fetch_add(nanos, std::memory_order_relaxed);

    uint64_t seen = min_nanos_.load(std::memory_order_relaxed);
    while (nanos < seen &&
           !min_nanos_.compare_exchange_weak(seen, nanos,
                                             std::memory_order_relaxed)) {
    }
    seen = max_nanos_.load(std::memory_order_relaxed);
    while (nanos > seen &&
           !max_nanos_.compare_exchange_weak(seen, nanos,
                                             std::memory_order_relaxed)) {
    }
}

size_t Histogram::BucketFor(uint64_t nanos)
{
    if (nanos == 0) {
        return 0;
    }
    // Bucket b >= 1 covers [2^(b-1), 2^b): b = floor(log2(nanos)) + 1.
    size_t bucket = 0;
    while (nanos != 0) {
        nanos >>= 1;
        ++bucket;
    }
    return std::min(bucket, kHistogramBuckets - 1);
}

uint64_t Histogram::BucketUpperNanos(size_t bucket)
{
    if (bucket == 0) {
        return 0;
    }
    if (bucket >= kHistogramBuckets - 1) {
        return UINT64_MAX;
    }
    return (uint64_t{1} << bucket) - 1;
}

double HistogramSnapshot::QuantileSeconds(double q) const
{
    if (count == 0) {
        return 0.0;
    }
    q = std::min(std::max(q, 0.0), 1.0);
    // Rank of the target order statistic, 1-based; ceil(q * count)
    // computed in integer space to dodge double rounding at q = 1.
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
    if (rank < q * static_cast<double>(count)) {
        ++rank;
    }
    rank = std::max<uint64_t>(rank, 1);

    uint64_t seen = 0;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
        seen += buckets[b];
        if (seen >= rank) {
            // Upper edge of the target's bucket, clamped to the observed
            // max so the last bucket's open tail can't report 2^63 ns.
            uint64_t edge = Histogram::BucketUpperNanos(b);
            return static_cast<double>(std::min(edge, max_nanos)) / 1e9;
        }
    }
    return static_cast<double>(max_nanos) / 1e9;
}

namespace {

bool EndsWith(const std::string& text, const char* suffix)
{
    const size_t n = std::char_traits<char>::length(suffix);
    return text.size() >= n &&
           text.compare(text.size() - n, n, suffix) == 0;
}

// Folds one gauge entry into the labeled-merge map. A plain name splits
// into `<name>_max` (combined by max) and `<name>_total` (combined by
// sum); already-labeled names keep combining under their own rule, so
// repeated merges stay associative, commutative, and order-independent.
void FoldGauge(std::map<std::string, int64_t>* merged,
               const std::string& name, int64_t value)
{
    if (EndsWith(name, "_max")) {
        auto [it, inserted] = merged->emplace(name, value);
        if (!inserted) {
            it->second = std::max(it->second, value);
        }
    } else if (EndsWith(name, "_total")) {
        (*merged)[name] += value;
    } else {
        FoldGauge(merged, name + "_max", value);
        FoldGauge(merged, name + "_total", value);
    }
}

}  // namespace

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other)
{
    for (const auto& [name, value] : other.counters) {
        auto it = std::find_if(
            counters.begin(), counters.end(),
            [&name = name](const auto& entry) { return entry.first == name; });
        if (it == counters.end()) {
            counters.emplace_back(name, value);
        } else {
            it->second += value;
        }
    }
    // Gauges are point-in-time levels, not flows: summing two shards'
    // "corpus.size" fabricates a level nobody observed. Merging instead
    // normalizes every gauge into the labeled space — `<name>_max` and
    // `<name>_total` — so a merged snapshot says which aggregation each
    // value carries. (`*_total` rather than `*_last` because "last"
    // depends on arrival order; the merge must stay order-independent.)
    if (!gauges.empty() || !other.gauges.empty()) {
        std::map<std::string, int64_t> merged_gauges;
        for (const auto& [name, value] : gauges) {
            FoldGauge(&merged_gauges, name, value);
        }
        for (const auto& [name, value] : other.gauges) {
            FoldGauge(&merged_gauges, name, value);
        }
        gauges.assign(merged_gauges.begin(), merged_gauges.end());
    }
    for (const HistogramSnapshot& theirs : other.histograms) {
        auto it = std::find_if(histograms.begin(), histograms.end(),
                               [&theirs](const HistogramSnapshot& h) {
                                   return h.name == theirs.name;
                               });
        if (it == histograms.end()) {
            histograms.push_back(theirs);
            continue;
        }
        HistogramSnapshot& ours = *it;
        if (theirs.count != 0) {
            ours.min_nanos = ours.count == 0
                                 ? theirs.min_nanos
                                 : std::min(ours.min_nanos, theirs.min_nanos);
            ours.max_nanos = std::max(ours.max_nanos, theirs.max_nanos);
        }
        ours.count += theirs.count;
        ours.sum_nanos += theirs.sum_nanos;
        for (size_t b = 0; b < kHistogramBuckets; ++b) {
            ours.buckets[b] += theirs.buckets[b];
        }
    }
    // Keep the sorted-by-name invariant after appends.
    std::sort(counters.begin(), counters.end());
    std::sort(gauges.begin(), gauges.end());
    std::sort(histograms.begin(), histograms.end(),
              [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
                  return a.name < b.name;
              });
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const
{
    for (const auto& [counter_name, value] : counters) {
        if (counter_name == name) {
            return value;
        }
    }
    return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const
{
    for (const HistogramSnapshot& histogram : histograms) {
        if (histogram.name == name) {
            return &histogram;
        }
    }
    return nullptr;
}

Counter* MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Counter>& slot = counters_[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
    }
    return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Gauge>& slot = gauges_[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
    }
    return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Histogram>& slot = histograms_[name];
    if (!slot) {
        slot = std::make_unique<Histogram>();
    }
    return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snapshot;
    snapshot.counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
        snapshot.counters.emplace_back(name, counter->Value());
    }
    snapshot.gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) {
        snapshot.gauges.emplace_back(name, gauge->Value());
    }
    snapshot.histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
        HistogramSnapshot h;
        h.name = name;
        for (const Histogram::Stripe& stripe : histogram->stripes_) {
            h.count += stripe.count.load(std::memory_order_relaxed);
            h.sum_nanos += stripe.sum_nanos.load(std::memory_order_relaxed);
            for (size_t b = 0; b < kHistogramBuckets; ++b) {
                h.buckets[b] +=
                    stripe.buckets[b].load(std::memory_order_relaxed);
            }
        }
        if (h.count != 0) {
            h.min_nanos = histogram->min_nanos_.load(std::memory_order_relaxed);
            h.max_nanos = histogram->max_nanos_.load(std::memory_order_relaxed);
        }
        snapshot.histograms.push_back(std::move(h));
    }
    return snapshot;
}

void WriteMetricsSnapshot(support::JsonWriter& json,
                          const MetricsSnapshot& snapshot)
{
    json.BeginObject();
    json.Key("counters");
    json.BeginObject();
    for (const auto& [name, value] : snapshot.counters) {
        json.Key(name.c_str());
        json.Value(value);
    }
    json.EndObject();
    json.Key("gauges");
    json.BeginObject();
    for (const auto& [name, value] : snapshot.gauges) {
        json.Key(name.c_str());
        if (value < 0) {
            // The integral Value() overload assumes non-negative; gauges
            // are the one signed metric, so spell the sign out.
            json.RawValue(std::to_string(value));
        } else {
            json.Value(static_cast<uint64_t>(value));
        }
    }
    json.EndObject();
    json.Key("histograms");
    json.BeginArray();
    for (const HistogramSnapshot& h : snapshot.histograms) {
        json.BeginObject();
        json.Key("name");
        json.Value(h.name);
        json.Key("count");
        json.Value(h.count);
        json.Key("sum_nanos");
        json.Value(h.sum_nanos);
        json.Key("min_nanos");
        json.Value(h.min_nanos);
        json.Key("max_nanos");
        json.Value(h.max_nanos);
        json.Key("mean_seconds");
        json.Value(h.MeanSeconds());
        json.Key("p50_seconds");
        json.Value(h.QuantileSeconds(0.50));
        json.Key("p95_seconds");
        json.Value(h.QuantileSeconds(0.95));
        json.Key("p99_seconds");
        json.Value(h.QuantileSeconds(0.99));
        json.Key("buckets");
        json.BeginArray();
        for (size_t b = 0; b < kHistogramBuckets; ++b) {
            if (h.buckets[b] == 0) {
                continue;
            }
            json.BeginArray();
            json.Value(b);
            json.Value(h.buckets[b]);
            json.EndArray();
        }
        json.EndArray();
        json.EndObject();
    }
    json.EndArray();
    json.EndObject();
}

bool DecodeMetricsSnapshot(const support::JsonValue& object,
                           MetricsSnapshot* snapshot, std::string* error)
{
    using support::JsonValue;
    auto fail = [error](const std::string& message) {
        if (error != nullptr) {
            *error = "telemetry: " + message;
        }
        return false;
    };

    snapshot->counters.clear();
    snapshot->gauges.clear();
    snapshot->histograms.clear();

    const JsonValue* counters = object.Find("counters");
    if (counters == nullptr || counters->kind != JsonValue::Kind::kObject) {
        return fail("missing counters object");
    }
    for (const auto& [name, value] : counters->members) {
        uint64_t n = 0;
        if (!value.AsUint64(&n)) {
            return fail("counter " + name + " is not a number");
        }
        snapshot->counters.emplace_back(name, n);
    }

    const JsonValue* gauges = object.Find("gauges");
    if (gauges == nullptr || gauges->kind != JsonValue::Kind::kObject) {
        return fail("missing gauges object");
    }
    for (const auto& [name, value] : gauges->members) {
        double d = 0;
        if (!value.AsDouble(&d)) {
            return fail("gauge " + name + " is not a number");
        }
        snapshot->gauges.emplace_back(name, static_cast<int64_t>(d));
    }

    const JsonValue* histograms = object.Find("histograms");
    if (histograms == nullptr || histograms->kind != JsonValue::Kind::kArray) {
        return fail("missing histograms array");
    }
    for (const JsonValue& entry : histograms->items) {
        HistogramSnapshot h;
        if (!entry.GetString("name", &h.name) ||
            !entry.GetUint64("count", &h.count) ||
            !entry.GetUint64("sum_nanos", &h.sum_nanos) ||
            !entry.GetUint64("min_nanos", &h.min_nanos) ||
            !entry.GetUint64("max_nanos", &h.max_nanos)) {
            return fail("histogram entry missing scalar fields");
        }
        const JsonValue* buckets = entry.Find("buckets");
        if (buckets == nullptr || buckets->kind != JsonValue::Kind::kArray) {
            return fail("histogram " + h.name + " missing buckets");
        }
        for (const JsonValue& pair : buckets->items) {
            uint64_t index = 0;
            uint64_t bucket_count = 0;
            if (pair.kind != JsonValue::Kind::kArray ||
                pair.items.size() != 2 || !pair.items[0].AsUint64(&index) ||
                !pair.items[1].AsUint64(&bucket_count) ||
                index >= kHistogramBuckets) {
                return fail("histogram " + h.name + " has a malformed bucket");
            }
            h.buckets[index] = bucket_count;
        }
        snapshot->histograms.push_back(std::move(h));
    }
    return true;
}

}  // namespace chef::obs
