#ifndef CHEF_OBS_MONITOR_H_
#define CHEF_OBS_MONITOR_H_

/// \file
/// The live cluster monitor: a pure function from a merged
/// ClusterSeries to one dashboard frame (plain text, fixed-width
/// columns). chef_shard --monitor repaints it in place with an ANSI
/// home+clear prefix; keeping the renderer side-effect-free makes the
/// dashboard testable without a terminal.

#include <string>

#include "obs/attribution.h"
#include "obs/timeseries.h"

namespace chef::obs {

/// Renders one monitor frame: a header line (cluster time, sources,
/// sample count, merged totals) plus one row per shard with windowed
/// jobs/s, new-fingerprints/s, solver-seconds/s, shared-cache hit rate,
/// solver p95 over the window, corpus size, plateau cancels, the
/// intra-session parallelism view (states in flight, claim-contention
/// events/s), and a coarse state tag ("warming" with < 2 samples,
/// "climbing" while the fingerprint rate is positive, "flat" once it
/// hits zero).
std::string RenderMonitorFrame(const ClusterSeries& series,
                               double window_seconds);

/// Same frame plus a "hot locations" panel (obs::RenderHotLocations on
/// \p attribution): top locations by solver cost and by fingerprint
/// yield per solver second. \p attribution may be null or empty — the
/// panel is simply omitted, so callers can pass whatever the cluster
/// view currently holds.
std::string RenderMonitorFrame(const ClusterSeries& series,
                               double window_seconds,
                               const AttributionSnapshot* attribution,
                               size_t top_locations = 5);

}  // namespace chef::obs

#endif  // CHEF_OBS_MONITOR_H_
