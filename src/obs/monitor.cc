#include "obs/monitor.h"

#include <cstdio>

namespace chef::obs {

std::string RenderMonitorFrame(const ClusterSeries& series,
                               double window_seconds)
{
    char line[256];
    std::string out;
    const MetricsSnapshot merged = series.MergedLatest();
    std::snprintf(line, sizeof(line),
                  "CHEF cluster monitor  t=%.1fs  shards=%zu  samples=%zu  "
                  "jobs=%llu  fingerprints=%llu  (window %.1fs)\n",
                  series.LatestTimeSeconds(), series.Sources().size(),
                  series.total_samples(),
                  static_cast<unsigned long long>(
                      merged.CounterValue(kJobsFinishedCounter)),
                  static_cast<unsigned long long>(
                      merged.CounterValue(kFingerprintsNewCounter)),
                  window_seconds);
    out += line;
    std::snprintf(line, sizeof(line),
                  "%-10s %8s %8s %10s %10s %9s %8s %8s %8s %9s %-8s\n",
                  "source", "jobs/s", "fp/s", "solv-s/s", "p95(s)",
                  "cachehit", "corpus", "cancels", "inflight", "clmcnt/s",
                  "state");
    out += line;
    for (const std::string& source : series.Sources()) {
        const std::vector<SeriesSample>& samples = *series.SeriesFor(source);
        if (samples.empty()) {
            continue;
        }
        const SeriesSample& latest = samples.back();
        const double jobs_rate =
            WindowedCounterRate(samples, kJobsFinishedCounter,
                                window_seconds);
        const double fp_rate = WindowedCounterRate(
            samples, kFingerprintsNewCounter, window_seconds);
        const double solver_rate = WindowedHistogramSumRate(
            samples, kSolverSolveHistogram, window_seconds);
        const double hit_rate = WindowedCounterRatio(
            samples, kSharedCacheHitsCounter, kSolverQueriesCounter,
            window_seconds);
        HistogramSnapshot delta;
        const double p95 =
            WindowedHistogramDelta(samples, kSolverSolveHistogram,
                                   window_seconds, &delta)
                ? delta.QuantileSeconds(0.95)
                : 0.0;
        const double contention_rate = WindowedCounterRate(
            samples, kClaimContentionCounter, window_seconds);
        const char* state = samples.size() < 2 ? "warming"
                            : fp_rate > 0.0    ? "climbing"
                                               : "flat";
        std::snprintf(
            line, sizeof(line),
            "%-10s %8.2f %8.2f %10.3f %10.4f %9.2f %8lld %8llu %8lld "
            "%9.2f %-8s\n",
            source.c_str(), jobs_rate, fp_rate, solver_rate, p95, hit_rate,
            static_cast<long long>(
                SnapshotGauge(latest.metrics, kCorpusSizeGauge)),
            static_cast<unsigned long long>(
                latest.metrics.CounterValue(kPlateauCancelsCounter)),
            static_cast<long long>(
                SnapshotGauge(latest.metrics, kStatesInFlightGauge)),
            contention_rate, state);
        out += line;
    }
    return out;
}

std::string RenderMonitorFrame(const ClusterSeries& series,
                               double window_seconds,
                               const AttributionSnapshot* attribution,
                               size_t top_locations)
{
    std::string out = RenderMonitorFrame(series, window_seconds);
    if (attribution != nullptr && !attribution->empty()) {
        out += "\n";
        out += RenderHotLocations(*attribution, top_locations);
    }
    return out;
}

}  // namespace chef::obs
