#ifndef CHEF_CHEF_ENGINE_H_
#define CHEF_CHEF_ENGINE_H_

/// \file
/// The CHEF engine: drives concolic iterations over an instrumented
/// interpreter and produces high-level test cases (Figure 4 of the paper).
///
/// One Engine instance corresponds to one symbolic test session. Each
/// iteration: run the interpreter under the current input assignment, let
/// the low-level runtime record the path and register alternate states,
/// classify the run's high-level path, then ask the search strategy for the
/// next alternate state, validate its path condition with the solver, and
/// re-run under the satisfying assignment.
///
/// With Options::exploration_threads > 1 one session is explored by several
/// worker threads over the shared execution tree. Two modes:
///
///  - Deterministic round mode (default): the driver claims up to
///    round_width states in strategy order and solves them serially on the
///    session solver, the workers execute the guest runs in parallel in
///    recording mode, and the driver commits the recorded logs serially in
///    selection order, then barriers and repeats. Because round_width is
///    independent of the thread count and all shared-state mutation is
///    serial and canonically ordered, the produced test cases, fingerprints
///    and stats are bit-identical for any exploration_threads >= 2 (and
///    exploration_threads = 1 bypasses all of this, running the classic
///    serial loop).
///  - Free-running mode (Options::free_running): workers claim, solve (on
///    their own solver), run and commit continuously with no barrier —
///    maximum throughput, nondeterministic interleaving.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cupa/strategy.h"
#include "hll/hl_tracker.h"
#include "lowlevel/exec_tree.h"
#include "lowlevel/runtime.h"
#include "obs/attribution.h"
#include "solver/solver.h"
#include "support/rng.h"

namespace chef {

/// Available state selection strategies.
enum class StrategyKind {
    kRandom,
    kDfs,
    kBfs,
    kCupaPath,          ///< Path-optimized CUPA (§3.3).
    kCupaCoverage,      ///< Coverage-optimized CUPA (§3.4).
    kCupaPathInverted,  ///< Level-order ablation of path CUPA.
};

const char* StrategyKindName(StrategyKind kind);

/// A concrete test case produced from one completed concolic run.
struct TestCase {
    /// Input values, one per declared variable (complete: defaults merged).
    solver::Assignment inputs;
    lowlevel::PathStatus status = lowlevel::PathStatus::kFinished;
    /// True if this run covered a high-level path not seen before — these
    /// are the paper's "relevant high-level test cases".
    bool new_hl_path = false;
    uint32_t hl_final_node = 0;
    /// Session-independent hash of the run's static-HLPC trace. Two runs
    /// (in the same or different sessions) that follow the same high-level
    /// path share the fingerprint, so corpora aggregated across parallel
    /// sessions can deduplicate by it.
    uint64_t hl_path_fingerprint = 0;
    size_t hl_length = 0;
    uint64_t ll_steps = 0;
    /// Guest-visible outcome: "ok", "exception", "hang", "abort".
    std::string outcome_kind;
    /// Detail string, e.g. the exception type name.
    std::string outcome_detail;
};

/// Engine statistics, including the Figure-10 timeline.
struct EngineStats {
    uint64_t ll_paths = 0;
    uint64_t hl_paths = 0;
    uint64_t hangs = 0;
    uint64_t assume_retries = 0;
    uint64_t infeasible_states = 0;
    uint64_t solver_failures = 0;
    uint64_t states_registered = 0;
    /// Total solver queries issued during the session (aggregated over the
    /// session solver and every per-worker solver at the end of Explore so
    /// callers can total per-session work without reaching into the
    /// solvers).
    uint64_t solver_queries = 0;
    /// Queries answered by the batch-shared solver cache / satisfied by a
    /// sibling session's published model (0 unless
    /// Options::solver_options.shared_cache was set).
    uint64_t solver_shared_hits = 0;
    uint64_t solver_shared_model_hits = 0;
    /// Queries that independence slicing split into multiple slices, SAT
    /// calls served by the persistent incremental session, and CNF
    /// clauses loaded into the CDCL backend (aggregated like
    /// solver_queries).
    uint64_t solver_sliced_queries = 0;
    uint64_t solver_incremental_sat_calls = 0;
    uint64_t solver_clauses_loaded = 0;
    /// Time spent inside the solver (aggregated over all solvers; with
    /// parallel workers this is a CPU-time-like sum, not wall time).
    double solver_seconds = 0.0;
    /// True if Explore() returned because Options::stop_requested fired.
    bool stopped = false;
    double elapsed_seconds = 0.0;

    // -- Parallel exploration (all 0 / 1 when exploration_threads == 1) ----

    /// Exploration threads actually used.
    uint32_t threads_used = 1;
    /// Deterministic rounds executed (round mode only).
    uint64_t rounds = 0;
    /// States leased to workers via the claim protocol.
    uint64_t claims = 0;
    /// Times a claim found the tree lock contended (from the tree).
    uint64_t claim_contention = 0;
    /// Total worker-idle time at round barriers (sum over workers of the
    /// gap between finishing their last run of a round and the round
    /// completing).
    double barrier_wait_seconds = 0.0;

    struct Sample {
        double t = 0.0;
        uint64_t ll_paths = 0;
        uint64_t hl_paths = 0;
    };
    std::vector<Sample> timeline;

    /// Per-location cost/yield table (obs/attribution.h). Empty unless
    /// Options::obs.attribution was set; the engine charges steps,
    /// forks, runs, assume-failures and new fingerprints on the serial
    /// commit path (thread-count-invariant in round mode) and the
    /// solver charges wall time per query, then FinalizeStats snapshots
    /// the profiler here.
    obs::AttributionSnapshot attribution;
    /// Frontier view at session end: pending depth histogram, tree
    /// branching factor, lease ages, and per-strategy pick counts from
    /// the strategy-decision audit ring.
    obs::FrontierSnapshot frontier;
};

/// The engine. Owns the execution tree, solver, runtime, tracker, and
/// search strategy for one symbolic test.
class Engine
{
  public:
    struct Options {
        StrategyKind strategy = StrategyKind::kCupaPath;
        uint64_t seed = 1;
        /// Exploration stops after this many completed low-level runs.
        uint64_t max_runs = 2000;
        /// ... or after this much wall time. Checked between concolic
        /// iterations, between state-selection solver calls, and — under
        /// parallel exploration — between claims and between rounds;
        /// in-flight guest runs are never interrupted (the per-run step
        /// budget bounds them), so the overshoot is at most one run.
        double max_seconds = 30.0;
        /// Per-run low-level step budget (hang detector). Also bounds the
        /// depth of loop-carried symbolic expression chains, which are
        /// processed recursively.
        uint64_t max_steps_per_run = 500'000;
        double fork_weight_decay = 0.75;
        /// §3.4 least-frequent branching opcode cutoff.
        double branch_opcode_drop_fraction = 0.10;
        /// Per-session solver configuration. Point
        /// solver_options.shared_cache at a cache::SharedSolverCache to
        /// share query results and counterexamples with sibling sessions
        /// (the exploration service does this per batch when its
        /// share_solver_cache option is on). Note: a shared cache makes
        /// round-mode results depend on what sibling sessions have
        /// published, so cross-run bit-reproducibility only holds without
        /// one (or with a cold, private one).
        solver::Solver::Options solver_options = {};
        bool collect_timeline = true;
        /// Intra-session parallelism: number of exploration worker
        /// threads driving this session's shared execution tree. 1 (the
        /// default) runs the classic serial loop, bit-identical to
        /// pre-parallel engines. >= 2 selects deterministic round mode
        /// unless free_running is set.
        uint32_t exploration_threads = 1;
        /// With exploration_threads >= 2: opt out of deterministic round
        /// mode into free-running mode (workers claim/solve/run/commit
        /// continuously; nondeterministic, maximum throughput).
        bool free_running = false;
        /// Round mode: maximum states claimed + solved per round. Kept
        /// independent of exploration_threads so results are invariant in
        /// the thread count.
        uint32_t round_width = 8;
        /// Cooperative cancellation hook. Checked between concolic
        /// iterations and between state-selection solver calls; under
        /// parallel exploration it is additionally polled between claims,
        /// between rounds, and by each worker before starting a queued
        /// run (so a mid-round stop lets in-flight guest runs finish,
        /// skips the rest, commits what completed, and winds down).
        /// When exploration_threads > 1 the hook must be thread-safe.
        /// When it returns true the exploration winds down and Explore()
        /// returns the test cases produced so far. Used by the
        /// exploration service to enforce service-wide wall-clock budgets
        /// and user-requested shutdown without engine internals growing
        /// any thread-awareness beyond this.
        std::function<bool()> stop_requested;
        /// Telemetry (obs/obs.h). Copied into solver_options.obs by the
        /// constructor so the session's solver shares the same registry
        /// and tracer; the engine itself emits engine/run (interpreter
        /// dispatch) and engine/select (state selection) spans plus
        /// engine.* counters, and under parallel exploration
        /// engine/parallel_run per-worker spans plus engine.parallel.*
        /// counters (states in flight, claims, claim contention, round
        /// barrier wait).
        obs::ObsContext obs;
    };

    /// Outcome descriptor returned by the guest adapter after one run.
    struct GuestOutcome {
        std::string kind = "ok";
        std::string detail;
    };

    /// Executes the target program once under the given runtime; called by
    /// the engine for every concolic iteration. Under parallel exploration
    /// this is invoked concurrently on distinct runtimes, so it must not
    /// mutate shared state of its own.
    using RunFn = std::function<GuestOutcome(lowlevel::LowLevelRuntime&)>;

    Engine() : Engine(Options{}) {}
    explicit Engine(Options options);

    /// Runs the exploration loop and returns every completed run as a test
    /// case (filter on new_hl_path for the paper's relevant test cases).
    std::vector<TestCase> Explore(const RunFn& run);

    const EngineStats& stats() const { return stats_; }
    const lowlevel::ExecutionTree& tree() const { return tree_; }
    const hll::HlpcTracker& tracker() const { return tracker_; }
    solver::Solver& constraint_solver() { return solver_; }
    const Options& options() const { return options_; }

  private:
    struct WorkerContext;
    struct RoundItem;

    std::unique_ptr<cupa::SearchStrategy> MakeStrategy();
    static solver::Assignment CompleteInputsFor(
        const lowlevel::LowLevelRuntime& runtime);

    std::vector<TestCase> ExploreSerial(const RunFn& run);
    std::vector<TestCase> ExploreRounds(const RunFn& run);
    std::vector<TestCase> ExploreFreeRunning(const RunFn& run);

    /// Serial commit of one recorded run: replays the log into the shared
    /// tree + tracker, produces the test case or queues the assume-retry
    /// assignment, and updates stats. Returns true if the commit produced
    /// an assume-retry assignment in *retry.
    bool CommitRun(const RoundItem& item, double t_now,
                   std::vector<TestCase>* test_cases,
                   solver::Solver* retry_solver, solver::Assignment* retry);

    /// Charges one committed run to the attribution profiler: a step
    /// per trace entry (with discovery-parent links), the run and its
    /// fingerprint yield to the originating location, assume-failures
    /// to the violation site. Called on the serial commit path only, so
    /// the charges are thread-count-invariant in round mode. No-op
    /// without Options::obs.attribution.
    void ChargeRunAttribution(uint64_t origin_hlpc, bool new_hl_path,
                              bool assume_violated);
    /// The last high-level location of the just-committed trace (0 when
    /// the run recorded none) — the assume-violation site.
    uint64_t LastTraceLocation() const;

    void FinalizeStats(
        double elapsed_seconds,
        const std::vector<std::unique_ptr<WorkerContext>>& workers);

    Options options_;
    Rng rng_;
    // Resolved once at construction; null when Options::obs carries no
    // registry.
    obs::Counter* m_runs_ = nullptr;
    obs::Counter* m_hl_paths_ = nullptr;
    obs::Counter* m_infeasible_ = nullptr;
    obs::Histogram* m_run_latency_ = nullptr;
    obs::Gauge* m_par_in_flight_ = nullptr;
    obs::Counter* m_par_claims_ = nullptr;
    obs::Counter* m_par_contention_ = nullptr;
    obs::Counter* m_par_rounds_ = nullptr;
    obs::Histogram* m_par_barrier_wait_ = nullptr;
    solver::Solver solver_;
    lowlevel::ExecutionTree tree_;
    lowlevel::LowLevelRuntime runtime_;
    hll::HlpcTracker tracker_;
    std::unique_ptr<cupa::SearchStrategy> strategy_;
    EngineStats stats_;
    /// Strategy-decision audit ring (claims record strategy, hl_pc,
    /// depth); folded into stats_.frontier at FinalizeStats.
    obs::FrontierInspector frontier_inspector_;
    /// High-water mark over announced state ids: ReleaseClaim
    /// re-announces a state through the state-added hook, so fork
    /// charges fire only for ids above the mark (exactly once per
    /// registered state; the hook runs under the tree lock).
    lowlevel::StateId attr_last_fork_id_ = 0;
};

}  // namespace chef

#endif  // CHEF_CHEF_ENGINE_H_
