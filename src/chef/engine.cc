#include "chef/engine.h"

#include "support/diagnostics.h"

namespace chef {

const char*
StrategyKindName(StrategyKind kind)
{
    switch (kind) {
      case StrategyKind::kRandom: return "random";
      case StrategyKind::kDfs: return "dfs";
      case StrategyKind::kBfs: return "bfs";
      case StrategyKind::kCupaPath: return "cupa-path";
      case StrategyKind::kCupaCoverage: return "cupa-coverage";
      case StrategyKind::kCupaPathInverted: return "cupa-path-inverted";
    }
    return "?";
}

namespace {

/// The session's solver shares the engine's telemetry context unless the
/// caller wired a distinct one into solver_options directly.
solver::Solver::Options
SolverOptionsFor(const Engine::Options& options)
{
    solver::Solver::Options solver_options = options.solver_options;
    if (solver_options.obs.metrics == nullptr &&
        solver_options.obs.tracer == nullptr) {
        solver_options.obs = options.obs;
    }
    return solver_options;
}

}  // namespace

Engine::Engine(Options options)
    : options_(options),
      rng_(options.seed),
      solver_(SolverOptionsFor(options)),
      tree_(),
      runtime_(&tree_, &solver_,
               lowlevel::LowLevelRuntime::Options{
                   options.max_steps_per_run, options.fork_weight_decay}),
      tracker_()
{
    if (options_.obs.metrics != nullptr) {
        obs::MetricsRegistry& registry = *options_.obs.metrics;
        m_runs_ = registry.counter("engine.runs");
        m_hl_paths_ = registry.counter("engine.hl_paths");
        m_infeasible_ = registry.counter("engine.infeasible_states");
        m_run_latency_ = registry.histogram("engine.run_seconds");
    }
    tracker_.Attach(&runtime_);
    strategy_ = MakeStrategy();
    tree_.set_on_pending_removed(
        [this](lowlevel::StateId id) { strategy_->OnStateRemoved(id); });
    runtime_.set_state_added_hook(
        [this](const lowlevel::AlternateState& state) {
            strategy_->OnStateAdded(state);
        });
}

std::unique_ptr<cupa::SearchStrategy>
Engine::MakeStrategy()
{
    switch (options_.strategy) {
      case StrategyKind::kRandom:
        return std::make_unique<cupa::RandomStrategy>(&rng_);
      case StrategyKind::kDfs:
        return std::make_unique<cupa::DfsStrategy>();
      case StrategyKind::kBfs:
        return std::make_unique<cupa::BfsStrategy>();
      case StrategyKind::kCupaPath:
        return cupa::MakePathOptimizedCupa(&tree_, &rng_);
      case StrategyKind::kCupaPathInverted:
        return cupa::MakeInvertedPathCupa(&tree_, &rng_);
      case StrategyKind::kCupaCoverage:
        return cupa::MakeCoverageOptimizedCupa(
            &tree_, &rng_, [this](uint64_t static_hlpc) {
                return tracker_.cfg().DistanceWeight(static_hlpc);
            });
    }
    CHEF_UNREACHABLE("unknown strategy kind");
}

solver::Assignment
Engine::CompleteInputs() const
{
    // Merge the run's assignment over the per-variable defaults so that a
    // test case report always lists a concrete value for every input.
    solver::Assignment complete;
    const auto& variables = runtime_.variables();
    for (size_t i = 0; i < variables.size(); ++i) {
        const uint32_t var_id = static_cast<uint32_t>(i + 1);
        complete.Set(var_id, runtime_.inputs().Has(var_id)
                                 ? runtime_.inputs().Get(var_id)
                                 : variables[i].default_value);
    }
    return complete;
}

std::vector<TestCase>
Engine::Explore(const RunFn& run)
{
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    auto elapsed = [&start] {
        return std::chrono::duration<double>(Clock::now() - start).count();
    };
    auto stop_requested = [this] {
        return options_.stop_requested && options_.stop_requested();
    };

    std::vector<TestCase> test_cases;
    solver::Assignment assignment;  // First run uses declared defaults.
    // Whether the loop actually exited because of the cancellation hook
    // (recorded at the exit points: re-evaluating the hook after the loop
    // would misreport a naturally completed session whose budget expires
    // moments later).
    bool stopped = false;

    while (stats_.ll_paths < options_.max_runs &&
           elapsed() < options_.max_seconds) {
        if (stop_requested()) {
            stopped = true;
            break;
        }
        // One concolic iteration: the interpreter dispatch loop runs
        // inside run(), so this span is the "where does interpreter time
        // go" row of the trace.
        const auto run_start = Clock::now();
        runtime_.BeginRun(assignment);
        tracker_.BeginRun();
        GuestOutcome outcome;
        {
            CHEF_OBS_SPAN(run_span, options_.obs.tracer, "engine/run",
                          "engine");
            outcome = run(runtime_);
        }
        const lowlevel::RunStats run_stats = runtime_.EndRun();
        const hll::HlPathInfo hl_info = tracker_.EndRun();
        if (m_runs_ != nullptr) {
            m_runs_->Add();
            m_run_latency_->Record(
                std::chrono::duration<double>(Clock::now() - run_start)
                    .count());
        }
        stats_.states_registered += run_stats.registered_states;

        if (run_stats.status == lowlevel::PathStatus::kAssumeViolated) {
            // The inputs violate a test assumption. Re-solve the current
            // path condition (which includes the assumption) and rerun.
            ++stats_.assume_retries;
            solver::Assignment model;
            if (solver_.Solve(tree_.current_path_condition(), &model) !=
                solver::QueryResult::kSat) {
                // The symbolic test's assumptions are unsatisfiable on
                // this path prefix; fall through to state selection.
            } else {
                assignment = model;
                continue;
            }
        } else {
            TestCase test_case;
            test_case.inputs = CompleteInputs();
            test_case.status = run_stats.status;
            test_case.new_hl_path = hl_info.is_new_path;
            test_case.hl_final_node = hl_info.final_node;
            test_case.hl_path_fingerprint = hl_info.path_hash;
            test_case.hl_length = hl_info.length;
            test_case.ll_steps = run_stats.steps;
            if (run_stats.status == lowlevel::PathStatus::kHang) {
                ++stats_.hangs;
                test_case.outcome_kind = "hang";
                test_case.outcome_detail = outcome.detail;
            } else {
                test_case.outcome_kind = outcome.kind;
                test_case.outcome_detail = outcome.detail;
            }
            ++stats_.ll_paths;
            if (hl_info.is_new_path) {
                ++stats_.hl_paths;
                if (m_hl_paths_ != nullptr) {
                    m_hl_paths_->Add();
                }
            }
            test_cases.push_back(std::move(test_case));

            if (options_.collect_timeline) {
                stats_.timeline.push_back(
                    {elapsed(), stats_.ll_paths, stats_.hl_paths});
            }
        }

        // Coverage-optimized CUPA consults CFG distances; refresh the
        // analysis with the newly observed edges.
        if (options_.strategy == StrategyKind::kCupaCoverage) {
            tracker_.cfg().RecomputeAnalysis(
                options_.branch_opcode_drop_fraction);
        }

        // Select the next feasible alternate state. The wall-clock budget
        // applies here too: draining a large pool of infeasible states
        // (runaway loops) must not stall the session.
        bool found = false;
        CHEF_OBS_SPAN(select_span, options_.obs.tracer, "engine/select",
                      "engine");
        while (!strategy_->empty() && elapsed() < options_.max_seconds) {
            if (stop_requested()) {
                stopped = true;
                break;
            }
            const lowlevel::StateId id = strategy_->SelectState();
            lowlevel::AlternateState state = tree_.TakePending(id);
            solver::Assignment model;
            const solver::QueryResult result =
                solver_.Solve(state.path_condition, &model);
            if (result == solver::QueryResult::kSat) {
                assignment = model;
                found = true;
                break;
            }
            tree_.MarkInfeasible(state);
            if (result == solver::QueryResult::kUnsat) {
                ++stats_.infeasible_states;
                if (m_infeasible_ != nullptr) {
                    m_infeasible_->Add();
                }
            } else {
                ++stats_.solver_failures;
            }
        }
        if (!found) {
            break;  // Exploration exhausted.
        }
    }
    stats_.stopped = stopped;
    stats_.solver_queries = solver_.stats().queries;
    stats_.solver_shared_hits = solver_.stats().shared_cache_hits;
    stats_.solver_shared_model_hits =
        solver_.stats().shared_model_reuse_hits;
    stats_.solver_sliced_queries = solver_.stats().sliced_queries;
    stats_.solver_incremental_sat_calls =
        solver_.stats().incremental_sat_calls;
    stats_.solver_clauses_loaded = solver_.stats().clauses_loaded;
    stats_.solver_seconds = solver_.stats().solve_seconds;
    stats_.elapsed_seconds = elapsed();
    return test_cases;
}

}  // namespace chef
