#include "chef/engine.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "support/diagnostics.h"

namespace chef {

const char*
StrategyKindName(StrategyKind kind)
{
    switch (kind) {
      case StrategyKind::kRandom: return "random";
      case StrategyKind::kDfs: return "dfs";
      case StrategyKind::kBfs: return "bfs";
      case StrategyKind::kCupaPath: return "cupa-path";
      case StrategyKind::kCupaCoverage: return "cupa-coverage";
      case StrategyKind::kCupaPathInverted: return "cupa-path-inverted";
    }
    return "?";
}

namespace {

using Clock = std::chrono::steady_clock;

/// The session's solver shares the engine's telemetry context unless the
/// caller wired a distinct one into solver_options directly.
solver::Solver::Options
SolverOptionsFor(const Engine::Options& options)
{
    solver::Solver::Options solver_options = options.solver_options;
    if (solver_options.obs.metrics == nullptr &&
        solver_options.obs.tracer == nullptr) {
        solver_options.obs = options.obs;
    }
    return solver_options;
}

/// A persistent pool of exploration worker threads dispatching one round of
/// indexed jobs at a time. Run() blocks until every job of the round has
/// completed (the round barrier).
class RoundPool
{
  public:
    explicit RoundPool(size_t threads)
    {
        workers_.reserve(threads);
        for (size_t i = 0; i < threads; ++i) {
            workers_.emplace_back([this, i] { WorkerLoop(i); });
        }
    }

    ~RoundPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        for (std::thread& worker : workers_) {
            worker.join();
        }
    }

    /// Executes job(worker_id, index) for index in [0, count); returns once
    /// all have finished.
    void Run(size_t count, const std::function<void(size_t, size_t)>& job)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        job_ = &job;
        count_ = count;
        next_ = 0;
        done_ = 0;
        ++generation_;
        cv_.notify_all();
        done_cv_.wait(lock, [this] { return done_ == count_; });
        job_ = nullptr;
    }

  private:
    void WorkerLoop(size_t id)
    {
        uint64_t seen = 0;
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            cv_.wait(lock, [&] {
                return stop_ || (generation_ != seen && job_ != nullptr);
            });
            if (stop_) {
                return;
            }
            seen = generation_;
            while (next_ < count_) {
                const size_t index = next_++;
                lock.unlock();
                (*job_)(id, index);
                lock.lock();
                if (++done_ == count_) {
                    done_cv_.notify_all();
                }
            }
        }
    }

    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> workers_;
    const std::function<void(size_t, size_t)>* job_ = nullptr;
    size_t count_ = 0;
    size_t next_ = 0;
    size_t done_ = 0;
    uint64_t generation_ = 0;
    bool stop_ = false;
};

}  // namespace

/// Per-exploration-thread context: own solver (with its own persistent SAT
/// session) and own runtime used in recording mode, sharing the engine's
/// tree (untouched while recording) and shared solver cache (if any).
struct Engine::WorkerContext {
    explicit WorkerContext(Engine& engine)
        : solver(SolverOptionsFor(engine.options_)),
          runtime(&engine.tree_, &solver,
                  lowlevel::LowLevelRuntime::Options{
                      engine.options_.max_steps_per_run,
                      engine.options_.fork_weight_decay})
    {
    }

    solver::Solver solver;
    lowlevel::LowLevelRuntime runtime;
};

/// One unit of parallel work: the assignment to run under, the claimed
/// state it came from (if any), and the recorded results.
struct Engine::RoundItem {
    solver::Assignment assignment;
    bool from_pending = false;
    lowlevel::AlternateState claimed;
    lowlevel::RunLog log;
    lowlevel::RunStats run_stats;
    GuestOutcome outcome;
    solver::Assignment complete_inputs;
    bool ran = false;
};

Engine::Engine(Options options)
    : options_(options),
      rng_(options.seed),
      solver_(SolverOptionsFor(options)),
      tree_(),
      runtime_(&tree_, &solver_,
               lowlevel::LowLevelRuntime::Options{
                   options.max_steps_per_run, options.fork_weight_decay}),
      tracker_()
{
    if (options_.obs.metrics != nullptr) {
        obs::MetricsRegistry& registry = *options_.obs.metrics;
        m_runs_ = registry.counter("engine.runs");
        m_hl_paths_ = registry.counter("engine.hl_paths");
        m_infeasible_ = registry.counter("engine.infeasible_states");
        m_run_latency_ = registry.histogram("engine.run_seconds");
        m_par_in_flight_ = registry.gauge("engine.parallel.states_in_flight");
        m_par_claims_ = registry.counter("engine.parallel.claims");
        m_par_contention_ =
            registry.counter("engine.parallel.claim_contention");
        m_par_rounds_ = registry.counter("engine.parallel.rounds");
        m_par_barrier_wait_ =
            registry.histogram("engine.parallel.barrier_wait_seconds");
    }
    tracker_.Attach(&runtime_);
    strategy_ = MakeStrategy();
    tree_.set_on_pending_removed(
        [this](lowlevel::StateId id) { strategy_->OnStateRemoved(id); });
    tree_.set_on_state_added(
        [this](const lowlevel::AlternateState& state) {
            strategy_->OnStateAdded(state);
            // Fork attribution: state ids are monotone, so the
            // high-water mark charges each registered state exactly
            // once (ReleaseClaim re-announces with an old id). The
            // hook runs under the tree lock; in round mode all
            // registrations happen on the serial commit path, so the
            // charge order is thread-count-invariant.
            if (options_.obs.attribution != nullptr &&
                state.id > attr_last_fork_id_) {
                attr_last_fork_id_ = state.id;
                options_.obs.attribution->Charge(
                    state.static_hlpc, obs::AttributionProfiler::kForks);
            }
        });
}

std::unique_ptr<cupa::SearchStrategy>
Engine::MakeStrategy()
{
    switch (options_.strategy) {
      case StrategyKind::kRandom:
        return std::make_unique<cupa::RandomStrategy>(&rng_);
      case StrategyKind::kDfs:
        return std::make_unique<cupa::DfsStrategy>();
      case StrategyKind::kBfs:
        return std::make_unique<cupa::BfsStrategy>();
      case StrategyKind::kCupaPath:
        return cupa::MakePathOptimizedCupa(&tree_, &rng_);
      case StrategyKind::kCupaPathInverted:
        return cupa::MakeInvertedPathCupa(&tree_, &rng_);
      case StrategyKind::kCupaCoverage:
        return cupa::MakeCoverageOptimizedCupa(
            &tree_, &rng_, [this](uint64_t static_hlpc) {
                return tracker_.cfg().DistanceWeight(static_hlpc);
            });
    }
    CHEF_UNREACHABLE("unknown strategy kind");
}

solver::Assignment
Engine::CompleteInputsFor(const lowlevel::LowLevelRuntime& runtime)
{
    // Merge the run's assignment over the per-variable defaults so that a
    // test case report always lists a concrete value for every input.
    solver::Assignment complete;
    const auto& variables = runtime.variables();
    for (size_t i = 0; i < variables.size(); ++i) {
        const uint32_t var_id = static_cast<uint32_t>(i + 1);
        complete.Set(var_id, runtime.inputs().Has(var_id)
                                 ? runtime.inputs().Get(var_id)
                                 : variables[i].default_value);
    }
    return complete;
}

std::vector<TestCase>
Engine::Explore(const RunFn& run)
{
    if (options_.exploration_threads <= 1) {
        return ExploreSerial(run);
    }
    if (options_.free_running) {
        return ExploreFreeRunning(run);
    }
    return ExploreRounds(run);
}

std::vector<TestCase>
Engine::ExploreSerial(const RunFn& run)
{
    const auto start = Clock::now();
    auto elapsed = [&start] {
        return std::chrono::duration<double>(Clock::now() - start).count();
    };
    auto stop_requested = [this] {
        return options_.stop_requested && options_.stop_requested();
    };

    std::vector<TestCase> test_cases;
    solver::Assignment assignment;  // First run uses declared defaults.
    // Attribution origin of the upcoming run: the hl_pc of the claimed
    // state it explores, 0 for the defaults run and assume retries —
    // matching round mode, where carryover items carry no claim.
    uint64_t run_origin = 0;
    // Whether the loop actually exited because of the cancellation hook
    // (recorded at the exit points: re-evaluating the hook after the loop
    // would misreport a naturally completed session whose budget expires
    // moments later).
    bool stopped = false;

    while (stats_.ll_paths < options_.max_runs &&
           elapsed() < options_.max_seconds) {
        if (stop_requested()) {
            stopped = true;
            break;
        }
        // One concolic iteration: the interpreter dispatch loop runs
        // inside run(), so this span is the "where does interpreter time
        // go" row of the trace.
        const auto run_start = Clock::now();
        runtime_.BeginRun(assignment);
        tracker_.BeginRun();
        GuestOutcome outcome;
        {
            CHEF_OBS_SPAN(run_span, options_.obs.tracer, "engine/run",
                          "engine");
            outcome = run(runtime_);
        }
        const lowlevel::RunStats run_stats = runtime_.EndRun();
        const hll::HlPathInfo hl_info = tracker_.EndRun();
        if (m_runs_ != nullptr) {
            m_runs_->Add();
            m_run_latency_->Record(
                std::chrono::duration<double>(Clock::now() - run_start)
                    .count());
        }
        stats_.states_registered += run_stats.registered_states;
        ChargeRunAttribution(
            run_origin, hl_info.is_new_path,
            run_stats.status == lowlevel::PathStatus::kAssumeViolated);

        if (run_stats.status == lowlevel::PathStatus::kAssumeViolated) {
            // The inputs violate a test assumption. Re-solve the current
            // path condition (which includes the assumption) and rerun.
            ++stats_.assume_retries;
            solver::Assignment model;
            const obs::ScopedLocation solve_location(LastTraceLocation());
            if (solver_.Solve(runtime_.current_path_condition(), &model) !=
                solver::QueryResult::kSat) {
                // The symbolic test's assumptions are unsatisfiable on
                // this path prefix; fall through to state selection.
            } else {
                assignment = model;
                run_origin = 0;
                continue;
            }
        } else {
            TestCase test_case;
            test_case.inputs = CompleteInputsFor(runtime_);
            test_case.status = run_stats.status;
            test_case.new_hl_path = hl_info.is_new_path;
            test_case.hl_final_node = hl_info.final_node;
            test_case.hl_path_fingerprint = hl_info.path_hash;
            test_case.hl_length = hl_info.length;
            test_case.ll_steps = run_stats.steps;
            if (run_stats.status == lowlevel::PathStatus::kHang) {
                ++stats_.hangs;
                test_case.outcome_kind = "hang";
                test_case.outcome_detail = outcome.detail;
            } else {
                test_case.outcome_kind = outcome.kind;
                test_case.outcome_detail = outcome.detail;
            }
            ++stats_.ll_paths;
            if (hl_info.is_new_path) {
                ++stats_.hl_paths;
                if (m_hl_paths_ != nullptr) {
                    m_hl_paths_->Add();
                }
            }
            test_cases.push_back(std::move(test_case));

            if (options_.collect_timeline) {
                stats_.timeline.push_back(
                    {elapsed(), stats_.ll_paths, stats_.hl_paths});
            }
        }

        // Coverage-optimized CUPA consults CFG distances; refresh the
        // analysis with the newly observed edges.
        if (options_.strategy == StrategyKind::kCupaCoverage) {
            tracker_.cfg().RecomputeAnalysis(
                options_.branch_opcode_drop_fraction);
        }

        // Select the next feasible alternate state. The wall-clock budget
        // applies here too: draining a large pool of infeasible states
        // (runaway loops) must not stall the session.
        bool found = false;
        CHEF_OBS_SPAN(select_span, options_.obs.tracer, "engine/select",
                      "engine");
        while (!strategy_->empty() && elapsed() < options_.max_seconds) {
            if (stop_requested()) {
                stopped = true;
                break;
            }
            // Claim through the tree even though there is no competing
            // worker: every strategy call site then holds the tree lock
            // first, the one lock order the parallel modes rely on
            // (strategy selection may re-enter the tree to read state
            // attributes).
            lowlevel::AlternateState state;
            if (!tree_.ClaimState(
                    [this] { return strategy_->ClaimState(); }, &state)) {
                break;
            }
            frontier_inspector_.RecordPick(
                StrategyKindName(options_.strategy), state.static_hlpc,
                state.depth);
            solver::Assignment model;
            solver::QueryResult result;
            {
                const obs::ScopedLocation solve_location(
                    state.static_hlpc);
                result = solver_.Solve(state.path_condition, &model);
            }
            if (result == solver::QueryResult::kSat) {
                tree_.CompleteClaim(state.id);
                assignment = model;
                run_origin = state.static_hlpc;
                found = true;
                break;
            }
            tree_.MarkInfeasible(state);
            if (result == solver::QueryResult::kUnsat) {
                ++stats_.infeasible_states;
                if (m_infeasible_ != nullptr) {
                    m_infeasible_->Add();
                }
            } else {
                ++stats_.solver_failures;
            }
        }
        if (!found) {
            break;  // Exploration exhausted.
        }
    }
    stats_.stopped = stopped;
    FinalizeStats(elapsed(), {});
    return test_cases;
}

void
Engine::ChargeRunAttribution(uint64_t origin_hlpc, bool new_hl_path,
                             bool assume_violated)
{
    obs::AttributionProfiler* profiler = options_.obs.attribution;
    if (profiler == nullptr) {
        return;
    }
    // One step per trace entry, linked to its predecessor so the
    // folded-stack export can reconstruct discovery chains.
    uint64_t previous = obs::kAttributionNoParent;
    for (const uint64_t hl_pc : tracker_.current_trace()) {
        profiler->ChargeWithParent(hl_pc, previous,
                                   obs::AttributionProfiler::kSteps);
        previous = hl_pc;
    }
    profiler->Charge(origin_hlpc, obs::AttributionProfiler::kRuns);
    if (assume_violated) {
        profiler->Charge(LastTraceLocation(),
                         obs::AttributionProfiler::kAssumeFailures);
    } else if (new_hl_path) {
        // Yield: the fingerprint is credited to the location whose
        // alternate state led to this run.
        profiler->Charge(origin_hlpc,
                         obs::AttributionProfiler::kNewFingerprints);
    }
}

uint64_t
Engine::LastTraceLocation() const
{
    const std::vector<uint64_t>& trace = tracker_.current_trace();
    return trace.empty() ? 0 : trace.back();
}

bool
Engine::CommitRun(const RoundItem& item, double t_now,
                  std::vector<TestCase>* test_cases,
                  solver::Solver* retry_solver, solver::Assignment* retry)
{
    tracker_.BeginRun();
    const lowlevel::RunStats replay = runtime_.CommitRecordedRun(item.log);
    const hll::HlPathInfo hl_info = tracker_.EndRun();
    stats_.states_registered += replay.registered_states;
    ChargeRunAttribution(
        item.from_pending ? item.claimed.static_hlpc : 0,
        hl_info.is_new_path,
        item.run_stats.status == lowlevel::PathStatus::kAssumeViolated);
    if (item.from_pending) {
        tree_.CompleteClaim(item.claimed.id);
    }

    if (item.run_stats.status == lowlevel::PathStatus::kAssumeViolated) {
        ++stats_.assume_retries;
        solver::Assignment model;
        const obs::ScopedLocation solve_location(LastTraceLocation());
        if (retry_solver->Solve(runtime_.current_path_condition(), &model) ==
            solver::QueryResult::kSat) {
            *retry = std::move(model);
            return true;
        }
        // The symbolic test's assumptions are unsatisfiable on this path
        // prefix; the chain ends here, as in the serial loop.
        return false;
    }

    TestCase test_case;
    test_case.inputs = item.complete_inputs;
    test_case.status = item.run_stats.status;
    test_case.new_hl_path = hl_info.is_new_path;
    test_case.hl_final_node = hl_info.final_node;
    test_case.hl_path_fingerprint = hl_info.path_hash;
    test_case.hl_length = hl_info.length;
    test_case.ll_steps = item.run_stats.steps;
    if (item.run_stats.status == lowlevel::PathStatus::kHang) {
        ++stats_.hangs;
        test_case.outcome_kind = "hang";
        test_case.outcome_detail = item.outcome.detail;
    } else {
        test_case.outcome_kind = item.outcome.kind;
        test_case.outcome_detail = item.outcome.detail;
    }
    ++stats_.ll_paths;
    if (hl_info.is_new_path) {
        ++stats_.hl_paths;
        if (m_hl_paths_ != nullptr) {
            m_hl_paths_->Add();
        }
    }
    test_cases->push_back(std::move(test_case));
    if (options_.collect_timeline) {
        stats_.timeline.push_back({t_now, stats_.ll_paths, stats_.hl_paths});
    }
    return false;
}

std::vector<TestCase>
Engine::ExploreRounds(const RunFn& run)
{
    const auto start = Clock::now();
    auto elapsed = [&start] {
        return std::chrono::duration<double>(Clock::now() - start).count();
    };
    auto stop_requested = [this] {
        return options_.stop_requested && options_.stop_requested();
    };

    const uint32_t threads = options_.exploration_threads;
    const uint32_t width = std::max<uint32_t>(1, options_.round_width);
    stats_.threads_used = threads;

    std::vector<std::unique_ptr<WorkerContext>> workers;
    workers.reserve(threads);
    for (uint32_t i = 0; i < threads; ++i) {
        workers.push_back(std::make_unique<WorkerContext>(*this));
    }
    RoundPool pool(threads);

    std::vector<TestCase> test_cases;
    // Assignments that enter the next round without consuming a claim: the
    // initial defaults run, then assume-retry reruns.
    std::vector<solver::Assignment> carryover;
    carryover.emplace_back();
    bool stopped = false;

    for (;;) {
        if (stats_.ll_paths >= options_.max_runs ||
            elapsed() >= options_.max_seconds) {
            break;
        }
        if (stop_requested()) {
            stopped = true;
            break;
        }

        // -- Selection phase: serial, on the session solver, in strategy
        //    order. Deterministic regardless of the thread count.
        std::vector<RoundItem> round;
        for (solver::Assignment& assignment : carryover) {
            RoundItem item;
            item.assignment = std::move(assignment);
            round.push_back(std::move(item));
        }
        carryover.clear();
        {
            CHEF_OBS_SPAN(select_span, options_.obs.tracer, "engine/select",
                          "engine");
            while (round.size() < width &&
                   stats_.ll_paths + round.size() < options_.max_runs &&
                   elapsed() < options_.max_seconds) {
                if (stop_requested()) {
                    stopped = true;
                    break;
                }
                lowlevel::AlternateState state;
                const bool claimed = tree_.ClaimState(
                    [this] {
                        return strategy_->empty()
                                   ? lowlevel::StateId(0)
                                   : strategy_->ClaimState();
                    },
                    &state);
                if (!claimed) {
                    break;  // Nothing pending.
                }
                ++stats_.claims;
                if (m_par_claims_ != nullptr) {
                    m_par_claims_->Add();
                }
                frontier_inspector_.RecordPick(
                    StrategyKindName(options_.strategy),
                    state.static_hlpc, state.depth);
                solver::Assignment model;
                solver::QueryResult result;
                {
                    const obs::ScopedLocation solve_location(
                        state.static_hlpc);
                    result = solver_.Solve(state.path_condition, &model);
                }
                if (result == solver::QueryResult::kSat) {
                    RoundItem item;
                    item.assignment = std::move(model);
                    item.from_pending = true;
                    item.claimed = std::move(state);
                    round.push_back(std::move(item));
                } else {
                    tree_.MarkInfeasible(state);
                    if (result == solver::QueryResult::kUnsat) {
                        ++stats_.infeasible_states;
                        if (m_infeasible_ != nullptr) {
                            m_infeasible_->Add();
                        }
                    } else {
                        ++stats_.solver_failures;
                    }
                }
            }
        }
        if (round.empty()) {
            break;  // Exploration exhausted (or stopped with no work left).
        }

        // -- Run phase: the guest runs execute in parallel, purely as a
        //    function of their assignment (recording mode).
        std::atomic<bool> round_stop{stopped};
        std::vector<Clock::time_point> last_finish(threads);
        std::vector<char> worker_ran(threads, 0);
        pool.Run(round.size(), [&](size_t worker, size_t index) {
            RoundItem& item = round[index];
            if (round_stop.load(std::memory_order_relaxed)) {
                return;
            }
            if (stop_requested()) {
                round_stop.store(true, std::memory_order_relaxed);
                return;
            }
            WorkerContext& context = *workers[worker];
            if (m_par_in_flight_ != nullptr) {
                m_par_in_flight_->Add(1);
            }
            const auto run_start = Clock::now();
            context.runtime.BeginRecordedRun(item.assignment, &item.log);
            {
                CHEF_OBS_SPAN(run_span, options_.obs.tracer,
                              "engine/parallel_run", "engine");
                item.outcome = run(context.runtime);
            }
            item.run_stats = context.runtime.EndRun();
            item.complete_inputs = CompleteInputsFor(context.runtime);
            item.ran = true;
            if (m_runs_ != nullptr) {
                m_runs_->Add();
                m_run_latency_->Record(
                    std::chrono::duration<double>(Clock::now() - run_start)
                        .count());
            }
            if (m_par_in_flight_ != nullptr) {
                m_par_in_flight_->Add(-1);
            }
            last_finish[worker] = Clock::now();
            worker_ran[worker] = 1;
        });
        const auto round_end = Clock::now();
        for (uint32_t worker = 0; worker < threads; ++worker) {
            if (worker_ran[worker] == 0) {
                continue;
            }
            const double wait = std::chrono::duration<double>(
                                    round_end - last_finish[worker])
                                    .count();
            stats_.barrier_wait_seconds += wait;
            if (m_par_barrier_wait_ != nullptr) {
                m_par_barrier_wait_->Record(wait);
            }
        }
        if (round_stop.load(std::memory_order_relaxed)) {
            stopped = true;
        }

        // -- Commit phase: serial, in selection order. Identical shared
        //    state evolution no matter how the run phase was scheduled.
        for (RoundItem& item : round) {
            if (!item.ran) {
                // Skipped by a mid-round stop: hand the lease back so the
                // tree's bookkeeping stays consistent.
                if (item.from_pending) {
                    tree_.ReleaseClaim(item.claimed);
                }
                continue;
            }
            solver::Assignment retry;
            if (CommitRun(item, elapsed(), &test_cases, &solver_, &retry)) {
                carryover.push_back(std::move(retry));
            }
        }
        // Coverage-optimized CUPA consults CFG distances; refresh once per
        // round with the newly observed edges.
        if (options_.strategy == StrategyKind::kCupaCoverage) {
            tracker_.cfg().RecomputeAnalysis(
                options_.branch_opcode_drop_fraction);
        }
        ++stats_.rounds;
        if (m_par_rounds_ != nullptr) {
            m_par_rounds_->Add();
        }
        if (stopped) {
            break;
        }
    }
    stats_.stopped = stopped;
    FinalizeStats(elapsed(), workers);
    return test_cases;
}

std::vector<TestCase>
Engine::ExploreFreeRunning(const RunFn& run)
{
    const auto start = Clock::now();
    auto elapsed = [&start] {
        return std::chrono::duration<double>(Clock::now() - start).count();
    };
    auto stop_requested = [this] {
        return options_.stop_requested && options_.stop_requested();
    };

    const uint32_t threads = options_.exploration_threads;
    stats_.threads_used = threads;
    std::vector<std::unique_ptr<WorkerContext>> workers;
    workers.reserve(threads);
    for (uint32_t i = 0; i < threads; ++i) {
        workers.push_back(std::make_unique<WorkerContext>(*this));
    }

    std::vector<TestCase> test_cases;
    // Coordination: commits, stats, the tracker and the commit runtime are
    // all guarded by coord; busy counts workers holding unfinished work so
    // exhaustion ("strategy empty and nobody running") is detected exactly.
    std::mutex coord;
    std::condition_variable cv;
    size_t busy = 0;
    bool initial_dispatched = false;
    bool stopped = false;  // Guarded by coord.
    std::atomic<bool> wind_down{false};

    auto worker_fn = [&](size_t worker_index) {
        WorkerContext& context = *workers[worker_index];
        for (;;) {
            solver::Assignment assignment;
            bool from_pending = false;
            lowlevel::AlternateState claimed;
            {
                std::unique_lock<std::mutex> lock(coord);
                for (;;) {
                    if (wind_down.load(std::memory_order_relaxed)) {
                        return;
                    }
                    if (stop_requested()) {
                        stopped = true;
                        wind_down.store(true, std::memory_order_relaxed);
                        cv.notify_all();
                        return;
                    }
                    if (stats_.ll_paths >= options_.max_runs ||
                        elapsed() >= options_.max_seconds) {
                        wind_down.store(true, std::memory_order_relaxed);
                        cv.notify_all();
                        return;
                    }
                    if (!initial_dispatched) {
                        initial_dispatched = true;
                        ++busy;
                        break;
                    }
                    if (tree_.ClaimState(
                            [this] {
                                return strategy_->empty()
                                           ? lowlevel::StateId(0)
                                           : strategy_->ClaimState();
                            },
                            &claimed)) {
                        ++stats_.claims;
                        if (m_par_claims_ != nullptr) {
                            m_par_claims_->Add();
                        }
                        frontier_inspector_.RecordPick(
                            StrategyKindName(options_.strategy),
                            claimed.static_hlpc, claimed.depth);
                        from_pending = true;
                        ++busy;
                        break;
                    }
                    if (busy == 0) {
                        // Nothing pending and nobody running: exhausted.
                        cv.notify_all();
                        return;
                    }
                    cv.wait_for(lock, std::chrono::milliseconds(20));
                }
            }

            // Work acquired (busy held until the chain below finishes).
            bool chain = true;
            while (chain) {
                chain = false;
                if (from_pending) {
                    // Solve on this worker's own solver, in parallel with
                    // other workers' solves and runs.
                    solver::Assignment model;
                    solver::QueryResult result;
                    {
                        const obs::ScopedLocation solve_location(
                            claimed.static_hlpc);
                        result = context.solver.Solve(
                            claimed.path_condition, &model);
                    }
                    if (result != solver::QueryResult::kSat) {
                        std::lock_guard<std::mutex> lock(coord);
                        tree_.MarkInfeasible(claimed);
                        if (result == solver::QueryResult::kUnsat) {
                            ++stats_.infeasible_states;
                            if (m_infeasible_ != nullptr) {
                                m_infeasible_->Add();
                            }
                        } else {
                            ++stats_.solver_failures;
                        }
                        break;
                    }
                    assignment = std::move(model);
                }
                if (wind_down.load(std::memory_order_relaxed)) {
                    if (from_pending) {
                        std::lock_guard<std::mutex> lock(coord);
                        tree_.ReleaseClaim(claimed);
                    }
                    break;
                }

                RoundItem item;
                item.from_pending = from_pending;
                item.claimed = claimed;
                if (m_par_in_flight_ != nullptr) {
                    m_par_in_flight_->Add(1);
                }
                const auto run_start = Clock::now();
                context.runtime.BeginRecordedRun(assignment, &item.log);
                {
                    CHEF_OBS_SPAN(run_span, options_.obs.tracer,
                                  "engine/parallel_run", "engine");
                    item.outcome = run(context.runtime);
                }
                item.run_stats = context.runtime.EndRun();
                item.complete_inputs = CompleteInputsFor(context.runtime);
                item.ran = true;
                if (m_runs_ != nullptr) {
                    m_runs_->Add();
                    m_run_latency_->Record(std::chrono::duration<double>(
                                               Clock::now() - run_start)
                                               .count());
                }
                if (m_par_in_flight_ != nullptr) {
                    m_par_in_flight_->Add(-1);
                }

                solver::Assignment retry;
                bool has_retry = false;
                {
                    std::lock_guard<std::mutex> lock(coord);
                    has_retry = CommitRun(item, elapsed(), &test_cases,
                                          &context.solver, &retry);
                    if (options_.strategy == StrategyKind::kCupaCoverage) {
                        tracker_.cfg().RecomputeAnalysis(
                            options_.branch_opcode_drop_fraction);
                    }
                    // The commit may have registered new pending states.
                    cv.notify_all();
                }
                if (has_retry &&
                    !wind_down.load(std::memory_order_relaxed)) {
                    // Assume-retry: rerun under the repaired assignment
                    // without releasing the work token.
                    assignment = std::move(retry);
                    from_pending = false;
                    chain = true;
                }
            }

            {
                std::lock_guard<std::mutex> lock(coord);
                --busy;
                cv.notify_all();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (uint32_t i = 0; i < threads; ++i) {
        pool.emplace_back(worker_fn, i);
    }
    for (std::thread& worker : pool) {
        worker.join();
    }

    stats_.stopped = stopped;
    FinalizeStats(elapsed(), workers);
    return test_cases;
}

void
Engine::FinalizeStats(
    double elapsed_seconds,
    const std::vector<std::unique_ptr<WorkerContext>>& workers)
{
    stats_.solver_queries = solver_.stats().queries;
    stats_.solver_shared_hits = solver_.stats().shared_cache_hits;
    stats_.solver_shared_model_hits =
        solver_.stats().shared_model_reuse_hits;
    stats_.solver_sliced_queries = solver_.stats().sliced_queries;
    stats_.solver_incremental_sat_calls =
        solver_.stats().incremental_sat_calls;
    stats_.solver_clauses_loaded = solver_.stats().clauses_loaded;
    stats_.solver_seconds = solver_.stats().solve_seconds;
    for (const std::unique_ptr<WorkerContext>& worker : workers) {
        const solver::SolverStats& solver_stats = worker->solver.stats();
        stats_.solver_queries += solver_stats.queries;
        stats_.solver_shared_hits += solver_stats.shared_cache_hits;
        stats_.solver_shared_model_hits +=
            solver_stats.shared_model_reuse_hits;
        stats_.solver_sliced_queries += solver_stats.sliced_queries;
        stats_.solver_incremental_sat_calls +=
            solver_stats.incremental_sat_calls;
        stats_.solver_clauses_loaded += solver_stats.clauses_loaded;
        stats_.solver_seconds += solver_stats.solve_seconds;
    }
    stats_.claim_contention = tree_.claim_contention();
    if (m_par_contention_ != nullptr && stats_.claim_contention > 0) {
        m_par_contention_->Add(stats_.claim_contention);
    }
    stats_.elapsed_seconds = elapsed_seconds;
    if (options_.obs.attribution != nullptr) {
        stats_.attribution = options_.obs.attribution->Snapshot();
    }
    stats_.frontier = tree_.SnapshotFrontier();
    stats_.frontier.strategy_picks = frontier_inspector_.PickCounts();
}

}  // namespace chef
