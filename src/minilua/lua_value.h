#ifndef CHEF_MINILUA_LUA_VALUE_H_
#define CHEF_MINILUA_LUA_VALUE_H_

/// \file
/// MiniLua runtime values.
///
/// Numbers are 64-bit integers (the paper's integer Lua build, §5.2).
/// Strings are immutable concolic byte vectors and — like real Lua — are
/// interned on creation in the vanilla interpreter build; the optimized
/// build eliminates interning. Tables have the classic array part plus an
/// instrumented hash part.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/str_ops.h"
#include "lowlevel/symvalue.h"

namespace chef::minilua {

using interp::SymStr;
using lowlevel::SymValue;

struct LuaTable;
struct LuaFunction;
struct LuaIterator;
class LuaInterp;

/// A Lua value. Cheap to copy (payloads are shared).
struct LuaValue {
    enum class Type : uint8_t {
        kNil,
        kBool,
        kInt,
        kStr,
        kTable,
        kFunction,
        kBuiltin,
        kIterator,  ///< pairs()/ipairs() result driving a for-in loop.
    };

    Type type = Type::kNil;
    SymValue num{0, 64};  ///< kInt payload; kBool uses width 1.
    std::shared_ptr<SymStr> str;
    std::shared_ptr<LuaTable> table;
    std::shared_ptr<LuaFunction> function;
    std::shared_ptr<LuaIterator> iterator;
    int builtin_id = 0;

    bool IsNil() const { return type == Type::kNil; }

    static LuaValue Nil() { return LuaValue(); }
    static LuaValue Bool(SymValue value);
    static LuaValue BoolC(bool value);
    static LuaValue Int(SymValue value);
    static LuaValue IntC(int64_t value);
    static LuaValue Str(SymStr value);
    static LuaValue StrC(const std::string& value);
    static LuaValue Table(std::shared_ptr<LuaTable> table);
    static LuaValue Builtin(int id);
};

const char* LuaTypeName(LuaValue::Type type);

struct LuaAst;

/// Lexical environment: a scope chain of concrete-name bindings (closures
/// capture their defining environment).
struct LuaEnv {
    std::unordered_map<std::string, LuaValue> vars;
    std::shared_ptr<LuaEnv> parent;

    /// Finds the environment defining \p name, or null.
    LuaEnv* Resolve(const std::string& name)
    {
        for (LuaEnv* env = this; env != nullptr;
             env = env->parent.get()) {
            if (env->vars.count(name)) {
                return env;
            }
        }
        return nullptr;
    }
};

using LuaEnvPtr = std::shared_ptr<LuaEnv>;

/// A Lua closure.
struct LuaFunction {
    std::vector<std::string> params;
    const LuaAst* body = nullptr;  ///< kBlock.
    LuaEnvPtr closure;
    std::string name;  ///< For diagnostics.
};

/// Snapshot iterator produced by pairs()/ipairs().
struct LuaIterator {
    std::vector<std::pair<LuaValue, LuaValue>> entries;
};

/// A Lua table: dense 1-based array part + instrumented hash part.
struct LuaTable {
    struct Entry {
        LuaValue key;
        LuaValue value;
        bool alive = true;
    };

    std::vector<LuaValue> array;  ///< array[i] holds t[i+1].

    /// Hash part: bucket chains of entry indices (insertion ordered).
    std::vector<Entry> entries;
    std::vector<std::vector<uint32_t>> buckets{
        std::vector<std::vector<uint32_t>>(8)};
    size_t live_count = 0;

    /// Raw get/set run through the interpreter for instrumented hashing
    /// and key comparison; declared here, implemented with the interp.
    LuaValue Get(LuaInterp& interp, const LuaValue& key);
    void Set(LuaInterp& interp, const LuaValue& key, LuaValue value);

    /// The '#' border: length of the dense array part.
    int64_t Border() const;
};

}  // namespace chef::minilua

#endif  // CHEF_MINILUA_LUA_VALUE_H_
