#ifndef CHEF_MINILUA_LUA_INTERP_H_
#define CHEF_MINILUA_LUA_INTERP_H_

/// \file
/// The MiniLua interpreter: an instrumented tree walker.
///
/// Where MiniPy demonstrates CHEF on a bytecode interpreter, MiniLua
/// demonstrates it on an AST interpreter: log_pc(node_id, node_kind) is
/// reported at the head of the statement/expression dispatch — the paper's
/// point that "CHEF's correctness does not depend on the specific
/// instrumentation pattern" (§4.1). Guest errors follow Lua's error/pcall
/// model; there is no exception hierarchy (Table 3 reports no exception
/// counts for Lua).

#include <memory>
#include <set>
#include <string>

#include "interp/build_options.h"
#include "interp/int_ops.h"
#include "interp/mem_ops.h"
#include "lowlevel/runtime.h"
#include "minilua/lua_ast.h"
#include "minilua/lua_value.h"

namespace chef::minilua {

/// Result of running guest code.
struct LuaOutcome {
    bool ok = true;
    std::string error_message;  ///< Set on uncaught error().
    bool aborted = false;       ///< Engine cut the run short.
};

class LuaInterp
{
  public:
    struct Options {
        interp::InterpBuildOptions build =
            interp::InterpBuildOptions::FullyOptimized();
        bool coverage = false;
        int max_depth = 48;
    };

    LuaInterp(lowlevel::LowLevelRuntime* rt,
              std::shared_ptr<LuaChunk> chunk, Options options);

    /// Runs the chunk body in the global environment.
    LuaOutcome RunChunk();

    /// Calls a global function (after RunChunk defined it).
    LuaOutcome CallGlobal(const std::string& name,
                          std::vector<LuaValue> args,
                          LuaValue* result = nullptr);

    const std::string& output() const { return output_; }
    const std::set<int>& covered_lines() const { return covered_lines_; }

    lowlevel::LowLevelRuntime* rt() { return rt_; }
    interp::StrOps& str_ops() { return str_ops_; }
    const interp::InterpBuildOptions& build() const
    {
        return options_.build;
    }

    // -- Value operations (used by LuaTable too) ---------------------------

    /// Lua equality as a width-1 concolic value.
    SymValue ValueEq(const LuaValue& a, const LuaValue& b);

    /// Hash for table keys (neutralization-aware).
    SymValue HashKey(const LuaValue& key);

    /// Truthiness: nil and false are false, everything else true.
    SymValue Truthy(const LuaValue& value);

    /// Interns a freshly created string (vanilla builds only).
    LuaValue NewString(SymStr bytes);

    /// Raises a Lua error with a message; execution unwinds to the
    /// nearest pcall (or the top level).
    void Error(const std::string& message);
    bool errored() const { return error_raised_; }

    /// tostring() semantics.
    SymStr ToStringValue(const LuaValue& value);

  private:
    enum class Sig : uint8_t { kNone, kBreak, kReturn, kError };

    Sig ExecBlock(const LuaAst& block, const LuaEnvPtr& env);
    Sig ExecStat(const LuaAst& stat, const LuaEnvPtr& env);
    LuaValue EvalExpr(const LuaAst& expr, const LuaEnvPtr& env);
    /// Evaluates an expression list; calls in the last position may
    /// contribute two values (pcall).
    std::vector<LuaValue> EvalExprList(
        const std::vector<LuaAstPtr>& exprs, const LuaEnvPtr& env);
    std::vector<LuaValue> EvalCallMulti(const LuaAst& call,
                                        const LuaEnvPtr& env);

    LuaValue CallFunction(const LuaValue& callee,
                          std::vector<LuaValue> args);
    std::vector<LuaValue> CallFunctionMulti(const LuaValue& callee,
                                            std::vector<LuaValue> args);
    std::vector<LuaValue> CallBuiltinMulti(int builtin_id,
                                           std::vector<LuaValue>& args);
    LuaValue CallStringMethod(const LuaValue& receiver,
                              const std::string& name,
                              std::vector<LuaValue>& args);

    void AssignTo(const LuaAst& target, const LuaEnvPtr& env,
                  LuaValue value);

    LuaValue BinOp(const LuaAst& node, const LuaEnvPtr& env);
    LuaValue Index(const LuaValue& object, const LuaValue& key);

    bool DecideTruthy(const LuaValue& value, uint64_t llpc);
    SymValue ToNumber(const LuaValue& value, bool* ok);

    void LogNode(const LuaAst& node);

    lowlevel::LowLevelRuntime* rt_;
    std::shared_ptr<LuaChunk> chunk_;
    Options options_;
    interp::StrOps str_ops_;
    interp::InternTable interns_;

    LuaEnvPtr globals_;
    std::vector<LuaValue> return_values_;
    std::string error_message_;
    bool error_raised_ = false;
    int depth_ = 0;

    std::string output_;
    std::set<int> covered_lines_;
};

}  // namespace chef::minilua

#endif  // CHEF_MINILUA_LUA_INTERP_H_
