#include <cctype>
#include <functional>
#include <set>
#include <unordered_map>

#include "minilua/lua_ast.h"

namespace chef::minilua {

const char*
LuaAstKindName(LuaAstKind kind)
{
    switch (kind) {
      case LuaAstKind::kNil: return "nil";
      case LuaAstKind::kTrue: return "true";
      case LuaAstKind::kFalse: return "false";
      case LuaAstKind::kNumber: return "number";
      case LuaAstKind::kString: return "string";
      case LuaAstKind::kVararg: return "vararg";
      case LuaAstKind::kName: return "name";
      case LuaAstKind::kIndex: return "index";
      case LuaAstKind::kCall: return "call";
      case LuaAstKind::kMethodCall: return "methodcall";
      case LuaAstKind::kFunction: return "function";
      case LuaAstKind::kBinOp: return "binop";
      case LuaAstKind::kUnOp: return "unop";
      case LuaAstKind::kTable: return "table";
      case LuaAstKind::kBlock: return "block";
      case LuaAstKind::kLocal: return "local";
      case LuaAstKind::kAssign: return "assign";
      case LuaAstKind::kExprStat: return "exprstat";
      case LuaAstKind::kIf: return "if";
      case LuaAstKind::kWhile: return "while";
      case LuaAstKind::kRepeat: return "repeat";
      case LuaAstKind::kForNum: return "fornum";
      case LuaAstKind::kForIn: return "forin";
      case LuaAstKind::kFunctionStat: return "functionstat";
      case LuaAstKind::kLocalFunction: return "localfunction";
      case LuaAstKind::kReturn: return "return";
      case LuaAstKind::kBreak: return "break";
    }
    return "?";
}

namespace {

enum class T : uint8_t {
    kEof, kName, kNumber, kString,
    kPlus, kMinus, kStar, kSlash, kPercent,
    kEq, kNe, kLt, kLe, kGt, kGe, kAssign,
    kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
    kSemi, kColon, kComma, kDot, kConcat, kEllipsis, kHash,
    // Keywords.
    kAnd, kBreak, kDo, kElse, kElseif, kEnd, kFalse, kFor, kFunction,
    kIf, kIn, kLocal, kNil, kNot, kOr, kRepeat, kReturn, kThen, kTrue,
    kUntil, kWhile,
};

struct LuaToken {
    T kind = T::kEof;
    std::string text;
    int64_t number = 0;
    int line = 1;
};

const std::unordered_map<std::string, T>&
LuaKeywords()
{
    static const std::unordered_map<std::string, T> keywords = {
        {"and", T::kAnd},       {"break", T::kBreak},
        {"do", T::kDo},         {"else", T::kElse},
        {"elseif", T::kElseif}, {"end", T::kEnd},
        {"false", T::kFalse},   {"for", T::kFor},
        {"function", T::kFunction}, {"if", T::kIf},
        {"in", T::kIn},         {"local", T::kLocal},
        {"nil", T::kNil},       {"not", T::kNot},
        {"or", T::kOr},         {"repeat", T::kRepeat},
        {"return", T::kReturn}, {"then", T::kThen},
        {"true", T::kTrue},     {"until", T::kUntil},
        {"while", T::kWhile},
    };
    return keywords;
}

class LuaLexer
{
  public:
    explicit LuaLexer(const std::string& source) : src_(source) {}

    bool Run(std::vector<LuaToken>* tokens, std::string* error,
             int* error_line)
    {
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
                continue;
            }
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos_;
                continue;
            }
            if (c == '-' && pos_ + 1 < src_.size() &&
                src_[pos_ + 1] == '-') {
                pos_ += 2;
                // Long comment --[[ ... ]] or line comment.
                if (pos_ + 1 < src_.size() && src_[pos_] == '[' &&
                    src_[pos_ + 1] == '[') {
                    pos_ += 2;
                    while (pos_ + 1 < src_.size() &&
                           !(src_[pos_] == ']' && src_[pos_ + 1] == ']')) {
                        if (src_[pos_] == '\n') {
                            ++line_;
                        }
                        ++pos_;
                    }
                    pos_ += 2;
                } else {
                    while (pos_ < src_.size() && src_[pos_] != '\n') {
                        ++pos_;
                    }
                }
                continue;
            }
            if (c == '\'' || c == '"') {
                if (!LexString(c, tokens, error)) {
                    *error_line = line_;
                    return false;
                }
                continue;
            }
            if (std::isdigit(static_cast<unsigned char>(c))) {
                LexNumber(tokens, error);
                if (!error->empty()) {
                    *error_line = line_;
                    return false;
                }
                continue;
            }
            if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
                std::string name;
                while (pos_ < src_.size() &&
                       (std::isalnum(static_cast<unsigned char>(
                            src_[pos_])) ||
                        src_[pos_] == '_')) {
                    name.push_back(src_[pos_++]);
                }
                auto it = LuaKeywords().find(name);
                LuaToken token;
                token.line = line_;
                if (it != LuaKeywords().end()) {
                    token.kind = it->second;
                } else {
                    token.kind = T::kName;
                    token.text = std::move(name);
                }
                tokens->push_back(std::move(token));
                continue;
            }
            if (!LexOperator(tokens, error)) {
                *error_line = line_;
                return false;
            }
        }
        tokens->push_back({T::kEof, "", 0, line_});
        return true;
    }

  private:
    bool LexString(char quote, std::vector<LuaToken>* tokens,
                   std::string* error)
    {
        ++pos_;
        std::string decoded;
        while (pos_ < src_.size() && src_[pos_] != quote) {
            char c = src_[pos_++];
            if (c == '\n') {
                *error = "unterminated string";
                return false;
            }
            if (c != '\\') {
                decoded.push_back(c);
                continue;
            }
            if (pos_ >= src_.size()) {
                *error = "unterminated escape";
                return false;
            }
            const char escape = src_[pos_++];
            switch (escape) {
              case 'n': decoded.push_back('\n'); break;
              case 't': decoded.push_back('\t'); break;
              case 'r': decoded.push_back('\r'); break;
              case '\\': decoded.push_back('\\'); break;
              case '\'': decoded.push_back('\''); break;
              case '"': decoded.push_back('"'); break;
              case '0': decoded.push_back('\0'); break;
              default: decoded.push_back(escape);
            }
        }
        if (pos_ >= src_.size()) {
            *error = "unterminated string";
            return false;
        }
        ++pos_;  // Closing quote.
        tokens->push_back({T::kString, std::move(decoded), 0, line_});
        return true;
    }

    void LexNumber(std::vector<LuaToken>* tokens, std::string* error)
    {
        int64_t value = 0;
        if (src_[pos_] == '0' && pos_ + 1 < src_.size() &&
            (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
            pos_ += 2;
            while (pos_ < src_.size() &&
                   std::isxdigit(
                       static_cast<unsigned char>(src_[pos_]))) {
                const char c = src_[pos_++];
                int digit = (c >= '0' && c <= '9')
                                ? c - '0'
                                : std::tolower(c) - 'a' + 10;
                value = value * 16 + digit;
            }
        } else {
            while (pos_ < src_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(src_[pos_]))) {
                value = value * 10 + (src_[pos_++] - '0');
            }
            if (pos_ < src_.size() && src_[pos_] == '.') {
                *error = "MiniLua is an integer-number build (the paper "
                         "configures Lua for integers, §5.2); "
                         "floating-point literals are not supported";
                return;
            }
        }
        tokens->push_back({T::kNumber, "", value, line_});
    }

    bool LexOperator(std::vector<LuaToken>* tokens, std::string* error)
    {
        const char c = src_[pos_++];
        auto push = [this, tokens](T kind) {
            tokens->push_back({kind, "", 0, line_});
        };
        auto two = [this, push](char next, T yes, T no) {
            if (pos_ < src_.size() && src_[pos_] == next) {
                ++pos_;
                push(yes);
            } else {
                push(no);
            }
        };
        switch (c) {
          case '+': push(T::kPlus); return true;
          case '-': push(T::kMinus); return true;
          case '*': push(T::kStar); return true;
          case '/': push(T::kSlash); return true;
          case '%': push(T::kPercent); return true;
          case '#': push(T::kHash); return true;
          case '(': push(T::kLParen); return true;
          case ')': push(T::kRParen); return true;
          case '{': push(T::kLBrace); return true;
          case '}': push(T::kRBrace); return true;
          case '[': push(T::kLBracket); return true;
          case ']': push(T::kRBracket); return true;
          case ';': push(T::kSemi); return true;
          case ':': push(T::kColon); return true;
          case ',': push(T::kComma); return true;
          case '=': two('=', T::kEq, T::kAssign); return true;
          case '<': two('=', T::kLe, T::kLt); return true;
          case '>': two('=', T::kGe, T::kGt); return true;
          case '~':
            if (pos_ < src_.size() && src_[pos_] == '=') {
                ++pos_;
                push(T::kNe);
                return true;
            }
            *error = "unexpected '~'";
            return false;
          case '.':
            if (pos_ + 1 < src_.size() && src_[pos_] == '.' &&
                src_[pos_ + 1] == '.') {
                pos_ += 2;
                push(T::kEllipsis);
                return true;
            }
            if (pos_ < src_.size() && src_[pos_] == '.') {
                ++pos_;
                push(T::kConcat);
                return true;
            }
            push(T::kDot);
            return true;
          default:
            *error = std::string("unexpected character '") + c + "'";
            return false;
        }
    }

    const std::string& src_;
    size_t pos_ = 0;
    int line_ = 1;
};

class LuaParser
{
  public:
    explicit LuaParser(std::vector<LuaToken> tokens)
        : toks_(std::move(tokens))
    {
    }

    LuaParseResult Run()
    {
        auto chunk = std::make_shared<LuaChunk>();
        chunk->body = Block({T::kEof});
        LuaParseResult result;
        result.ok = ok_;
        result.error = error_;
        result.error_line = error_line_;
        if (ok_) {
            // Assign node ids and collect coverable lines.
            std::set<int> lines;
            uint32_t next_id = 1;
            AssignIds(chunk->body.get(), &next_id, &lines);
            chunk->num_nodes = next_id;
            chunk->coverable_lines.assign(lines.begin(), lines.end());
            result.chunk = std::move(chunk);
        }
        return result;
    }

  private:
    void AssignIds(LuaAst* node, uint32_t* next_id, std::set<int>* lines)
    {
        node->node_id = (*next_id)++;
        if (node->line > 0 && node->kind != LuaAstKind::kBlock) {
            lines->insert(node->line);
        }
        for (auto& kid : node->kids) {
            if (kid) {
                AssignIds(kid.get(), next_id, lines);
            }
        }
        for (auto& kid : node->extra) {
            if (kid) {
                AssignIds(kid.get(), next_id, lines);
            }
        }
    }

    const LuaToken& Cur() const { return toks_[pos_]; }
    bool At(T kind) const { return Cur().kind == kind; }

    const LuaToken& Advance()
    {
        const LuaToken& token = toks_[pos_];
        if (pos_ + 1 < toks_.size()) {
            ++pos_;
        }
        return token;
    }

    bool Accept(T kind)
    {
        if (At(kind)) {
            Advance();
            return true;
        }
        return false;
    }

    void Expect(T kind, const char* what)
    {
        if (!Accept(kind)) {
            Error(std::string("expected ") + what);
        }
    }

    void Error(const std::string& message)
    {
        if (ok_) {
            ok_ = false;
            error_ = message;
            error_line_ = Cur().line;
        }
        pos_ = toks_.size() - 1;
    }

    LuaAstPtr Node(LuaAstKind kind)
    {
        return std::make_unique<LuaAst>(kind, Cur().line);
    }

    bool BlockEnds(const std::vector<T>& terminators) const
    {
        for (T t : terminators) {
            if (Cur().kind == t) {
                return true;
            }
        }
        return false;
    }

    LuaAstPtr Block(const std::vector<T>& terminators)
    {
        auto block = Node(LuaAstKind::kBlock);
        while (ok_ && !BlockEnds(terminators)) {
            if (Accept(T::kSemi)) {
                continue;
            }
            block->kids.push_back(Statement());
            // return/break must be the last statement of a block.
            if (!block->kids.empty() &&
                (block->kids.back()->kind == LuaAstKind::kReturn ||
                 block->kids.back()->kind == LuaAstKind::kBreak)) {
                Accept(T::kSemi);
                break;
            }
        }
        return block;
    }

    LuaAstPtr Statement();
    LuaAstPtr IfStatement();
    LuaAstPtr ForStatement();
    LuaAstPtr FunctionBody();

    std::vector<LuaAstPtr> ExprList();
    LuaAstPtr Expr() { return OrExpr(); }
    LuaAstPtr OrExpr();
    LuaAstPtr AndExpr();
    LuaAstPtr CmpExpr();
    LuaAstPtr ConcatExpr();
    LuaAstPtr AddExpr();
    LuaAstPtr MulExpr();
    LuaAstPtr UnaryExpr();
    LuaAstPtr PostfixExpr();
    LuaAstPtr PrimaryExpr();
    LuaAstPtr TableConstructor();

    std::vector<LuaToken> toks_;
    size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
    int error_line_ = 0;
};

LuaAstPtr
LuaParser::Statement()
{
    switch (Cur().kind) {
      case T::kIf:
        return IfStatement();
      case T::kWhile: {
        auto node = Node(LuaAstKind::kWhile);
        Advance();
        node->kids.push_back(Expr());
        Expect(T::kDo, "'do'");
        node->kids.push_back(Block({T::kEnd}));
        Expect(T::kEnd, "'end'");
        return node;
      }
      case T::kRepeat: {
        auto node = Node(LuaAstKind::kRepeat);
        Advance();
        node->kids.push_back(Block({T::kUntil}));
        Expect(T::kUntil, "'until'");
        node->kids.push_back(Expr());
        return node;
      }
      case T::kFor:
        return ForStatement();
      case T::kDo: {
        Advance();
        auto block = Block({T::kEnd});
        Expect(T::kEnd, "'end'");
        return block;
      }
      case T::kReturn: {
        auto node = Node(LuaAstKind::kReturn);
        Advance();
        if (!BlockEnds({T::kEnd, T::kElse, T::kElseif, T::kUntil,
                        T::kEof, T::kSemi})) {
            node->kids = ExprList();
        }
        return node;
      }
      case T::kBreak: {
        auto node = Node(LuaAstKind::kBreak);
        Advance();
        return node;
      }
      case T::kLocal: {
        Advance();
        if (Accept(T::kFunction)) {
            auto node = Node(LuaAstKind::kLocalFunction);
            if (!At(T::kName)) {
                Error("expected function name");
                return node;
            }
            node->name = Advance().text;
            node->kids.push_back(FunctionBody());
            return node;
        }
        auto node = Node(LuaAstKind::kLocal);
        do {
            if (!At(T::kName)) {
                Error("expected local name");
                return node;
            }
            node->strings.push_back(Advance().text);
        } while (Accept(T::kComma));
        if (Accept(T::kAssign)) {
            node->kids = ExprList();
        }
        return node;
      }
      case T::kFunction: {
        auto node = Node(LuaAstKind::kFunctionStat);
        Advance();
        // funcname: Name {'.' Name} [':' Name]
        if (!At(T::kName)) {
            Error("expected function name");
            return node;
        }
        LuaAstPtr target = Node(LuaAstKind::kName);
        target->name = Advance().text;
        bool is_method = false;
        while (At(T::kDot) || At(T::kColon)) {
            is_method = At(T::kColon);
            Advance();
            if (!At(T::kName)) {
                Error("expected name");
                return node;
            }
            auto index = Node(LuaAstKind::kIndex);
            auto key = Node(LuaAstKind::kString);
            key->str_value = Advance().text;
            index->kids.push_back(std::move(target));
            index->kids.push_back(std::move(key));
            target = std::move(index);
            if (is_method) {
                break;
            }
        }
        node->extra.push_back(std::move(target));
        LuaAstPtr function = FunctionBody();
        if (is_method) {
            function->strings.insert(function->strings.begin(), "self");
        }
        node->kids.push_back(std::move(function));
        return node;
      }
      default: {
        // exprstat or assignment.
        LuaAstPtr first = PostfixExpr();
        if (At(T::kAssign) || At(T::kComma)) {
            auto node = std::make_unique<LuaAst>(LuaAstKind::kAssign,
                                                 first->line);
            node->extra.push_back(std::move(first));
            while (Accept(T::kComma)) {
                node->extra.push_back(PostfixExpr());
            }
            Expect(T::kAssign, "'='");
            node->kids = ExprList();
            return node;
        }
        if (first->kind != LuaAstKind::kCall &&
            first->kind != LuaAstKind::kMethodCall) {
            Error("syntax error: expression is not a statement");
        }
        auto node = std::make_unique<LuaAst>(LuaAstKind::kExprStat,
                                             first->line);
        node->kids.push_back(std::move(first));
        return node;
      }
    }
}

LuaAstPtr
LuaParser::IfStatement()
{
    auto node = Node(LuaAstKind::kIf);
    Advance();  // if / elseif
    int pairs = 0;
    for (;;) {
        node->kids.push_back(Expr());
        Expect(T::kThen, "'then'");
        node->kids.push_back(
            Block({T::kEnd, T::kElse, T::kElseif}));
        ++pairs;
        if (Accept(T::kElseif)) {
            continue;
        }
        break;
    }
    node->int_value = pairs;
    if (Accept(T::kElse)) {
        node->kids.push_back(Block({T::kEnd}));
    }
    Expect(T::kEnd, "'end'");
    return node;
}

LuaAstPtr
LuaParser::ForStatement()
{
    Advance();  // for
    if (!At(T::kName)) {
        Error("expected loop variable");
        return Node(LuaAstKind::kBlock);
    }
    const std::string first_name = Advance().text;
    if (Accept(T::kAssign)) {
        auto node = Node(LuaAstKind::kForNum);
        node->name = first_name;
        node->kids.push_back(Expr());
        Expect(T::kComma, "','");
        node->kids.push_back(Expr());
        if (Accept(T::kComma)) {
            node->kids.push_back(Expr());
        }
        Expect(T::kDo, "'do'");
        node->kids.push_back(Block({T::kEnd}));
        Expect(T::kEnd, "'end'");
        return node;
    }
    auto node = Node(LuaAstKind::kForIn);
    node->strings.push_back(first_name);
    while (Accept(T::kComma)) {
        if (!At(T::kName)) {
            Error("expected name");
            return node;
        }
        node->strings.push_back(Advance().text);
    }
    Expect(T::kIn, "'in'");
    node->kids.push_back(Expr());
    Expect(T::kDo, "'do'");
    node->kids.push_back(Block({T::kEnd}));
    Expect(T::kEnd, "'end'");
    return node;
}

LuaAstPtr
LuaParser::FunctionBody()
{
    auto node = Node(LuaAstKind::kFunction);
    Expect(T::kLParen, "'('");
    while (ok_ && !Accept(T::kRParen)) {
        if (Accept(T::kEllipsis)) {
            Expect(T::kRParen, "')' after '...'");
            break;
        }
        if (!At(T::kName)) {
            Error("expected parameter name");
            break;
        }
        node->strings.push_back(Advance().text);
        if (!Accept(T::kComma) && !At(T::kRParen)) {
            Error("expected ',' or ')'");
            break;
        }
    }
    node->kids.push_back(Block({T::kEnd}));
    Expect(T::kEnd, "'end'");
    return node;
}

std::vector<LuaAstPtr>
LuaParser::ExprList()
{
    std::vector<LuaAstPtr> exprs;
    exprs.push_back(Expr());
    while (Accept(T::kComma)) {
        exprs.push_back(Expr());
    }
    return exprs;
}

namespace {

template <typename Sub, typename Match>
LuaAstPtr
LeftAssoc(Sub&& sub, Match&& match)
{
    LuaAstPtr left = sub();
    for (;;) {
        const char* op = match();
        if (op == nullptr) {
            return left;
        }
        auto node = std::make_unique<LuaAst>(LuaAstKind::kBinOp,
                                             left->line);
        node->name = op;
        node->kids.push_back(std::move(left));
        node->kids.push_back(sub());
        left = std::move(node);
    }
}

}  // namespace

LuaAstPtr
LuaParser::OrExpr()
{
    return LeftAssoc([this] { return AndExpr(); },
                     [this]() -> const char* {
                         return Accept(T::kOr) ? "or" : nullptr;
                     });
}

LuaAstPtr
LuaParser::AndExpr()
{
    return LeftAssoc([this] { return CmpExpr(); },
                     [this]() -> const char* {
                         return Accept(T::kAnd) ? "and" : nullptr;
                     });
}

LuaAstPtr
LuaParser::CmpExpr()
{
    return LeftAssoc([this] { return ConcatExpr(); },
                     [this]() -> const char* {
                         if (Accept(T::kEq)) return "==";
                         if (Accept(T::kNe)) return "~=";
                         if (Accept(T::kLt)) return "<";
                         if (Accept(T::kLe)) return "<=";
                         if (Accept(T::kGt)) return ">";
                         if (Accept(T::kGe)) return ">=";
                         return nullptr;
                     });
}

LuaAstPtr
LuaParser::ConcatExpr()
{
    // Right associative.
    LuaAstPtr left = AddExpr();
    if (!Accept(T::kConcat)) {
        return left;
    }
    auto node =
        std::make_unique<LuaAst>(LuaAstKind::kBinOp, left->line);
    node->name = "..";
    node->kids.push_back(std::move(left));
    node->kids.push_back(ConcatExpr());
    return node;
}

LuaAstPtr
LuaParser::AddExpr()
{
    return LeftAssoc([this] { return MulExpr(); },
                     [this]() -> const char* {
                         if (Accept(T::kPlus)) return "+";
                         if (Accept(T::kMinus)) return "-";
                         return nullptr;
                     });
}

LuaAstPtr
LuaParser::MulExpr()
{
    return LeftAssoc([this] { return UnaryExpr(); },
                     [this]() -> const char* {
                         if (Accept(T::kStar)) return "*";
                         if (Accept(T::kSlash)) return "/";
                         if (Accept(T::kPercent)) return "%";
                         return nullptr;
                     });
}

LuaAstPtr
LuaParser::UnaryExpr()
{
    const char* op = nullptr;
    if (Accept(T::kNot)) {
        op = "not";
    } else if (Accept(T::kMinus)) {
        op = "-";
    } else if (Accept(T::kHash)) {
        op = "#";
    }
    if (op != nullptr) {
        auto node = Node(LuaAstKind::kUnOp);
        node->name = op;
        node->kids.push_back(UnaryExpr());
        return node;
    }
    return PostfixExpr();
}

LuaAstPtr
LuaParser::PostfixExpr()
{
    LuaAstPtr value = PrimaryExpr();
    for (;;) {
        if (Accept(T::kDot)) {
            if (!At(T::kName)) {
                Error("expected field name");
                return value;
            }
            auto node = std::make_unique<LuaAst>(LuaAstKind::kIndex,
                                                 value->line);
            auto key = Node(LuaAstKind::kString);
            key->str_value = Advance().text;
            node->kids.push_back(std::move(value));
            node->kids.push_back(std::move(key));
            value = std::move(node);
        } else if (Accept(T::kLBracket)) {
            auto node = std::make_unique<LuaAst>(LuaAstKind::kIndex,
                                                 value->line);
            node->kids.push_back(std::move(value));
            node->kids.push_back(Expr());
            Expect(T::kRBracket, "']'");
            value = std::move(node);
        } else if (At(T::kLParen) || At(T::kString) || At(T::kLBrace)) {
            auto node = std::make_unique<LuaAst>(LuaAstKind::kCall,
                                                 value->line);
            node->kids.push_back(std::move(value));
            if (Accept(T::kLParen)) {
                while (ok_ && !Accept(T::kRParen)) {
                    node->kids.push_back(Expr());
                    if (!Accept(T::kComma) && !At(T::kRParen)) {
                        Error("expected ',' or ')'");
                        break;
                    }
                }
            } else if (At(T::kString)) {
                auto arg = Node(LuaAstKind::kString);
                arg->str_value = Advance().text;
                node->kids.push_back(std::move(arg));
            } else {
                node->kids.push_back(TableConstructor());
            }
            value = std::move(node);
        } else if (Accept(T::kColon)) {
            if (!At(T::kName)) {
                Error("expected method name");
                return value;
            }
            auto node = std::make_unique<LuaAst>(
                LuaAstKind::kMethodCall, value->line);
            node->name = Advance().text;
            node->kids.push_back(std::move(value));
            if (Accept(T::kLParen)) {
                while (ok_ && !Accept(T::kRParen)) {
                    node->kids.push_back(Expr());
                    if (!Accept(T::kComma) && !At(T::kRParen)) {
                        Error("expected ',' or ')'");
                        break;
                    }
                }
            } else if (At(T::kString)) {
                auto arg = Node(LuaAstKind::kString);
                arg->str_value = Advance().text;
                node->kids.push_back(std::move(arg));
            } else {
                Error("expected method arguments");
            }
            value = std::move(node);
        } else {
            return value;
        }
    }
}

LuaAstPtr
LuaParser::PrimaryExpr()
{
    switch (Cur().kind) {
      case T::kNil: Advance(); return Node(LuaAstKind::kNil);
      case T::kTrue: Advance(); return Node(LuaAstKind::kTrue);
      case T::kFalse: Advance(); return Node(LuaAstKind::kFalse);
      case T::kNumber: {
        auto node = Node(LuaAstKind::kNumber);
        node->int_value = Advance().number;
        return node;
      }
      case T::kString: {
        auto node = Node(LuaAstKind::kString);
        node->str_value = Advance().text;
        return node;
      }
      case T::kEllipsis:
        Advance();
        return Node(LuaAstKind::kVararg);
      case T::kName: {
        auto node = Node(LuaAstKind::kName);
        node->name = Advance().text;
        return node;
      }
      case T::kLParen: {
        Advance();
        LuaAstPtr inner = Expr();
        Expect(T::kRParen, "')'");
        return inner;
      }
      case T::kLBrace:
        return TableConstructor();
      case T::kFunction:
        Advance();
        return FunctionBody();
      default:
        Error(std::string("unexpected token in expression"));
        return Node(LuaAstKind::kNil);
    }
}

LuaAstPtr
LuaParser::TableConstructor()
{
    auto node = Node(LuaAstKind::kTable);
    Expect(T::kLBrace, "'{'");
    while (ok_ && !Accept(T::kRBrace)) {
        if (At(T::kName) && toks_[pos_ + 1].kind == T::kAssign) {
            auto key = Node(LuaAstKind::kString);
            key->str_value = Advance().text;
            Advance();  // '='
            node->kids.push_back(std::move(key));
            node->kids.push_back(Expr());
        } else if (Accept(T::kLBracket)) {
            node->kids.push_back(Expr());
            Expect(T::kRBracket, "']'");
            Expect(T::kAssign, "'='");
            node->kids.push_back(Expr());
        } else {
            node->kids.push_back(nullptr);  // Array-style entry.
            node->kids.push_back(Expr());
        }
        if (!Accept(T::kComma) && !Accept(T::kSemi) && !At(T::kRBrace)) {
            Error("expected ',' or '}'");
            break;
        }
    }
    return node;
}

}  // namespace

LuaParseResult
LuaParse(const std::string& source)
{
    LuaLexer lexer(source);
    std::vector<LuaToken> tokens;
    std::string error;
    int error_line = 0;
    if (!lexer.Run(&tokens, &error, &error_line)) {
        LuaParseResult result;
        result.ok = false;
        result.error = error;
        result.error_line = error_line;
        return result;
    }
    return LuaParser(std::move(tokens)).Run();
}

}  // namespace chef::minilua
