#ifndef CHEF_MINILUA_LUA_AST_H_
#define CHEF_MINILUA_LUA_AST_H_

/// \file
/// MiniLua front end: tokens and AST.
///
/// MiniLua is a Lua-5.2-shaped guest language. Numbers are integers (the
/// paper configures the Lua interpreter for integer numbers because S2E's
/// solver lacks symbolic floats, §5.2). The interpreter is a tree walker;
/// every AST node carries a unique id that serves as the high-level PC
/// reported through log_pc, with the node kind as the opcode.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace chef::minilua {

enum class LuaAstKind : uint8_t {
    // Expressions.
    kNil,
    kTrue,
    kFalse,
    kNumber,     ///< int_value.
    kString,     ///< str_value.
    kVararg,     ///< `...` (supported only as "no value" placeholder).
    kName,       ///< name.
    kIndex,      ///< kids = {object, key-expr}.
    kCall,       ///< kids = {callee, args...}.
    kMethodCall, ///< name = method; kids = {object, args...}.
    kFunction,   ///< strings = params; kids = {body}.
    kBinOp,      ///< name = operator spelling; kids = {lhs, rhs}.
    kUnOp,       ///< name = operator spelling; kids = {operand}.
    kTable,      ///< kids alternate key, value; null key = array entry.
    // Statements.
    kBlock,      ///< kids = statements.
    kLocal,      ///< strings = names; kids = value exprs.
    kAssign,     ///< extra = targets; kids = value exprs.
    kExprStat,   ///< kids = {call expr}.
    kIf,         ///< kids = {cond, then-block, [cond, block]..., else?};
                 ///< int_value = number of (cond, block) pairs.
    kWhile,      ///< kids = {cond, body}.
    kRepeat,     ///< kids = {body, cond}.
    kForNum,     ///< name = var; kids = {start, stop, [step], body}.
    kForIn,      ///< strings = vars; kids = {iter-expr, body}.
    kFunctionStat,   ///< extra = {target}; kids = {function literal}.
    kLocalFunction,  ///< name; kids = {function literal}.
    kReturn,     ///< kids = value exprs.
    kBreak,
};

const char* LuaAstKindName(LuaAstKind kind);

struct LuaAst;
using LuaAstPtr = std::unique_ptr<LuaAst>;

struct LuaAst {
    LuaAstKind kind;
    int line = 0;
    /// Unique node id (per compiled chunk); the high-level PC.
    uint32_t node_id = 0;
    std::string name;
    std::string str_value;
    int64_t int_value = 0;
    std::vector<LuaAstPtr> kids;
    std::vector<LuaAstPtr> extra;
    std::vector<std::string> strings;

    explicit LuaAst(LuaAstKind k, int source_line = 0)
        : kind(k), line(source_line)
    {
    }
};

/// A parsed chunk plus front-end metadata.
struct LuaChunk {
    LuaAstPtr body;             ///< kBlock.
    uint32_t num_nodes = 0;
    std::vector<int> coverable_lines;
};

struct LuaParseResult {
    bool ok = true;
    std::string error;
    int error_line = 0;
    std::shared_ptr<LuaChunk> chunk;
};

/// Parses MiniLua source.
LuaParseResult LuaParse(const std::string& source);

}  // namespace chef::minilua

#endif  // CHEF_MINILUA_LUA_AST_H_
