#include "minilua/lua_interp.h"

#include "support/diagnostics.h"

namespace chef::minilua {

using namespace chef::lowlevel;  // NOLINT
using interp::ConcreteStr;
using interp::ConcreteView;

namespace {

enum LuaBuiltin : int {
    kBPrint = 1,
    kBType,
    kBTostring,
    kBTonumber,
    kBPairs,
    kBIpairs,
    kBError,
    kBPcall,
    kBAssert,
    // string library.
    kBStrLen = 20,
    kBStrSub,
    kBStrByte,
    kBStrChar,
    kBStrFind,
    kBStrRep,
    kBStrLower,
    kBStrUpper,
    // table library.
    kBTblInsert = 40,
    kBTblRemove,
    kBTblConcat,
};

}  // namespace

const char*
LuaTypeName(LuaValue::Type type)
{
    switch (type) {
      case LuaValue::Type::kNil: return "nil";
      case LuaValue::Type::kBool: return "boolean";
      case LuaValue::Type::kInt: return "number";
      case LuaValue::Type::kStr: return "string";
      case LuaValue::Type::kTable: return "table";
      case LuaValue::Type::kFunction:
      case LuaValue::Type::kBuiltin: return "function";
      case LuaValue::Type::kIterator: return "iterator";
    }
    return "?";
}

LuaValue
LuaValue::Bool(SymValue value)
{
    LuaValue v;
    v.type = Type::kBool;
    v.num = value;
    return v;
}

LuaValue
LuaValue::BoolC(bool value)
{
    return Bool(SymValue(value ? 1 : 0, 1));
}

LuaValue
LuaValue::Int(SymValue value)
{
    LuaValue v;
    v.type = Type::kInt;
    v.num = value.width() == 64 ? value : SvSExt(value, 64);
    return v;
}

LuaValue
LuaValue::IntC(int64_t value)
{
    return Int(SymValue(static_cast<uint64_t>(value), 64));
}

LuaValue
LuaValue::Str(SymStr value)
{
    LuaValue v;
    v.type = Type::kStr;
    v.str = std::make_shared<SymStr>(std::move(value));
    return v;
}

LuaValue
LuaValue::StrC(const std::string& value)
{
    return Str(ConcreteStr(value));
}

LuaValue
LuaValue::Table(std::shared_ptr<LuaTable> table)
{
    LuaValue v;
    v.type = Type::kTable;
    v.table = std::move(table);
    return v;
}

LuaValue
LuaValue::Builtin(int id)
{
    LuaValue v;
    v.type = Type::kBuiltin;
    v.builtin_id = id;
    return v;
}

int64_t
LuaTable::Border() const
{
    return static_cast<int64_t>(array.size());
}

LuaValue
LuaTable::Get(LuaInterp& interp, const LuaValue& key)
{
    // Integer keys in the dense range live in the array part.
    if (key.type == LuaValue::Type::kInt) {
        const SymValue in_array = SvBoolAnd(
            SvSge(key.num, SymValue(1, 64)),
            SvSle(key.num, SymValue(array.size(), 64)));
        if (!array.empty() &&
            interp.rt()->Branch(in_array, CHEF_LLPC)) {
            const uint64_t index = interp::ResolveIndex(
                interp.rt(), SvSub(key.num, SymValue(1, 64)),
                array.size());
            return array[index];
        }
    }
    const SymValue hash = interp.HashKey(key);
    const uint64_t bucket =
        interp::ResolveBucket(interp.rt(), hash, buckets.size());
    for (uint32_t index : buckets[bucket]) {
        const Entry& entry = entries[index];
        if (!entry.alive) {
            continue;
        }
        if (interp.rt()->Branch(interp.ValueEq(entry.key, key),
                                CHEF_LLPC)) {
            return entry.value;
        }
        if (!interp.rt()->running()) {
            return LuaValue::Nil();
        }
    }
    return LuaValue::Nil();
}

void
LuaTable::Set(LuaInterp& interp, const LuaValue& key, LuaValue value)
{
    if (key.type == LuaValue::Type::kInt) {
        const SymValue in_array = SvBoolAnd(
            SvSge(key.num, SymValue(1, 64)),
            SvSle(key.num, SymValue(array.size(), 64)));
        if (!array.empty() &&
            interp.rt()->Branch(in_array, CHEF_LLPC)) {
            const uint64_t index = interp::ResolveIndex(
                interp.rt(), SvSub(key.num, SymValue(1, 64)),
                array.size());
            array[index] = std::move(value);
            return;
        }
        // Appending to the border extends the array part.
        if (interp.rt()->Branch(
                SvEq(key.num, SymValue(array.size() + 1, 64)),
                CHEF_LLPC)) {
            array.push_back(std::move(value));
            return;
        }
    }
    const SymValue hash = interp.HashKey(key);
    const uint64_t bucket =
        interp::ResolveBucket(interp.rt(), hash, buckets.size());
    for (uint32_t index : buckets[bucket]) {
        Entry& entry = entries[index];
        if (!entry.alive) {
            continue;
        }
        if (interp.rt()->Branch(interp.ValueEq(entry.key, key),
                                CHEF_LLPC)) {
            if (value.IsNil()) {
                entry.alive = false;
                --live_count;
            } else {
                entry.value = std::move(value);
            }
            return;
        }
        if (!interp.rt()->running()) {
            return;
        }
    }
    if (value.IsNil()) {
        return;  // Deleting an absent key is a no-op.
    }
    buckets[bucket].push_back(static_cast<uint32_t>(entries.size()));
    entries.push_back({key, std::move(value), true});
    ++live_count;
}

LuaInterp::LuaInterp(lowlevel::LowLevelRuntime* rt,
                     std::shared_ptr<LuaChunk> chunk, Options options)
    : rt_(rt),
      chunk_(std::move(chunk)),
      options_(options),
      str_ops_(rt, options.build),
      interns_(&str_ops_)
{
    globals_ = std::make_shared<LuaEnv>();
    auto& g = globals_->vars;
    g["print"] = LuaValue::Builtin(kBPrint);
    g["type"] = LuaValue::Builtin(kBType);
    g["tostring"] = LuaValue::Builtin(kBTostring);
    g["tonumber"] = LuaValue::Builtin(kBTonumber);
    g["pairs"] = LuaValue::Builtin(kBPairs);
    g["ipairs"] = LuaValue::Builtin(kBIpairs);
    g["error"] = LuaValue::Builtin(kBError);
    g["pcall"] = LuaValue::Builtin(kBPcall);
    g["assert"] = LuaValue::Builtin(kBAssert);

    auto string_lib = std::make_shared<LuaTable>();
    auto add_lib_fn = [this](std::shared_ptr<LuaTable>& lib,
                             const char* name, int id) {
        lib->Set(*this, LuaValue::StrC(name), LuaValue::Builtin(id));
    };
    add_lib_fn(string_lib, "len", kBStrLen);
    add_lib_fn(string_lib, "sub", kBStrSub);
    add_lib_fn(string_lib, "byte", kBStrByte);
    add_lib_fn(string_lib, "char", kBStrChar);
    add_lib_fn(string_lib, "find", kBStrFind);
    add_lib_fn(string_lib, "rep", kBStrRep);
    add_lib_fn(string_lib, "lower", kBStrLower);
    add_lib_fn(string_lib, "upper", kBStrUpper);
    g["string"] = LuaValue::Table(string_lib);

    auto table_lib = std::make_shared<LuaTable>();
    add_lib_fn(table_lib, "insert", kBTblInsert);
    add_lib_fn(table_lib, "remove", kBTblRemove);
    add_lib_fn(table_lib, "concat", kBTblConcat);
    g["table"] = LuaValue::Table(table_lib);
}

void
LuaInterp::LogNode(const LuaAst& node)
{
    rt_->LogPc(node.node_id, static_cast<uint32_t>(node.kind));
    if (options_.coverage && node.line > 0) {
        covered_lines_.insert(node.line);
    }
}

void
LuaInterp::Error(const std::string& message)
{
    if (!error_raised_) {
        error_raised_ = true;
        error_message_ = message;
    }
}

SymValue
LuaInterp::Truthy(const LuaValue& value)
{
    switch (value.type) {
      case LuaValue::Type::kNil:
        return SymValue(0, 1);
      case LuaValue::Type::kBool:
        return SvNe(SvZExt(value.num, 64), SymValue(0, 64));
      default:
        return SymValue(1, 1);  // Numbers (even 0) are truthy in Lua.
    }
}

bool
LuaInterp::DecideTruthy(const LuaValue& value, uint64_t llpc)
{
    return rt_->Branch(Truthy(value), llpc);
}

SymValue
LuaInterp::ValueEq(const LuaValue& a, const LuaValue& b)
{
    if (a.type != b.type) {
        // Lua equality never coerces across types.
        return SymValue(0, 1);
    }
    switch (a.type) {
      case LuaValue::Type::kNil:
        return SymValue(1, 1);
      case LuaValue::Type::kBool:
      case LuaValue::Type::kInt:
        return SvEq(SvZExt(a.num, 64), SvZExt(b.num, 64));
      case LuaValue::Type::kStr:
        return str_ops_.Eq(*a.str, *b.str);
      case LuaValue::Type::kTable:
        return SymValue(a.table.get() == b.table.get() ? 1 : 0, 1);
      case LuaValue::Type::kFunction:
        return SymValue(a.function.get() == b.function.get() ? 1 : 0, 1);
      case LuaValue::Type::kBuiltin:
        return SymValue(a.builtin_id == b.builtin_id ? 1 : 0, 1);
      default:
        return SymValue(0, 1);
    }
}

SymValue
LuaInterp::HashKey(const LuaValue& key)
{
    switch (key.type) {
      case LuaValue::Type::kInt:
        if (options_.build.neutralize_hashes) {
            return SymValue(0, 64);
        }
        return key.num;
      case LuaValue::Type::kStr:
        return str_ops_.Hash(*key.str);
      case LuaValue::Type::kBool:
        return SvZExt(key.num, 64);
      case LuaValue::Type::kNil:
        Error("table index is nil");
        return SymValue(0, 64);
      default:
        return SymValue(
            reinterpret_cast<uintptr_t>(key.table.get()) >> 4, 64);
    }
}

LuaValue
LuaInterp::NewString(SymStr bytes)
{
    // Lua interns every string on creation (§5.2); the optimized build
    // removes the mechanism.
    if (!options_.build.avoid_symbolic_pointers && rt_->running()) {
        interns_.Intern(bytes);
    }
    return LuaValue::Str(std::move(bytes));
}

SymStr
LuaInterp::ToStringValue(const LuaValue& value)
{
    switch (value.type) {
      case LuaValue::Type::kNil:
        return ConcreteStr("nil");
      case LuaValue::Type::kBool:
        return ConcreteStr(value.num.concrete() ? "true" : "false");
      case LuaValue::Type::kInt:
        return interp::FormatInt(rt_, value.num);
      case LuaValue::Type::kStr:
        return *value.str;
      case LuaValue::Type::kTable:
        return ConcreteStr("table: 0x0");
      default:
        return ConcreteStr("function: 0x0");
    }
}

SymValue
LuaInterp::ToNumber(const LuaValue& value, bool* ok)
{
    *ok = true;
    if (value.type == LuaValue::Type::kInt) {
        return value.num;
    }
    if (value.type == LuaValue::Type::kStr) {
        SymValue parsed;
        if (interp::ParseInt(str_ops_, *value.str, 0,
                             static_cast<int>(value.str->size()),
                             &parsed)) {
            return parsed;
        }
    }
    *ok = false;
    return SymValue(0, 64);
}

// ---------------------------------------------------------------------------
// Statements.
// ---------------------------------------------------------------------------

LuaInterp::Sig
LuaInterp::ExecBlock(const LuaAst& block, const LuaEnvPtr& env)
{
    for (const LuaAstPtr& stat : block.kids) {
        if (!rt_->running() || error_raised_) {
            return Sig::kError;
        }
        const Sig signal = ExecStat(*stat, env);
        if (signal != Sig::kNone) {
            return signal;
        }
    }
    return Sig::kNone;
}

LuaInterp::Sig
LuaInterp::ExecStat(const LuaAst& stat, const LuaEnvPtr& env)
{
    LogNode(stat);
    if (!rt_->running()) {
        return Sig::kError;
    }
    switch (stat.kind) {
      case LuaAstKind::kBlock: {
        auto scope = std::make_shared<LuaEnv>();
        scope->parent = env;
        return ExecBlock(stat, scope);
      }
      case LuaAstKind::kLocal: {
        std::vector<LuaValue> values = EvalExprList(stat.kids, env);
        for (size_t i = 0; i < stat.strings.size(); ++i) {
            env->vars[stat.strings[i]] =
                i < values.size() ? values[i] : LuaValue::Nil();
        }
        return error_raised_ ? Sig::kError : Sig::kNone;
      }
      case LuaAstKind::kAssign: {
        std::vector<LuaValue> values = EvalExprList(stat.kids, env);
        if (error_raised_) {
            return Sig::kError;
        }
        for (size_t i = 0; i < stat.extra.size(); ++i) {
            AssignTo(*stat.extra[i], env,
                     i < values.size() ? values[i] : LuaValue::Nil());
            if (error_raised_) {
                return Sig::kError;
            }
        }
        return Sig::kNone;
      }
      case LuaAstKind::kExprStat:
        EvalExpr(*stat.kids[0], env);
        return error_raised_ ? Sig::kError : Sig::kNone;
      case LuaAstKind::kIf: {
        const int pairs = static_cast<int>(stat.int_value);
        for (int i = 0; i < pairs; ++i) {
            const LuaValue cond = EvalExpr(*stat.kids[2 * i], env);
            if (error_raised_) {
                return Sig::kError;
            }
            if (DecideTruthy(cond, CHEF_LLPC)) {
                auto scope = std::make_shared<LuaEnv>();
                scope->parent = env;
                return ExecBlock(*stat.kids[2 * i + 1], scope);
            }
        }
        if (stat.kids.size() > static_cast<size_t>(2 * pairs)) {
            auto scope = std::make_shared<LuaEnv>();
            scope->parent = env;
            return ExecBlock(*stat.kids[2 * pairs], scope);
        }
        return Sig::kNone;
      }
      case LuaAstKind::kWhile: {
        for (;;) {
            if (!rt_->running()) {
                return Sig::kError;
            }
            const LuaValue cond = EvalExpr(*stat.kids[0], env);
            if (error_raised_) {
                return Sig::kError;
            }
            if (!DecideTruthy(cond, CHEF_LLPC)) {
                return Sig::kNone;
            }
            auto scope = std::make_shared<LuaEnv>();
            scope->parent = env;
            const Sig signal = ExecBlock(*stat.kids[1], scope);
            if (signal == Sig::kBreak) {
                return Sig::kNone;
            }
            if (signal != Sig::kNone) {
                return signal;
            }
        }
      }
      case LuaAstKind::kRepeat: {
        for (;;) {
            if (!rt_->running()) {
                return Sig::kError;
            }
            auto scope = std::make_shared<LuaEnv>();
            scope->parent = env;
            const Sig signal = ExecBlock(*stat.kids[0], scope);
            if (signal == Sig::kBreak) {
                return Sig::kNone;
            }
            if (signal != Sig::kNone) {
                return signal;
            }
            // The until-condition sees the loop body's scope.
            const LuaValue cond = EvalExpr(*stat.kids[1], scope);
            if (error_raised_) {
                return Sig::kError;
            }
            if (DecideTruthy(cond, CHEF_LLPC)) {
                return Sig::kNone;
            }
        }
      }
      case LuaAstKind::kForNum: {
        const bool has_step = stat.kids.size() == 4;
        const LuaValue start = EvalExpr(*stat.kids[0], env);
        const LuaValue stop = EvalExpr(*stat.kids[1], env);
        LuaValue step = LuaValue::IntC(1);
        if (has_step) {
            step = EvalExpr(*stat.kids[2], env);
        }
        if (error_raised_) {
            return Sig::kError;
        }
        if (start.type != LuaValue::Type::kInt ||
            stop.type != LuaValue::Type::kInt ||
            step.type != LuaValue::Type::kInt) {
            Error("'for' initial value must be a number");
            return Sig::kError;
        }
        const int64_t step_value =
            static_cast<int64_t>(rt_->Concretize(step.num));
        if (step_value == 0) {
            Error("'for' step is zero");
            return Sig::kError;
        }
        SymValue position = start.num;
        const LuaAst& body = *stat.kids[has_step ? 3 : 2];
        for (;;) {
            if (!rt_->running()) {
                return Sig::kError;
            }
            const SymValue more =
                step_value > 0 ? SvSle(position, stop.num)
                               : SvSge(position, stop.num);
            if (!rt_->Branch(more, CHEF_LLPC)) {
                return Sig::kNone;
            }
            auto scope = std::make_shared<LuaEnv>();
            scope->parent = env;
            scope->vars[stat.name] = LuaValue::Int(position);
            const Sig signal = ExecBlock(body, scope);
            if (signal == Sig::kBreak) {
                return Sig::kNone;
            }
            if (signal != Sig::kNone) {
                return signal;
            }
            position = SvAdd(
                position, SymValue(static_cast<uint64_t>(step_value),
                                   64));
        }
      }
      case LuaAstKind::kForIn: {
        const LuaValue iterable = EvalExpr(*stat.kids[0], env);
        if (error_raised_) {
            return Sig::kError;
        }
        if (iterable.type != LuaValue::Type::kIterator) {
            Error("'for in' expects pairs() or ipairs()");
            return Sig::kError;
        }
        for (const auto& [key, value] : iterable.iterator->entries) {
            if (!rt_->running()) {
                return Sig::kError;
            }
            auto scope = std::make_shared<LuaEnv>();
            scope->parent = env;
            if (!stat.strings.empty()) {
                scope->vars[stat.strings[0]] = key;
            }
            if (stat.strings.size() > 1) {
                scope->vars[stat.strings[1]] = value;
            }
            const Sig signal = ExecBlock(*stat.kids[1], scope);
            if (signal == Sig::kBreak) {
                return Sig::kNone;
            }
            if (signal != Sig::kNone) {
                return signal;
            }
        }
        return Sig::kNone;
      }
      case LuaAstKind::kFunctionStat: {
        LuaValue function = EvalExpr(*stat.kids[0], env);
        AssignTo(*stat.extra[0], env, std::move(function));
        return error_raised_ ? Sig::kError : Sig::kNone;
      }
      case LuaAstKind::kLocalFunction: {
        // Bind the name first so the function can recurse.
        env->vars[stat.name] = LuaValue::Nil();
        LuaValue function = EvalExpr(*stat.kids[0], env);
        if (function.function) {
            function.function->name = stat.name;
        }
        env->vars[stat.name] = std::move(function);
        return Sig::kNone;
      }
      case LuaAstKind::kReturn: {
        std::vector<LuaValue> values = EvalExprList(stat.kids, env);
        if (error_raised_) {
            return Sig::kError;
        }
        return_values_ = std::move(values);
        return Sig::kReturn;
      }
      case LuaAstKind::kBreak:
        return Sig::kBreak;
      default:
        Error("unexpected statement node");
        return Sig::kError;
    }
}

void
LuaInterp::AssignTo(const LuaAst& target, const LuaEnvPtr& env,
                    LuaValue value)
{
    if (target.kind == LuaAstKind::kName) {
        LuaEnv* defining = env->Resolve(target.name);
        if (defining != nullptr) {
            defining->vars[target.name] = std::move(value);
        } else {
            globals_->vars[target.name] = std::move(value);
        }
        return;
    }
    if (target.kind == LuaAstKind::kIndex) {
        LuaValue object = EvalExpr(*target.kids[0], env);
        LuaValue key = EvalExpr(*target.kids[1], env);
        if (error_raised_) {
            return;
        }
        if (object.type != LuaValue::Type::kTable) {
            Error("attempt to index a " + std::string(LuaTypeName(
                      object.type)) + " value");
            return;
        }
        object.table->Set(*this, key, std::move(value));
        return;
    }
    Error("cannot assign to this expression");
}

// ---------------------------------------------------------------------------
// Expressions.
// ---------------------------------------------------------------------------

std::vector<LuaValue>
LuaInterp::EvalExprList(const std::vector<LuaAstPtr>& exprs,
                        const LuaEnvPtr& env)
{
    std::vector<LuaValue> values;
    for (size_t i = 0; i < exprs.size(); ++i) {
        const bool last = (i + 1 == exprs.size());
        if (last && (exprs[i]->kind == LuaAstKind::kCall ||
                     exprs[i]->kind == LuaAstKind::kMethodCall)) {
            std::vector<LuaValue> multi = EvalCallMulti(*exprs[i], env);
            for (LuaValue& value : multi) {
                values.push_back(std::move(value));
            }
        } else {
            values.push_back(EvalExpr(*exprs[i], env));
        }
        if (error_raised_) {
            break;
        }
    }
    return values;
}

std::vector<LuaValue>
LuaInterp::EvalCallMulti(const LuaAst& call, const LuaEnvPtr& env)
{
    LogNode(call);
    LuaValue callee;
    std::vector<LuaValue> args;
    size_t first_arg = 1;
    if (call.kind == LuaAstKind::kMethodCall) {
        LuaValue receiver = EvalExpr(*call.kids[0], env);
        if (error_raised_) {
            return {};
        }
        if (receiver.type == LuaValue::Type::kStr) {
            // s:method(...) on strings resolves in the string library.
            for (size_t i = 1; i < call.kids.size(); ++i) {
                args.push_back(EvalExpr(*call.kids[i], env));
                if (error_raised_) {
                    return {};
                }
            }
            return {CallStringMethod(receiver, call.name, args)};
        }
        if (receiver.type != LuaValue::Type::kTable) {
            Error("attempt to call method on a " +
                  std::string(LuaTypeName(receiver.type)) + " value");
            return {};
        }
        callee = receiver.table->Get(*this,
                                     LuaValue::StrC(call.name));
        args.push_back(receiver);  // self
    } else {
        callee = EvalExpr(*call.kids[0], env);
    }
    if (error_raised_) {
        return {};
    }
    for (size_t i = first_arg; i < call.kids.size(); ++i) {
        const bool last = (i + 1 == call.kids.size());
        if (last && (call.kids[i]->kind == LuaAstKind::kCall ||
                     call.kids[i]->kind == LuaAstKind::kMethodCall)) {
            std::vector<LuaValue> multi =
                EvalCallMulti(*call.kids[i], env);
            for (LuaValue& value : multi) {
                args.push_back(std::move(value));
            }
        } else {
            args.push_back(EvalExpr(*call.kids[i], env));
        }
        if (error_raised_) {
            return {};
        }
    }
    if (callee.type == LuaValue::Type::kBuiltin) {
        return CallBuiltinMulti(callee.builtin_id, args);
    }
    return CallFunctionMulti(callee, std::move(args));
}

LuaValue
LuaInterp::EvalExpr(const LuaAst& expr, const LuaEnvPtr& env)
{
    if (!rt_->running() || error_raised_) {
        return LuaValue::Nil();
    }
    switch (expr.kind) {
      case LuaAstKind::kNil:
        return LuaValue::Nil();
      case LuaAstKind::kTrue:
        return LuaValue::BoolC(true);
      case LuaAstKind::kFalse:
        return LuaValue::BoolC(false);
      case LuaAstKind::kNumber:
        return LuaValue::IntC(expr.int_value);
      case LuaAstKind::kString: {
        LogNode(expr);
        return NewString(ConcreteStr(expr.str_value));
      }
      case LuaAstKind::kVararg:
        return LuaValue::Nil();
      case LuaAstKind::kName: {
        LuaEnv* defining = env->Resolve(expr.name);
        if (defining != nullptr) {
            return defining->vars[expr.name];
        }
        auto global = globals_->vars.find(expr.name);
        if (global != globals_->vars.end()) {
            return global->second;
        }
        return LuaValue::Nil();  // Unknown globals read as nil.
      }
      case LuaAstKind::kIndex: {
        LogNode(expr);
        LuaValue object = EvalExpr(*expr.kids[0], env);
        LuaValue key = EvalExpr(*expr.kids[1], env);
        if (error_raised_) {
            return LuaValue::Nil();
        }
        return Index(object, key);
      }
      case LuaAstKind::kCall:
      case LuaAstKind::kMethodCall: {
        std::vector<LuaValue> values = EvalCallMulti(expr, env);
        return values.empty() ? LuaValue::Nil() : std::move(values[0]);
      }
      case LuaAstKind::kFunction: {
        auto function = std::make_shared<LuaFunction>();
        function->params = expr.strings;
        function->body = expr.kids[0].get();
        function->closure = env;
        LuaValue value;
        value.type = LuaValue::Type::kFunction;
        value.function = std::move(function);
        return value;
      }
      case LuaAstKind::kBinOp:
        return BinOp(expr, env);
      case LuaAstKind::kUnOp: {
        LogNode(expr);
        LuaValue operand = EvalExpr(*expr.kids[0], env);
        if (error_raised_) {
            return LuaValue::Nil();
        }
        if (expr.name == "not") {
            return LuaValue::Bool(SvBoolNot(Truthy(operand)));
        }
        if (expr.name == "-") {
            bool ok = false;
            const SymValue number = ToNumber(operand, &ok);
            if (!ok) {
                Error("attempt to perform arithmetic on a " +
                      std::string(LuaTypeName(operand.type)) +
                      " value");
                return LuaValue::Nil();
            }
            return LuaValue::Int(SvNeg(number));
        }
        // '#' length.
        if (operand.type == LuaValue::Type::kStr) {
            return LuaValue::IntC(
                static_cast<int64_t>(operand.str->size()));
        }
        if (operand.type == LuaValue::Type::kTable) {
            return LuaValue::IntC(operand.table->Border());
        }
        Error("attempt to get length of a " +
              std::string(LuaTypeName(operand.type)) + " value");
        return LuaValue::Nil();
      }
      case LuaAstKind::kTable: {
        LogNode(expr);
        auto table = std::make_shared<LuaTable>();
        for (size_t i = 0; i + 1 < expr.kids.size(); i += 2) {
            const LuaAst* key_node = expr.kids[i].get();
            LuaValue value = EvalExpr(*expr.kids[i + 1], env);
            if (error_raised_) {
                return LuaValue::Nil();
            }
            if (key_node == nullptr) {
                table->array.push_back(std::move(value));
            } else {
                LuaValue key = EvalExpr(*key_node, env);
                if (error_raised_) {
                    return LuaValue::Nil();
                }
                table->Set(*this, key, std::move(value));
            }
        }
        return LuaValue::Table(std::move(table));
      }
      default:
        Error("unexpected expression node");
        return LuaValue::Nil();
    }
}

LuaValue
LuaInterp::Index(const LuaValue& object, const LuaValue& key)
{
    if (object.type == LuaValue::Type::kTable) {
        return object.table->Get(*this, key);
    }
    if (object.type == LuaValue::Type::kStr) {
        // Strings index into the string library (s.sub etc. via ':').
        Error("attempt to index a string value (use s:method())");
        return LuaValue::Nil();
    }
    Error("attempt to index a " +
          std::string(LuaTypeName(object.type)) + " value");
    return LuaValue::Nil();
}

LuaValue
LuaInterp::BinOp(const LuaAst& node, const LuaEnvPtr& env)
{
    const std::string& op = node.name;
    // and/or short-circuit before evaluating the right side.
    if (op == "and" || op == "or") {
        LuaValue left = EvalExpr(*node.kids[0], env);
        if (error_raised_) {
            return LuaValue::Nil();
        }
        LogNode(node);
        const bool left_truthy = DecideTruthy(left, CHEF_LLPC);
        if (op == "and") {
            return left_truthy ? EvalExpr(*node.kids[1], env) : left;
        }
        return left_truthy ? left : EvalExpr(*node.kids[1], env);
    }

    LuaValue lhs = EvalExpr(*node.kids[0], env);
    LuaValue rhs = EvalExpr(*node.kids[1], env);
    if (error_raised_) {
        return LuaValue::Nil();
    }
    LogNode(node);

    if (op == "==") {
        return LuaValue::Bool(ValueEq(lhs, rhs));
    }
    if (op == "~=") {
        return LuaValue::Bool(SvBoolNot(ValueEq(lhs, rhs)));
    }
    if (op == "..") {
        if ((lhs.type != LuaValue::Type::kStr &&
             lhs.type != LuaValue::Type::kInt) ||
            (rhs.type != LuaValue::Type::kStr &&
             rhs.type != LuaValue::Type::kInt)) {
            Error("attempt to concatenate a " +
                  std::string(LuaTypeName(lhs.type)) + " value");
            return LuaValue::Nil();
        }
        SymStr out = ToStringValue(lhs);
        const SymStr right = ToStringValue(rhs);
        out.insert(out.end(), right.begin(), right.end());
        return NewString(std::move(out));
    }
    if (op == "<" || op == "<=" || op == ">" || op == ">=") {
        if (lhs.type == LuaValue::Type::kStr &&
            rhs.type == LuaValue::Type::kStr) {
            const int ordering = str_ops_.Compare(*lhs.str, *rhs.str);
            bool result = false;
            if (op == "<") result = ordering < 0;
            else if (op == "<=") result = ordering <= 0;
            else if (op == ">") result = ordering > 0;
            else result = ordering >= 0;
            return LuaValue::BoolC(result);
        }
        if (lhs.type == LuaValue::Type::kInt &&
            rhs.type == LuaValue::Type::kInt) {
            if (op == "<") return LuaValue::Bool(SvSlt(lhs.num, rhs.num));
            if (op == "<=") return LuaValue::Bool(SvSle(lhs.num, rhs.num));
            if (op == ">") return LuaValue::Bool(SvSgt(lhs.num, rhs.num));
            return LuaValue::Bool(SvSge(lhs.num, rhs.num));
        }
        Error("attempt to compare " +
              std::string(LuaTypeName(lhs.type)) + " with " +
              LuaTypeName(rhs.type));
        return LuaValue::Nil();
    }

    // Arithmetic (with Lua's string->number coercion).
    bool lhs_ok = false;
    bool rhs_ok = false;
    const SymValue a = ToNumber(lhs, &lhs_ok);
    const SymValue b = ToNumber(rhs, &rhs_ok);
    if (!lhs_ok || !rhs_ok) {
        Error("attempt to perform arithmetic on a " +
              std::string(LuaTypeName(
                  (!lhs_ok ? lhs : rhs).type)) + " value");
        return LuaValue::Nil();
    }
    if (op == "+") return LuaValue::Int(SvAdd(a, b));
    if (op == "-") return LuaValue::Int(SvSub(a, b));
    if (op == "*") return LuaValue::Int(SvMul(a, b));
    if (op == "/" || op == "%") {
        if (rt_->Branch(SvEq(b, SymValue(0, 64)), CHEF_LLPC)) {
            Error("attempt to divide by zero");
            return LuaValue::Nil();
        }
        // Lua floor division / modulo semantics.
        const SymValue q = SvSDiv(a, b);
        const SymValue r = SvSRem(a, b);
        const SymValue adjust = SvBoolAnd(
            SvNe(r, SymValue(0, 64)),
            SvNe(SvSlt(a, SymValue(0, 64)),
                 SvSlt(b, SymValue(0, 64))));
        if (op == "/") {
            return LuaValue::Int(
                SvIte(adjust, SvSub(q, SymValue(1, 64)), q));
        }
        return LuaValue::Int(SvIte(adjust, SvAdd(r, b), r));
    }
    Error("unsupported operator '" + op + "'");
    return LuaValue::Nil();
}

// ---------------------------------------------------------------------------
// Calls.
// ---------------------------------------------------------------------------

LuaValue
LuaInterp::CallFunction(const LuaValue& callee, std::vector<LuaValue> args)
{
    std::vector<LuaValue> values =
        CallFunctionMulti(callee, std::move(args));
    return values.empty() ? LuaValue::Nil() : std::move(values[0]);
}

std::vector<LuaValue>
LuaInterp::CallFunctionMulti(const LuaValue& callee,
                             std::vector<LuaValue> args)
{
    if (callee.type == LuaValue::Type::kBuiltin) {
        return CallBuiltinMulti(callee.builtin_id, args);
    }
    if (callee.type != LuaValue::Type::kFunction) {
        Error("attempt to call a " +
              std::string(LuaTypeName(callee.type)) + " value");
        return {};
    }
    if (++depth_ > options_.max_depth) {
        --depth_;
        Error("stack overflow");
        return {};
    }
    auto scope = std::make_shared<LuaEnv>();
    scope->parent = callee.function->closure;
    for (size_t i = 0; i < callee.function->params.size(); ++i) {
        scope->vars[callee.function->params[i]] =
            i < args.size() ? std::move(args[i]) : LuaValue::Nil();
    }
    return_values_.clear();
    const Sig signal = ExecBlock(*callee.function->body, scope);
    --depth_;
    if (signal == Sig::kReturn) {
        return std::move(return_values_);
    }
    return {};
}

std::vector<LuaValue>
LuaInterp::CallBuiltinMulti(int builtin_id, std::vector<LuaValue>& args)
{
    switch (builtin_id) {
      case kBPrint: {
        SymStr line;
        for (size_t i = 0; i < args.size(); ++i) {
            if (i > 0) {
                line.emplace_back('\t', 8);
            }
            const SymStr text = ToStringValue(args[i]);
            line.insert(line.end(), text.begin(), text.end());
        }
        output_ += ConcreteView(line);
        output_ += '\n';
        return {LuaValue::Nil()};
      }
      case kBType:
        return {LuaValue::StrC(
            args.empty() ? "nil" : LuaTypeName(args[0].type))};
      case kBTostring:
        return {NewString(
            ToStringValue(args.empty() ? LuaValue::Nil() : args[0]))};
      case kBTonumber: {
        if (args.empty()) {
            return {LuaValue::Nil()};
        }
        bool ok = false;
        const SymValue number = ToNumber(args[0], &ok);
        return {ok ? LuaValue::Int(number) : LuaValue::Nil()};
      }
      case kBPairs:
      case kBIpairs: {
        if (args.empty() || args[0].type != LuaValue::Type::kTable) {
            Error("bad argument to 'pairs' (table expected)");
            return {LuaValue::Nil()};
        }
        auto iterator = std::make_shared<LuaIterator>();
        const LuaTable& table = *args[0].table;
        for (size_t i = 0; i < table.array.size(); ++i) {
            iterator->entries.push_back(
                {LuaValue::IntC(static_cast<int64_t>(i + 1)),
                 table.array[i]});
        }
        if (builtin_id == kBPairs) {
            for (const auto& entry : table.entries) {
                if (entry.alive) {
                    iterator->entries.push_back(
                        {entry.key, entry.value});
                }
            }
        }
        LuaValue value;
        value.type = LuaValue::Type::kIterator;
        value.iterator = std::move(iterator);
        return {value};
      }
      case kBError: {
        const std::string message =
            args.empty() ? "error"
                         : ConcreteView(ToStringValue(args[0]));
        Error(message);
        return {};
      }
      case kBPcall: {
        if (args.empty()) {
            Error("bad argument to 'pcall'");
            return {};
        }
        LuaValue function = args[0];
        std::vector<LuaValue> call_args(args.begin() + 1, args.end());
        const LuaValue result =
            CallFunction(function, std::move(call_args));
        if (error_raised_) {
            // pcall catches the error (unless the run was aborted).
            if (!rt_->running()) {
                return {};
            }
            LuaValue message = LuaValue::StrC(error_message_);
            error_raised_ = false;
            error_message_.clear();
            return {LuaValue::BoolC(false), std::move(message)};
        }
        return {LuaValue::BoolC(true), result};
      }
      case kBAssert: {
        if (args.empty() ||
            !rt_->Branch(Truthy(args[0]), CHEF_LLPC)) {
            Error(args.size() > 1
                      ? ConcreteView(ToStringValue(args[1]))
                      : "assertion failed!");
            return {};
        }
        return {args[0]};
      }
      // ---- string library ---------------------------------------------
      case kBStrLen:
      case kBStrSub:
      case kBStrByte:
      case kBStrFind:
      case kBStrRep:
      case kBStrLower:
      case kBStrUpper: {
        if (args.empty() || args[0].type != LuaValue::Type::kStr) {
            Error("bad argument (string expected)");
            return {};
        }
        LuaValue receiver = args[0];
        std::vector<LuaValue> rest(args.begin() + 1, args.end());
        std::string name;
        switch (builtin_id) {
          case kBStrLen: name = "len"; break;
          case kBStrSub: name = "sub"; break;
          case kBStrByte: name = "byte"; break;
          case kBStrFind: name = "find"; break;
          case kBStrRep: name = "rep"; break;
          case kBStrLower: name = "lower"; break;
          default: name = "upper"; break;
        }
        return {CallStringMethod(receiver, name, rest)};
      }
      case kBStrChar: {
        SymStr out;
        for (const LuaValue& arg : args) {
            if (arg.type != LuaValue::Type::kInt) {
                Error("bad argument to 'char'");
                return {};
            }
            out.push_back(SvTrunc(arg.num, 8));
        }
        return {NewString(std::move(out))};
      }
      // ---- table library ------------------------------------------------
      case kBTblInsert: {
        if (args.size() < 2 ||
            args[0].type != LuaValue::Type::kTable) {
            Error("bad argument to 'insert'");
            return {};
        }
        LuaTable& table = *args[0].table;
        if (args.size() == 2) {
            table.array.push_back(args[1]);
        } else {
            const int64_t position = static_cast<int64_t>(
                rt_->Concretize(args[1].num));
            if (position < 1 ||
                position >
                    static_cast<int64_t>(table.array.size()) + 1) {
                Error("bad position to 'insert'");
                return {};
            }
            table.array.insert(table.array.begin() + (position - 1),
                               args[2]);
        }
        return {LuaValue::Nil()};
      }
      case kBTblRemove: {
        if (args.empty() || args[0].type != LuaValue::Type::kTable) {
            Error("bad argument to 'remove'");
            return {};
        }
        LuaTable& table = *args[0].table;
        if (table.array.empty()) {
            return {LuaValue::Nil()};
        }
        int64_t position = static_cast<int64_t>(table.array.size());
        if (args.size() > 1) {
            position =
                static_cast<int64_t>(rt_->Concretize(args[1].num));
            if (position < 1 ||
                position > static_cast<int64_t>(table.array.size())) {
                Error("bad position to 'remove'");
                return {};
            }
        }
        LuaValue removed = table.array[position - 1];
        table.array.erase(table.array.begin() + (position - 1));
        return {removed};
      }
      case kBTblConcat: {
        if (args.empty() || args[0].type != LuaValue::Type::kTable) {
            Error("bad argument to 'concat'");
            return {};
        }
        SymStr sep;
        if (args.size() > 1 &&
            args[1].type == LuaValue::Type::kStr) {
            sep = *args[1].str;
        }
        SymStr out;
        const LuaTable& table = *args[0].table;
        for (size_t i = 0; i < table.array.size(); ++i) {
            if (i > 0) {
                out.insert(out.end(), sep.begin(), sep.end());
            }
            const SymStr text = ToStringValue(table.array[i]);
            out.insert(out.end(), text.begin(), text.end());
        }
        return {NewString(std::move(out))};
      }
      default:
        Error("unknown builtin");
        return {};
    }
}

LuaValue
LuaInterp::CallStringMethod(const LuaValue& receiver,
                            const std::string& name,
                            std::vector<LuaValue>& args)
{
    const SymStr& s = *receiver.str;
    auto int_arg = [this, &args](size_t i, int64_t fallback) -> int64_t {
        if (i >= args.size() ||
            args[i].type != LuaValue::Type::kInt) {
            return fallback;
        }
        return static_cast<int64_t>(rt_->Concretize(args[i].num));
    };

    if (name == "len") {
        return LuaValue::IntC(static_cast<int64_t>(s.size()));
    }
    if (name == "sub") {
        int64_t begin = int_arg(0, 1);
        int64_t end = int_arg(1, -1);
        const int64_t n = static_cast<int64_t>(s.size());
        if (begin < 0) begin = std::max<int64_t>(n + begin + 1, 1);
        if (begin < 1) begin = 1;
        if (end < 0) end = n + end + 1;
        if (end > n) end = n;
        SymStr out;
        for (int64_t i = begin; i <= end; ++i) {
            out.push_back(s[static_cast<size_t>(i - 1)]);
        }
        return NewString(std::move(out));
    }
    if (name == "byte") {
        const int64_t position = int_arg(0, 1);
        if (position < 1 ||
            position > static_cast<int64_t>(s.size())) {
            return LuaValue::Nil();
        }
        return LuaValue::Int(
            SvZExt(s[static_cast<size_t>(position - 1)], 64));
    }
    if (name == "find") {
        // Plain substring find (no patterns), 1-based.
        if (args.empty() || args[0].type != LuaValue::Type::kStr) {
            Error("bad argument to 'find'");
            return LuaValue::Nil();
        }
        const int64_t init = int_arg(1, 1);
        const int start =
            static_cast<int>(std::max<int64_t>(init - 1, 0));
        const int position = str_ops_.Find(s, *args[0].str, start);
        if (position < 0) {
            return LuaValue::Nil();
        }
        return LuaValue::IntC(position + 1);
    }
    if (name == "rep") {
        if (args.empty() || args[0].type != LuaValue::Type::kInt) {
            Error("bad argument to 'rep'");
            return LuaValue::Nil();
        }
        // Symbolic repetition counts are input-dependent allocations.
        const uint64_t count = interp::ResolveAllocationSize(
            rt_, args[0].num, options_.build, 4096);
        SymStr out;
        for (uint64_t i = 0; i < count; ++i) {
            out.insert(out.end(), s.begin(), s.end());
        }
        return NewString(std::move(out));
    }
    if (name == "lower" || name == "upper") {
        SymStr out;
        out.reserve(s.size());
        for (const SymValue& byte : s) {
            rt_->CountStep();
            out.push_back(name == "lower" ? str_ops_.ToLower(byte)
                                          : str_ops_.ToUpper(byte));
        }
        return NewString(std::move(out));
    }
    Error("unknown string method '" + name + "'");
    return LuaValue::Nil();
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

LuaOutcome
LuaInterp::RunChunk()
{
    error_raised_ = false;
    error_message_.clear();
    auto scope = std::make_shared<LuaEnv>();
    scope->parent = globals_;
    ExecBlock(*chunk_->body, scope);
    // Chunk-level locals that name functions are commonly used as module
    // entry points; promote them so CallGlobal can find them.
    for (auto& [name, value] : scope->vars) {
        if (!globals_->vars.count(name)) {
            globals_->vars[name] = value;
        }
    }
    LuaOutcome outcome;
    if (!rt_->running()) {
        outcome.ok = false;
        outcome.aborted = true;
        return outcome;
    }
    if (error_raised_) {
        outcome.ok = false;
        outcome.error_message = error_message_;
        error_raised_ = false;
        return outcome;
    }
    return outcome;
}

LuaOutcome
LuaInterp::CallGlobal(const std::string& name,
                      std::vector<LuaValue> args, LuaValue* result)
{
    LuaOutcome outcome;
    auto it = globals_->vars.find(name);
    if (it == globals_->vars.end() ||
        (it->second.type != LuaValue::Type::kFunction &&
         it->second.type != LuaValue::Type::kBuiltin)) {
        outcome.ok = false;
        outcome.error_message =
            "attempt to call a nil value (global '" + name + "')";
        return outcome;
    }
    const LuaValue value = CallFunction(it->second, std::move(args));
    if (!rt_->running()) {
        outcome.ok = false;
        outcome.aborted = true;
        return outcome;
    }
    if (error_raised_) {
        outcome.ok = false;
        outcome.error_message = error_message_;
        error_raised_ = false;
        return outcome;
    }
    if (result != nullptr) {
        *result = value;
    }
    return outcome;
}

}  // namespace chef::minilua
