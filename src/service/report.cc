#include "service/report.h"

#include <cstdio>
#include <string>

#include "support/json.h"

namespace chef::service {

namespace {

using support::JsonWriter;

}  // namespace

void
WriteServiceStats(JsonWriter& json, const ServiceStats& stats)
{
    json.BeginObject();
    json.Key("jobs_submitted"), json.Value(stats.jobs_submitted);
    json.Key("jobs_completed"), json.Value(stats.jobs_completed);
    json.Key("jobs_cancelled"), json.Value(stats.jobs_cancelled);
    json.Key("jobs_plateau_cancelled"),
        json.Value(stats.jobs_plateau_cancelled);
    json.Key("jobs_failed"), json.Value(stats.jobs_failed);
    json.Key("ll_paths"), json.Value(stats.ll_paths);
    json.Key("hl_paths"), json.Value(stats.hl_paths);
    json.Key("hangs"), json.Value(stats.hangs);
    json.Key("solver_queries"), json.Value(stats.solver_queries);
    json.Key("solver_sliced_queries"),
        json.Value(stats.solver_sliced_queries);
    json.Key("solver_incremental_sat_calls"),
        json.Value(stats.solver_incremental_sat_calls);
    json.Key("solver_clauses_loaded"),
        json.Value(stats.solver_clauses_loaded);
    json.Key("solver_seconds"), json.Value(stats.solver_seconds);
    json.Key("solver_cache_shared"),
        json.Value(stats.solver_cache_shared);
    json.Key("shared_cache_hits"), json.Value(stats.shared_cache_hits);
    json.Key("shared_cache_misses"),
        json.Value(stats.shared_cache_misses);
    json.Key("shared_cache_inserts"),
        json.Value(stats.shared_cache_inserts);
    json.Key("shared_cache_evictions"),
        json.Value(stats.shared_cache_evictions);
    json.Key("shared_cache_model_hits"),
        json.Value(stats.shared_cache_model_hits);
    json.Key("shared_cache_bytes"), json.Value(stats.shared_cache_bytes);
    json.Key("shared_cache_entries"),
        json.Value(stats.shared_cache_entries);
    json.Key("corpus_size"), json.Value(stats.corpus_size);
    json.Key("engine_seconds"), json.Value(stats.engine_seconds);
    json.Key("wall_seconds"), json.Value(stats.wall_seconds);
    json.Key("jobs_per_second"), json.Value(stats.jobs_per_second);
    json.Key("num_workers"), json.Value(stats.num_workers);
    json.Key("engine_threads"),
        json.Value(static_cast<uint64_t>(stats.engine_threads));
    json.Key("wide_sessions_granted"),
        json.Value(stats.wide_sessions_granted);
    json.Key("schedule_policy"),
        json.Value(SchedulePolicyName(stats.schedule_policy));
    json.Key("events_delivered"), json.Value(stats.events_delivered);
    json.EndObject();
}

void
WriteJobResult(JsonWriter& json, const JobResult& result)
{
    json.BeginObject();
    json.Key("job_index"), json.Value(result.job_index);
    json.Key("workload"), json.Value(result.workload);
    json.Key("label"), json.Value(result.label);
    json.Key("status"), json.Value(JobStatusName(result.status));
    json.Key("stop_source"), json.Value(result.stop_source);
    if (!result.error.empty()) {
        json.Key("error"), json.Value(result.error);
    }
    json.Key("seed_used"), json.HexValue(result.seed_used);
    json.Key("test_cases"), json.Value(result.num_test_cases);
    json.Key("relevant_test_cases"),
        json.Value(result.num_relevant_test_cases);
    json.Key("corpus_inserted"), json.Value(result.corpus_inserted);
    json.Key("ll_paths"), json.Value(result.engine_stats.ll_paths);
    json.Key("hl_paths"), json.Value(result.engine_stats.hl_paths);
    json.Key("hangs"), json.Value(result.engine_stats.hangs);
    json.Key("solver_queries"),
        json.Value(result.engine_stats.solver_queries);
    json.Key("solver_sliced_queries"),
        json.Value(result.engine_stats.solver_sliced_queries);
    json.Key("solver_incremental_sat_calls"),
        json.Value(result.engine_stats.solver_incremental_sat_calls);
    json.Key("solver_clauses_loaded"),
        json.Value(result.engine_stats.solver_clauses_loaded);
    json.Key("solver_seconds"),
        json.Value(result.engine_stats.solver_seconds);
    json.Key("solver_shared_hits"),
        json.Value(result.engine_stats.solver_shared_hits);
    json.Key("solver_shared_model_hits"),
        json.Value(result.engine_stats.solver_shared_model_hits);
    json.Key("threads_used"),
        json.Value(static_cast<uint64_t>(result.engine_stats.threads_used));
    json.Key("stopped"), json.Value(result.engine_stats.stopped);
    json.Key("elapsed_seconds"),
        json.Value(result.engine_stats.elapsed_seconds);
    json.EndObject();
}

namespace {

void
WriteCorpusEntry(JsonWriter& json, const TestCorpus::Entry& entry,
                 bool include_inputs)
{
    json.BeginObject();
    json.Key("workload"), json.Value(entry.workload);
    json.Key("fingerprint"), json.HexValue(entry.fingerprint);
    json.Key("job_index"), json.Value(entry.job_index);
    json.Key("outcome_kind"), json.Value(entry.outcome_kind);
    if (!entry.outcome_detail.empty()) {
        json.Key("outcome_detail"), json.Value(entry.outcome_detail);
    }
    json.Key("hl_length"), json.Value(entry.hl_length);
    json.Key("ll_steps"), json.Value(entry.ll_steps);
    if (include_inputs) {
        json.Key("inputs");
        json.BeginArray();
        for (const auto& [var_id, value] : entry.inputs) {
            json.BeginArray();
            json.Value(static_cast<uint64_t>(var_id));
            json.Value(value);
            json.EndArray();
        }
        json.EndArray();
    }
    json.EndObject();
}

}  // namespace

std::string
RenderJsonReport(const ServiceStats& stats,
                 const std::vector<JobResult>& results,
                 const TestCorpus& corpus, const ReportOptions& options)
{
    JsonWriter json;
    json.BeginObject();
    json.Key("report"), json.Value("chef-exploration-service");
    json.Key("stats");
    WriteServiceStats(json, stats);
    if (options.include_jobs) {
        json.Key("jobs");
        json.BeginArray();
        for (const JobResult& result : results) {
            WriteJobResult(json, result);
        }
        json.EndArray();
    }
    if (options.include_corpus) {
        const size_t total_entries = corpus.size();
        json.Key("corpus_size"), json.Value(total_entries);
        const std::vector<TestCorpus::Entry> entries =
            corpus.Snapshot(options.max_corpus_entries);
        // Entries dropped by max_corpus_entries: without this count a
        // capped snapshot is indistinguishable from a small corpus.
        // Consumers check corpus_truncated == 0 before treating the
        // array as complete.
        json.Key("corpus_truncated"),
            json.Value(total_entries > entries.size()
                           ? total_entries - entries.size()
                           : 0);
        json.Key("corpus");
        json.BeginArray();
        for (const TestCorpus::Entry& entry : entries) {
            WriteCorpusEntry(json, entry, options.include_inputs);
        }
        json.EndArray();
    }
    json.EndObject();
    return json.Take();
}

bool
WriteJsonReportFile(const std::string& path, const ServiceStats& stats,
                    const std::vector<JobResult>& results,
                    const TestCorpus& corpus, const ReportOptions& options)
{
    const std::string report =
        RenderJsonReport(stats, results, corpus, options);
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
        return false;
    }
    const size_t written =
        std::fwrite(report.data(), 1, report.size(), file);
    const bool flushed = std::fclose(file) == 0;
    return written == report.size() && flushed;
}

}  // namespace chef::service
