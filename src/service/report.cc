#include "service/report.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <type_traits>

namespace chef::service {

namespace {

/// Minimal append-only JSON builder. The report structure is fixed, so a
/// full serializer would be overkill; this keeps key order stable and
/// escaping in one place.
class JsonWriter
{
  public:
    std::string Take() { return std::move(out_); }

    void BeginObject() { Punct('{'); }
    void EndObject()
    {
        out_ += '}';
        needs_comma_ = true;
    }
    void BeginArray() { Punct('['); }
    void EndArray()
    {
        out_ += ']';
        needs_comma_ = true;
    }

    void Key(const char* name)
    {
        Comma();
        out_ += '"';
        out_ += name;
        out_ += "\":";
        needs_comma_ = false;
    }

    void Value(const std::string& text)
    {
        Comma();
        out_ += '"';
        out_ += JsonEscape(text);
        out_ += '"';
        needs_comma_ = true;
    }

    /// Without this, a string literal would convert to bool (pointer ->
    /// bool beats the user-defined conversion to std::string) and
    /// silently serialize as `true`.
    void Value(const char* text) { Value(std::string(text)); }

    /// One template for every integral width/signedness (size_t is a
    /// distinct type from uint64_t on some ABIs; separate overloads
    /// would be ambiguous there). All report fields are non-negative.
    template <typename T,
              typename std::enable_if<std::is_integral<T>::value &&
                                          !std::is_same<T, bool>::value,
                                      int>::type = 0>
    void Value(T value)
    {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%" PRIu64,
                      static_cast<uint64_t>(value));
        Raw(buffer);
    }

    /// 64-bit identities (fingerprints, seeds) go out as hex *strings*:
    /// they routinely exceed 2^53 and would be silently rounded by
    /// double-based JSON consumers, breaking cross-report comparison.
    void HexValue(uint64_t value)
    {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "\"0x%016" PRIx64 "\"",
                      value);
        Raw(buffer);
    }

    void Value(double value)
    {
        // %.6f prints NaN/Inf as bare `nan`/`inf`, which no strict JSON
        // parser accepts (a rate over a zero wall time is enough to
        // corrupt the whole report). Non-finite values serialize as
        // null — "not a measurement" — rather than a clamped number a
        // consumer could mistake for data.
        if (!std::isfinite(value)) {
            Raw("null");
            return;
        }
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "%.6f", value);
        Raw(buffer);
    }

    void Value(bool value) { Raw(value ? "true" : "false"); }

  private:
    void Comma()
    {
        if (needs_comma_) {
            out_ += ',';
        }
    }
    void Punct(char c)
    {
        Comma();
        out_ += c;
        needs_comma_ = false;
    }
    void Raw(const char* text)
    {
        Comma();
        out_ += text;
        needs_comma_ = true;
    }

    std::string out_;
    bool needs_comma_ = false;
};

void
WriteStats(JsonWriter& json, const ServiceStats& stats)
{
    json.BeginObject();
    json.Key("jobs_submitted"), json.Value(stats.jobs_submitted);
    json.Key("jobs_completed"), json.Value(stats.jobs_completed);
    json.Key("jobs_cancelled"), json.Value(stats.jobs_cancelled);
    json.Key("jobs_plateau_cancelled"),
        json.Value(stats.jobs_plateau_cancelled);
    json.Key("jobs_failed"), json.Value(stats.jobs_failed);
    json.Key("ll_paths"), json.Value(stats.ll_paths);
    json.Key("hl_paths"), json.Value(stats.hl_paths);
    json.Key("hangs"), json.Value(stats.hangs);
    json.Key("solver_queries"), json.Value(stats.solver_queries);
    json.Key("solver_sliced_queries"),
        json.Value(stats.solver_sliced_queries);
    json.Key("solver_incremental_sat_calls"),
        json.Value(stats.solver_incremental_sat_calls);
    json.Key("solver_clauses_loaded"),
        json.Value(stats.solver_clauses_loaded);
    json.Key("solver_seconds"), json.Value(stats.solver_seconds);
    json.Key("solver_cache_shared"),
        json.Value(stats.solver_cache_shared);
    json.Key("shared_cache_hits"), json.Value(stats.shared_cache_hits);
    json.Key("shared_cache_misses"),
        json.Value(stats.shared_cache_misses);
    json.Key("shared_cache_inserts"),
        json.Value(stats.shared_cache_inserts);
    json.Key("shared_cache_evictions"),
        json.Value(stats.shared_cache_evictions);
    json.Key("shared_cache_model_hits"),
        json.Value(stats.shared_cache_model_hits);
    json.Key("shared_cache_bytes"), json.Value(stats.shared_cache_bytes);
    json.Key("shared_cache_entries"),
        json.Value(stats.shared_cache_entries);
    json.Key("corpus_size"), json.Value(stats.corpus_size);
    json.Key("engine_seconds"), json.Value(stats.engine_seconds);
    json.Key("wall_seconds"), json.Value(stats.wall_seconds);
    json.Key("jobs_per_second"), json.Value(stats.jobs_per_second);
    json.Key("num_workers"), json.Value(stats.num_workers);
    json.Key("schedule_policy"),
        json.Value(SchedulePolicyName(stats.schedule_policy));
    json.Key("events_delivered"), json.Value(stats.events_delivered);
    json.EndObject();
}

void
WriteJob(JsonWriter& json, const JobResult& result)
{
    json.BeginObject();
    json.Key("job_index"), json.Value(result.job_index);
    json.Key("workload"), json.Value(result.workload);
    json.Key("label"), json.Value(result.label);
    json.Key("status"), json.Value(JobStatusName(result.status));
    json.Key("stop_source"), json.Value(result.stop_source);
    if (!result.error.empty()) {
        json.Key("error"), json.Value(result.error);
    }
    json.Key("seed_used"), json.HexValue(result.seed_used);
    json.Key("test_cases"), json.Value(result.num_test_cases);
    json.Key("relevant_test_cases"),
        json.Value(result.num_relevant_test_cases);
    json.Key("corpus_inserted"), json.Value(result.corpus_inserted);
    json.Key("ll_paths"), json.Value(result.engine_stats.ll_paths);
    json.Key("hl_paths"), json.Value(result.engine_stats.hl_paths);
    json.Key("hangs"), json.Value(result.engine_stats.hangs);
    json.Key("solver_queries"),
        json.Value(result.engine_stats.solver_queries);
    json.Key("solver_sliced_queries"),
        json.Value(result.engine_stats.solver_sliced_queries);
    json.Key("solver_incremental_sat_calls"),
        json.Value(result.engine_stats.solver_incremental_sat_calls);
    json.Key("solver_clauses_loaded"),
        json.Value(result.engine_stats.solver_clauses_loaded);
    json.Key("solver_seconds"),
        json.Value(result.engine_stats.solver_seconds);
    json.Key("solver_shared_hits"),
        json.Value(result.engine_stats.solver_shared_hits);
    json.Key("solver_shared_model_hits"),
        json.Value(result.engine_stats.solver_shared_model_hits);
    json.Key("stopped"), json.Value(result.engine_stats.stopped);
    json.Key("elapsed_seconds"),
        json.Value(result.engine_stats.elapsed_seconds);
    json.EndObject();
}

void
WriteCorpusEntry(JsonWriter& json, const TestCorpus::Entry& entry,
                 bool include_inputs)
{
    json.BeginObject();
    json.Key("workload"), json.Value(entry.workload);
    json.Key("fingerprint"), json.HexValue(entry.fingerprint);
    json.Key("job_index"), json.Value(entry.job_index);
    json.Key("outcome_kind"), json.Value(entry.outcome_kind);
    if (!entry.outcome_detail.empty()) {
        json.Key("outcome_detail"), json.Value(entry.outcome_detail);
    }
    json.Key("hl_length"), json.Value(entry.hl_length);
    json.Key("ll_steps"), json.Value(entry.ll_steps);
    if (include_inputs) {
        json.Key("inputs");
        json.BeginArray();
        for (const auto& [var_id, value] : entry.inputs) {
            json.BeginArray();
            json.Value(static_cast<uint64_t>(var_id));
            json.Value(value);
            json.EndArray();
        }
        json.EndArray();
    }
    json.EndObject();
}

}  // namespace

std::string
JsonEscape(const std::string& text)
{
    std::string escaped;
    escaped.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': escaped += "\\\""; break;
          case '\\': escaped += "\\\\"; break;
          case '\b': escaped += "\\b"; break;
          case '\f': escaped += "\\f"; break;
          case '\n': escaped += "\\n"; break;
          case '\r': escaped += "\\r"; break;
          case '\t': escaped += "\\t"; break;
          default:
            // Escape control characters, and also bytes >= 0x7f: guest
            // strings are raw byte strings (often built from symbolic
            // input bytes), not guaranteed UTF-8, and the report must
            // stay parseable. Escaping per byte keeps output pure ASCII.
            if (static_cast<unsigned char>(c) < 0x20 ||
                static_cast<unsigned char>(c) >= 0x7f) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned char>(c));
                escaped += buffer;
            } else {
                escaped += c;
            }
        }
    }
    return escaped;
}

std::string
RenderJsonReport(const ServiceStats& stats,
                 const std::vector<JobResult>& results,
                 const TestCorpus& corpus, const ReportOptions& options)
{
    JsonWriter json;
    json.BeginObject();
    json.Key("report"), json.Value("chef-exploration-service");
    json.Key("stats");
    WriteStats(json, stats);
    if (options.include_jobs) {
        json.Key("jobs");
        json.BeginArray();
        for (const JobResult& result : results) {
            WriteJob(json, result);
        }
        json.EndArray();
    }
    if (options.include_corpus) {
        const size_t total_entries = corpus.size();
        json.Key("corpus_size"), json.Value(total_entries);
        const std::vector<TestCorpus::Entry> entries =
            corpus.Snapshot(options.max_corpus_entries);
        // Entries dropped by max_corpus_entries: without this count a
        // capped snapshot is indistinguishable from a small corpus.
        // Consumers check corpus_truncated == 0 before treating the
        // array as complete.
        json.Key("corpus_truncated"),
            json.Value(total_entries > entries.size()
                           ? total_entries - entries.size()
                           : 0);
        json.Key("corpus");
        json.BeginArray();
        for (const TestCorpus::Entry& entry : entries) {
            WriteCorpusEntry(json, entry, options.include_inputs);
        }
        json.EndArray();
    }
    json.EndObject();
    return json.Take();
}

bool
WriteJsonReportFile(const std::string& path, const ServiceStats& stats,
                    const std::vector<JobResult>& results,
                    const TestCorpus& corpus, const ReportOptions& options)
{
    const std::string report =
        RenderJsonReport(stats, results, corpus, options);
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
        return false;
    }
    const size_t written =
        std::fwrite(report.data(), 1, report.size(), file);
    const bool flushed = std::fclose(file) == 0;
    return written == report.size() && flushed;
}

}  // namespace chef::service
