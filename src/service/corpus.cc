#include "service/corpus.h"

#include <algorithm>

#include "support/strings.h"

namespace chef::service {

namespace {

bool
EntryOrder(const TestCorpus::Entry& a, const TestCorpus::Entry& b)
{
    if (a.workload != b.workload) {
        return a.workload < b.workload;
    }
    return a.fingerprint < b.fingerprint;
}

}  // namespace

size_t
TestCorpus::KeyHash::operator()(const Key& key) const
{
    return static_cast<size_t>(HashCombine(
        FnvHash(key.first.data(), key.first.size()), key.second));
}

bool
TestCorpus::Insert(Entry entry)
{
    Key key{entry.workload, entry.fingerprint};
    std::lock_guard<std::mutex> lock(mutex_);
    entry.remote = false;
    entry.sequence = next_sequence_ + 1;
    auto [it, inserted] = entries_.emplace(std::move(key), std::move(entry));
    if (inserted) {
        ++next_sequence_;
        return true;
    }
    if (it->second.remote) {
        // A shard rediscovered a path that gossip already delivered:
        // the duplicate exploration this layer exists to measure.
        ++remote_duplicate_hits_;
    }
    return false;
}

bool
TestCorpus::Contains(const std::string& workload,
                     uint64_t fingerprint) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(Key{workload, fingerprint}) > 0;
}

size_t
TestCorpus::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::vector<TestCorpus::Entry>
TestCorpus::Snapshot(size_t max_entries) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Order by identity first (pointers only), then copy just the
    // requested prefix.
    std::vector<const Entry*> ordered;
    ordered.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
        ordered.push_back(&entry);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const Entry* a, const Entry* b) {
                  return EntryOrder(*a, *b);
              });
    if (max_entries > 0 && ordered.size() > max_entries) {
        ordered.resize(max_entries);
    }
    std::vector<Entry> entries;
    entries.reserve(ordered.size());
    for (const Entry* entry : ordered) {
        entries.push_back(*entry);
    }
    return entries;
}

TestCorpus::Delta
TestCorpus::Snapshot(const std::string& source,
                     uint64_t since_sequence) const
{
    Delta delta;
    delta.source = source;
    std::lock_guard<std::mutex> lock(mutex_);
    delta.sequence = next_sequence_;
    for (const auto& [key, entry] : entries_) {
        if (!entry.remote && entry.sequence > since_sequence) {
            delta.entries.push_back(entry);
        }
    }
    std::sort(delta.entries.begin(), delta.entries.end(), EntryOrder);
    for (const auto& [workload, yield] : yields_) {
        delta.yields.emplace(workload, yield);
    }
    return delta;
}

TestCorpus::MergeStats
TestCorpus::MergeFrom(const Delta& delta)
{
    MergeStats stats;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry& incoming : delta.entries) {
        Key key{incoming.workload, incoming.fingerprint};
        Entry entry = incoming;
        entry.remote = true;
        entry.sequence = next_sequence_ + 1;
        auto [it, inserted] =
            entries_.emplace(std::move(key), std::move(entry));
        if (inserted) {
            ++next_sequence_;
            ++remote_entries_;
            ++stats.inserted;
        } else {
            ++stats.duplicates;
        }
    }
    // Replace (not accumulate) this source's yield view: deltas carry
    // the source's full cumulative state, so replacement keeps repeated
    // gossip idempotent and the combined view order-independent.
    remote_yields_[delta.source] = delta.yields;
    // Report the merged view for the workloads this delta touched —
    // the ones whose merged state can have changed. Bounding the work
    // to O(delta) matters: the gossip path merges up to dozens of
    // deltas per second while workers contend on this mutex, and that
    // path discards the map anyway (YieldFor serves the same view on
    // demand for everything else).
    for (const auto& [workload, yield] : delta.yields) {
        (void)yield;
        stats.merged_yields.emplace(workload,
                                    CombinedYieldLocked(workload));
    }
    for (const Entry& incoming : delta.entries) {
        if (stats.merged_yields.count(incoming.workload) == 0) {
            stats.merged_yields.emplace(
                incoming.workload, CombinedYieldLocked(incoming.workload));
        }
    }
    return stats;
}

std::vector<TestCorpus::Key>
TestCorpus::Keys() const
{
    std::vector<Key> keys;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        keys.reserve(entries_.size());
        for (const auto& [key, entry] : entries_) {
            keys.push_back(key);
        }
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

void
TestCorpus::RecordJobYield(const std::string& workload, size_t offered,
                           size_t accepted)
{
    std::lock_guard<std::mutex> lock(mutex_);
    WorkloadYield& yield = yields_[workload];
    yield.offered_total += offered;
    yield.accepted_total += accepted;
    // EWMA with the first job seeding the estimate outright; alpha = 0.5
    // so the estimate tracks the (typically monotonically falling) yield
    // curve within a couple of jobs.
    yield.decayed_yield =
        yield.jobs_recorded == 0
            ? static_cast<double>(accepted)
            : 0.5 * (yield.decayed_yield + static_cast<double>(accepted));
    ++yield.jobs_recorded;
    yield.consecutive_zero_yield =
        accepted == 0 ? yield.consecutive_zero_yield + 1 : 0;
}

TestCorpus::WorkloadYield
TestCorpus::CombinedYieldLocked(const std::string& workload) const
{
    // Commutative combine across {local} ∪ remote sources: sums for the
    // counters, max for the zero-yield streak (any shard seeing the
    // workload flat is plateau evidence), jobs-weighted mean for the
    // decayed yield. Every operator is symmetric and associative, so
    // the merged view cannot depend on the order deltas arrived in.
    WorkloadYield combined;
    double yield_weight = 0.0;
    double yield_sum = 0.0;
    const auto accumulate = [&](const WorkloadYield& yield) {
        combined.jobs_recorded += yield.jobs_recorded;
        combined.offered_total += yield.offered_total;
        combined.accepted_total += yield.accepted_total;
        combined.consecutive_zero_yield = std::max(
            combined.consecutive_zero_yield, yield.consecutive_zero_yield);
        yield_weight += static_cast<double>(yield.jobs_recorded);
        yield_sum += yield.decayed_yield *
                     static_cast<double>(yield.jobs_recorded);
    };
    const auto local = yields_.find(workload);
    if (local != yields_.end()) {
        accumulate(local->second);
    }
    for (const auto& [source, yields] : remote_yields_) {
        (void)source;
        const auto it = yields.find(workload);
        if (it != yields.end()) {
            accumulate(it->second);
        }
    }
    combined.decayed_yield =
        yield_weight > 0.0 ? yield_sum / yield_weight : 0.0;
    return combined;
}

TestCorpus::WorkloadYield
TestCorpus::YieldFor(const std::string& workload) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return CombinedYieldLocked(workload);
}

TestCorpus::YieldMap
TestCorpus::LocalYields() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    YieldMap yields;
    for (const auto& [workload, yield] : yields_) {
        yields.emplace(workload, yield);
    }
    return yields;
}

size_t
TestCorpus::remote_entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return remote_entries_;
}

size_t
TestCorpus::remote_duplicate_hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return remote_duplicate_hits_;
}

void
TestCorpus::Clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    yields_.clear();
    remote_yields_.clear();
    next_sequence_ = 0;
    remote_entries_ = 0;
    remote_duplicate_hits_ = 0;
}

}  // namespace chef::service
