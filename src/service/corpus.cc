#include "service/corpus.h"

#include <algorithm>

#include "support/strings.h"

namespace chef::service {

size_t
TestCorpus::KeyHash::operator()(const Key& key) const
{
    return static_cast<size_t>(HashCombine(
        FnvHash(key.first.data(), key.first.size()), key.second));
}

bool
TestCorpus::Insert(Entry entry)
{
    Key key{entry.workload, entry.fingerprint};
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.emplace(std::move(key), std::move(entry)).second;
}

bool
TestCorpus::Contains(const std::string& workload,
                     uint64_t fingerprint) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(Key{workload, fingerprint}) > 0;
}

size_t
TestCorpus::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::vector<TestCorpus::Entry>
TestCorpus::Snapshot(size_t max_entries) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Order by identity first (pointers only), then copy just the
    // requested prefix.
    std::vector<const Entry*> ordered;
    ordered.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
        ordered.push_back(&entry);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const Entry* a, const Entry* b) {
                  if (a->workload != b->workload) {
                      return a->workload < b->workload;
                  }
                  return a->fingerprint < b->fingerprint;
              });
    if (max_entries > 0 && ordered.size() > max_entries) {
        ordered.resize(max_entries);
    }
    std::vector<Entry> entries;
    entries.reserve(ordered.size());
    for (const Entry* entry : ordered) {
        entries.push_back(*entry);
    }
    return entries;
}

std::vector<TestCorpus::Key>
TestCorpus::Keys() const
{
    std::vector<Key> keys;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        keys.reserve(entries_.size());
        for (const auto& [key, entry] : entries_) {
            keys.push_back(key);
        }
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

void
TestCorpus::RecordJobYield(const std::string& workload, size_t offered,
                           size_t accepted)
{
    std::lock_guard<std::mutex> lock(mutex_);
    WorkloadYield& yield = yields_[workload];
    yield.offered_total += offered;
    yield.accepted_total += accepted;
    // EWMA with the first job seeding the estimate outright; alpha = 0.5
    // so the estimate tracks the (typically monotonically falling) yield
    // curve within a couple of jobs.
    yield.decayed_yield =
        yield.jobs_recorded == 0
            ? static_cast<double>(accepted)
            : 0.5 * (yield.decayed_yield + static_cast<double>(accepted));
    ++yield.jobs_recorded;
    yield.consecutive_zero_yield =
        accepted == 0 ? yield.consecutive_zero_yield + 1 : 0;
}

TestCorpus::WorkloadYield
TestCorpus::YieldFor(const std::string& workload) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = yields_.find(workload);
    return it == yields_.end() ? WorkloadYield{} : it->second;
}

void
TestCorpus::Clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    yields_.clear();
}

}  // namespace chef::service
