#include "service/corpus.h"

#include <algorithm>

#include "support/strings.h"

namespace chef::service {

size_t
TestCorpus::KeyHash::operator()(const Key& key) const
{
    return static_cast<size_t>(HashCombine(
        FnvHash(key.first.data(), key.first.size()), key.second));
}

bool
TestCorpus::Insert(Entry entry)
{
    Key key{entry.workload, entry.fingerprint};
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.emplace(std::move(key), std::move(entry)).second;
}

bool
TestCorpus::Contains(const std::string& workload,
                     uint64_t fingerprint) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(Key{workload, fingerprint}) > 0;
}

size_t
TestCorpus::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::vector<TestCorpus::Entry>
TestCorpus::Snapshot(size_t max_entries) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Order by identity first (pointers only), then copy just the
    // requested prefix.
    std::vector<const Entry*> ordered;
    ordered.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
        ordered.push_back(&entry);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const Entry* a, const Entry* b) {
                  if (a->workload != b->workload) {
                      return a->workload < b->workload;
                  }
                  return a->fingerprint < b->fingerprint;
              });
    if (max_entries > 0 && ordered.size() > max_entries) {
        ordered.resize(max_entries);
    }
    std::vector<Entry> entries;
    entries.reserve(ordered.size());
    for (const Entry* entry : ordered) {
        entries.push_back(*entry);
    }
    return entries;
}

std::vector<TestCorpus::Key>
TestCorpus::Keys() const
{
    std::vector<Key> keys;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        keys.reserve(entries_.size());
        for (const auto& [key, entry] : entries_) {
            keys.push_back(key);
        }
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

void
TestCorpus::Clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
}

}  // namespace chef::service
