#ifndef CHEF_SERVICE_SERVICE_H_
#define CHEF_SERVICE_SERVICE_H_

/// \file
/// The parallel exploration service.
///
/// Accepts a batch of JobSpecs and runs them on a fixed-size pool of
/// worker threads — one Engine per job, so every engine (solver, runtime,
/// strategy, RNG) stays single-threaded and workers share only the
/// mutex-guarded TestCorpus and a handful of atomics. Per-job seeds are
/// derived as hash(service_seed, job_index, spec_seed), which makes every
/// job's session deterministic regardless of worker count or which worker
/// picks it up — provided the session's work is bounded by max_runs (or
/// exploration exhaustion) rather than wall clock: a session truncated by
/// its own max_seconds or a service budget cuts off at a load-dependent
/// point. Scheduling-dependent fields (corpus first-discoverer
/// attribution) vary between runs either way.
///
/// Cancellation and budgets are cooperative: the service chains a check of
/// its stop flag and wall-clock budget into each engine's
/// Options::stop_requested hook, which the explore loop polls between
/// concolic iterations and solver calls. The chained hook latches which
/// check fired first, so a session ended by the *spec's own* hook reports
/// kCompleted (its declared budget) rather than a service cancellation —
/// JobResult::stop_source carries the attribution either way.
///
/// Dispatch order comes from a BatchScheduler (service/scheduler.h):
/// yield-weighted priorities by default, plain FIFO via
/// Options::schedule_policy, optional plateau early-abort via
/// Options::plateau_policy. Long batches can stream progress while
/// RunBatch blocks: Options::on_job_event is invoked — off the worker
/// threads, on one dispatcher thread — as jobs start and finish, and/or
/// events land in a caller-polled JobEventQueue.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "cache/shared_cache.h"
#include "service/corpus.h"
#include "service/job.h"
#include "service/scheduler.h"

namespace chef::service {

class ExplorationService
{
  public:
    struct Options {
        /// Worker threads in the pool (clamped to >= 1). Jobs are
        /// dispatched from a shared queue in submission order.
        size_t num_workers = 1;
        /// Service seed; combined with each job's index and spec seed to
        /// derive the per-job engine seed.
        uint64_t seed = 1;
        /// Service-wide wall-clock budget for one RunBatch call, in
        /// seconds; 0 disables it. On expiry, running sessions are
        /// cooperatively stopped (they still report their partial
        /// results) and queued jobs are marked cancelled.
        double max_total_seconds = 0.0;
        /// Default intra-session parallelism granted to each job
        /// (Engine::Options::exploration_threads). A spec whose own
        /// options.exploration_threads is > 1 overrides this for that
        /// job. Effective grants are clamped so num_workers x threads
        /// stays within core_budget — see GrantExplorationThreads.
        uint32_t engine_threads = 1;
        /// Global core budget shared by inter-job workers and
        /// intra-session exploration threads. 0 means
        /// std::thread::hardware_concurrency(). Each job's grant is
        /// clamped to its fair share (budget / num_workers); the
        /// scheduler may exceed that for high-yield workloads as long
        /// as every other worker keeps at least one core (a "wide
        /// session" — counted in ServiceStats::wide_sessions_granted).
        size_t core_budget = 0;
        /// Store concrete inputs in corpus entries (disable to shrink
        /// memory for very large corpora).
        bool record_corpus_inputs = true;
        /// Share one solver cache (query results + counterexamples)
        /// across every job in a batch. Off by default because a shared
        /// hit may hand a session a different satisfying model than a
        /// fresh SAT call would, which makes per-job exploration depend
        /// on sibling jobs (sat/unsat outcomes stay invariant; see
        /// cache/shared_cache.h). A fresh cache is created per RunBatch
        /// call and its stats land in ServiceStats / the JSON report.
        bool share_solver_cache = false;
        /// Configuration for the per-batch shared cache (shards, byte
        /// budget, counterexample bound).
        cache::SharedSolverCache::Options solver_cache_options = {};
        /// Dispatch order for pending jobs. Yield-weighted by default;
        /// ordering does not change per-job results for bounded jobs
        /// (sessions are seeded independently), so the worker-count
        /// determinism contract holds under either policy.
        SchedulePolicy schedule_policy = SchedulePolicy::kYieldPriority;
        /// Early-abort for flat-yield workloads (off by default — when
        /// enabled, pending jobs can be cancelled, which *does* change
        /// batch results).
        PlateauPolicy plateau_policy = {};
        /// Streaming callback, invoked for every JobEvent on a dedicated
        /// dispatcher thread (never a worker thread, so a slow consumer
        /// does not stall exploration; events queue up instead). Events
        /// for one batch arrive in emit order; each job produces exactly
        /// one kJobCompleted event.
        std::function<void(const JobEvent&)> on_job_event;
        /// Caller-owned pollable queue receiving the same events (either
        /// or both sinks may be set). Must outlive RunBatch.
        JobEventQueue* event_queue = nullptr;
        /// Telemetry (obs/obs.h). Propagated into every job's engine (and
        /// through it the solver) unless the spec wired its own context.
        /// The service itself emits service/job spans and service.jobs_*
        /// counters, and — when metrics_interval_seconds is set and
        /// events are streaming — periodic kMetrics JobEvents carrying a
        /// rendered registry snapshot.
        obs::ObsContext obs;
        /// Cadence for streamed kMetrics events, in seconds. 0 disables
        /// them. Snapshots are taken on the worker that completes a job
        /// once the interval has elapsed (no dedicated ticker thread).
        double metrics_interval_seconds = 0.0;
        /// Per-location attribution profiling (obs/attribution.h): each
        /// job gets a profiler bound to its workload, the engine and
        /// solver charge work to high-level locations through it, and
        /// the per-job tables land in JobResult::engine_stats and the
        /// service-wide aggregate (attribution()). On by default — the
        /// hot path is a couple of relaxed atomic adds per charge (see
        /// bench_scheduler's overhead phase).
        bool attribution = true;
    };

    explicit ExplorationService(Options options);

    /// Runs every job in the batch to completion (or cancellation) and
    /// returns per-job results indexed by submission order. Blocks until
    /// the batch drains. Serial reuse across batches accumulates stats
    /// and corpus; concurrent calls are not supported. A stop flag left
    /// over from a previous batch's RequestStop() is stale and cleared on
    /// entry, so serially reused services don't silently cancel the next
    /// batch.
    std::vector<JobResult> RunBatch(const std::vector<JobSpec>& jobs);

    /// Asks all running sessions to stop and cancels queued jobs. Safe to
    /// call from any thread (e.g. a watchdog) while RunBatch blocks. The
    /// flag only affects the batch in flight: RunBatch clears any stop
    /// raised before it started.
    void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

    /// Re-arms a service that was stopped. Retained for callers that want
    /// to clear a stop between RequestStop() and the next batch
    /// explicitly; RunBatch does this itself at entry.
    void ClearStop() { stop_.store(false, std::memory_order_relaxed); }

    bool stop_requested() const
    {
        return stop_.load(std::memory_order_relaxed);
    }

    const TestCorpus& corpus() const { return corpus_; }

    /// Mutable corpus access for the shard layer, which merges remote
    /// gossip deltas into the corpus while RunBatch is in flight (the
    /// corpus is mutex-guarded; see TestCorpus::MergeFrom). Pair with
    /// NotifyYieldsChanged() so the batch scheduler acts on the merge.
    TestCorpus* mutable_corpus() { return &corpus_; }

    /// Tells the in-flight batch's scheduler that corpus yield state
    /// changed outside a job completion (a remote gossip merge): pending
    /// jobs re-sort against the merged yields and the plateau check
    /// re-runs. No-op when no batch is running. Safe from any thread.
    void NotifyYieldsChanged();

    const ServiceStats& stats() const { return stats_; }
    const Options& options() const { return options_; }

    /// Aggregate attribution table over every job completed so far
    /// (empty when Options::attribution is off). Safe to call while
    /// RunBatch is in flight: completed jobs' tables merge in under a
    /// mutex, so a mid-batch read sees a consistent prefix.
    obs::AttributionSnapshot attribution() const;

    /// The last batch's shared solver cache (null when sharing is off or
    /// no batch has run). Exposed for stats inspection and tests.
    const cache::SharedSolverCache* shared_solver_cache() const
    {
        return shared_cache_.get();
    }

    /// The per-job seed derivation (exposed for determinism tests).
    static uint64_t DeriveJobSeed(uint64_t service_seed, size_t job_index,
                                  uint64_t spec_seed);

    /// Exploration threads granted to one job under the global core
    /// budget (exposed for tests). `wide` marks a grant above the fair
    /// per-worker share, given to workloads with unknown or high corpus
    /// yield.
    struct ThreadGrant {
        uint32_t threads = 1;
        bool wide = false;
    };
    ThreadGrant GrantExplorationThreads(const JobSpec& spec) const;

  private:
    JobResult RunJob(const JobSpec& spec, size_t job_index,
                     double remaining_seconds);

    /// Identity-only result for a job that never ran (queued at stop /
    /// budget expiry, or plateau-cancelled).
    JobResult MakeCancelledPlaceholder(const JobSpec& spec,
                                       size_t job_index, const char* error,
                                       const char* stop_source) const;

    Options options_;
    std::atomic<bool> stop_{false};
    /// Wide-session grants handed out by the in-flight batch; folded
    /// into stats_ when the batch drains.
    std::atomic<size_t> wide_sessions_{0};
    TestCorpus corpus_;
    ServiceStats stats_;
    /// The in-flight batch's scheduler (set for the duration of RunBatch;
    /// guarded so NotifyYieldsChanged can't race scheduler teardown).
    std::mutex scheduler_mutex_;
    BatchScheduler* active_scheduler_ = nullptr;
    /// One cache per batch; rebuilt at each RunBatch entry when
    /// share_solver_cache is on (kept afterwards for inspection).
    std::unique_ptr<cache::SharedSolverCache> shared_cache_;
    /// Aggregate of completed jobs' attribution tables (order-independent
    /// merge, so worker scheduling cannot change it).
    mutable std::mutex attribution_mutex_;
    obs::AttributionSnapshot attribution_;
};

}  // namespace chef::service

#endif  // CHEF_SERVICE_SERVICE_H_
