#ifndef CHEF_SERVICE_JOB_H_
#define CHEF_SERVICE_JOB_H_

/// \file
/// Job and statistics types for the parallel exploration service.
///
/// A job is one symbolic-test session described declaratively: a workload
/// id resolved through the workload registry, the engine options for the
/// session, and a seed. The service runs each job on a worker thread with
/// its own Engine (engine internals stay single-threaded) and aggregates
/// outcomes into JobResult / ServiceStats.

#include <cstdint>
#include <memory>
#include <string>

#include "chef/engine.h"
#include "interp/build_options.h"

namespace chef::service {

/// Declarative description of one symbolic-test session.
struct JobSpec {
    /// Workload id resolved via chef::workloads::FindWorkload, e.g.
    /// "py/argparse" or "lua/JSON".
    std::string workload;
    /// Engine configuration for the session. The seed field inside is
    /// overwritten by the service's derived per-job seed; stop_requested
    /// is chained with the service's cancellation/budget check; and
    /// exploration_threads is treated as a *request* — the service
    /// clamps the effective grant to its global core budget (see
    /// ExplorationService::GrantExplorationThreads), with the value 1
    /// (or 0) meaning "use the service's default engine_threads".
    Engine::Options options;
    /// Interpreter build the session runs against.
    interp::InterpBuildOptions build =
        interp::InterpBuildOptions::FullyOptimized();
    /// Optional job-specific seed material. 0 means "derive purely from
    /// the service seed and the job index" — see
    /// ExplorationService::DeriveJobSeed.
    uint64_t seed = 0;
    /// Use \p seed verbatim as the session seed instead of deriving it
    /// from (service seed, local job index, seed). The shard layer sets
    /// this after deriving seeds from *global* batch indices, so a job
    /// runs the identical session no matter which shard (or local queue
    /// position) it lands on — partitioning cannot change per-job
    /// results.
    bool exact_seed = false;
    /// Display label; defaults to the workload id when empty.
    std::string label;
};

/// Terminal state of one job.
enum class JobStatus {
    kCompleted,  ///< Session ran to its own exhaustion/budget.
    kCancelled,  ///< Stopped early by service budget or RequestStop().
    kFailed,     ///< Could not run (unknown workload, guest setup error).
};

const char* JobStatusName(JobStatus status);

/// Order in which pending jobs are handed to free workers.
enum class SchedulePolicy {
    /// Submission order (the pre-scheduler dispatch behavior).
    kFifo,
    /// Highest expected new-fingerprint yield first, from the corpus's
    /// per-workload yield tracking: workloads no job has completed for
    /// yet come first (their yield is unknown, so exploring them
    /// dominates), then tried workloads by decayed yield. Submission
    /// order breaks every tie, so a batch with no recorded yields —
    /// or one whose workloads all score equal — dispatches FIFO.
    kYieldPriority,
};

const char* SchedulePolicyName(SchedulePolicy policy);

/// Early-abort policy for workloads whose corpus yield has flattened.
/// Off by default: cancelling pending jobs changes batch results, so
/// callers opt in (unlike the ordering policy, which only permutes
/// dispatch of jobs that all still run).
struct PlateauPolicy {
    bool enabled = false;
    /// After this many consecutive zero-yield completed jobs, the
    /// workload's remaining jobs sort behind every non-plateaued job.
    size_t deprioritize_after = 2;
    /// After this many, the workload's remaining jobs are cancelled
    /// outright (status kCancelled, stop_source "plateau"). 0 keeps
    /// deprioritizing without ever cancelling.
    size_t cancel_after = 4;
    /// Opt-in rate-based cancellation: instead of counting consecutive
    /// zero-yield jobs, cancel a workload when its windowed
    /// new-fingerprint *rate* — accepted corpus candidates per second,
    /// merged across local completions and gossiped remote yields —
    /// stays below min_yield_per_second over a full
    /// rate_window_seconds. The count-based deprioritize_after rule
    /// still applies for ordering; cancel_after is ignored in rate
    /// mode. Thresholds are calibrated from the recorded Figure-9
    /// coverage curves (see README).
    bool rate_mode = false;
    /// Cancel when the windowed yield rate drops below this (accepted
    /// fingerprints per second).
    double min_yield_per_second = 0.1;
    /// The window must span at least this long before the rate rule
    /// can trigger (protects short-lived workloads from a cold start).
    double rate_window_seconds = 5.0;
    /// And at least this many jobs must have completed for the
    /// workload (locally or remotely) before cancelling on rate.
    size_t rate_min_jobs = 2;
};

struct JobResult;

/// One streamed batch notification, delivered while RunBatch is still
/// blocked: to Options::on_job_event (on the dispatcher thread) and/or
/// a caller-polled JobEventQueue. Every job produces exactly one
/// kJobCompleted event — including jobs cancelled before dispatch.
struct JobEvent {
    enum class Kind {
        kJobStarted,    ///< A worker began running the job.
        kJobCompleted,  ///< The job reached a terminal status.
        kBatchProgress, ///< Snapshot emitted after each completion.
        kMetrics,       ///< Periodic metrics snapshot (metrics_json).
    };
    Kind kind = Kind::kJobStarted;
    size_t job_index = 0;
    std::string workload;
    std::string label;
    /// Terminal status and its attribution (kJobCompleted only).
    JobStatus status = JobStatus::kCompleted;
    std::string stop_source;
    size_t corpus_inserted = 0;
    /// kJobCompleted only: the job's full result, shared so the event
    /// stays cheap to copy through the dispatcher queue. The shard
    /// worker streams these over heartbeats so a dying shard's finished
    /// work survives it; by emit time the result's corpus inserts are
    /// already visible in the shared corpus (RunJob inserts before the
    /// completion event fires).
    std::shared_ptr<const JobResult> result;
    /// Batch snapshot at emit time (every kind).
    size_t jobs_finished = 0;
    size_t jobs_total = 0;
    size_t corpus_size = 0;
    double elapsed_seconds = 0.0;
    /// kMetrics only: a rendered obs::MetricsSnapshot (the
    /// WriteMetricsSnapshot schema). Kept as JSON text so the event type
    /// stays cheap to copy for the common kinds. Emitted after a job
    /// completion once Options::metrics_interval_seconds has elapsed
    /// since the previous snapshot — piggybacked, no extra ticker thread,
    /// so granularity is bounded by job duration.
    std::string metrics_json;
};

const char* JobEventKindName(JobEvent::Kind kind);

/// Outcome of one job.
struct JobResult {
    size_t job_index = 0;
    std::string workload;
    std::string label;
    JobStatus status = JobStatus::kCompleted;
    /// Human-readable failure reason when status == kFailed, or the
    /// cancellation reason when status == kCancelled.
    std::string error;
    /// What ended the session: "none" (ran to exhaustion/budget),
    /// "service_stop" (RequestStop), "service_budget" (the service-wide
    /// wall clock), "job_hook" (the spec's own stop_requested hook —
    /// reported kCompleted, since the job's declared budget is not a
    /// service cancellation), or "plateau" (PlateauPolicy cancelled the
    /// job before dispatch).
    std::string stop_source = "none";
    /// The seed the session actually ran with (derived, deterministic in
    /// (service_seed, job_index, spec seed) and independent of worker
    /// count or scheduling order).
    uint64_t seed_used = 0;
    /// All completed runs of the session.
    size_t num_test_cases = 0;
    /// Runs that covered a high-level path new to this session — the
    /// paper's relevant test cases, and the candidates offered to the
    /// shared corpus.
    size_t num_relevant_test_cases = 0;
    /// Candidates the shared corpus accepted as globally new. Depends on
    /// cross-job insertion order, so it is *not* deterministic across
    /// worker counts (the deduplicated corpus itself is).
    size_t corpus_inserted = 0;
    EngineStats engine_stats;
};

/// Aggregate statistics across every batch a service instance has run.
struct ServiceStats {
    size_t jobs_submitted = 0;
    size_t jobs_completed = 0;
    size_t jobs_cancelled = 0;
    size_t jobs_failed = 0;
    /// Jobs cancelled before dispatch because their workload crossed
    /// PlateauPolicy::cancel_after (subset of jobs_cancelled).
    size_t jobs_plateau_cancelled = 0;
    uint64_t ll_paths = 0;
    uint64_t hl_paths = 0;
    uint64_t hangs = 0;
    uint64_t solver_queries = 0;
    /// Solver hot-path telemetry, summed across sessions: queries that
    /// independence slicing split, SAT calls served incrementally, and
    /// CNF clauses loaded into the CDCL backend.
    uint64_t solver_sliced_queries = 0;
    uint64_t solver_incremental_sat_calls = 0;
    uint64_t solver_clauses_loaded = 0;
    /// Sum of per-session solver wall times (the quantity solver-cache
    /// sharing exists to shrink).
    double solver_seconds = 0.0;
    /// Whether the last batch ran with a batch-shared solver cache.
    bool solver_cache_shared = false;
    /// Shared-solver-cache counters, accumulated across batches (0 when
    /// sharing is off). Hits/misses depend on cross-worker interleaving,
    /// so they are throughput telemetry, not deterministic quantities.
    uint64_t shared_cache_hits = 0;
    uint64_t shared_cache_misses = 0;
    uint64_t shared_cache_inserts = 0;
    uint64_t shared_cache_evictions = 0;
    uint64_t shared_cache_model_hits = 0;
    /// Shared-cache gauges after the last batch.
    size_t shared_cache_bytes = 0;
    size_t shared_cache_entries = 0;
    /// Size of the shared deduplicated corpus after the last batch.
    size_t corpus_size = 0;
    /// Sum of per-session engine wall times (CPU-side work measure).
    double engine_seconds = 0.0;
    /// Wall time spent inside RunBatch.
    double wall_seconds = 0.0;
    /// jobs_completed / wall_seconds (0 when no time has elapsed).
    double jobs_per_second = 0.0;
    size_t num_workers = 0;
    /// Default intra-session exploration threads per job in the last
    /// batch (the effective per-job value is in each
    /// JobResult::engine_stats.threads_used).
    uint32_t engine_threads = 1;
    /// Jobs granted exploration threads above the fair per-worker core
    /// share because their workload's expected yield was unknown or
    /// high (accumulated across batches).
    size_t wide_sessions_granted = 0;
    /// Dispatch order of the last batch.
    SchedulePolicy schedule_policy = SchedulePolicy::kYieldPriority;
    /// Streamed events handed to Options::on_job_event / the event
    /// queue, accumulated across batches (0 when streaming is off).
    uint64_t events_delivered = 0;
};

}  // namespace chef::service

#endif  // CHEF_SERVICE_JOB_H_
