#ifndef CHEF_SERVICE_CORPUS_H_
#define CHEF_SERVICE_CORPUS_H_

/// \file
/// Shared, deduplicated test corpus.
///
/// Worker threads running independent symbolic-test sessions offer their
/// relevant test cases here. Entries are keyed by (workload id, high-level
/// path fingerprint), so the same high-level path rediscovered by another
/// session — or the same session re-run under a different seed — collapses
/// to one corpus entry. All operations are mutex-guarded; the corpus is
/// the only data shared between workers.

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace chef::service {

class TestCorpus
{
  public:
    /// One deduplicated high-level test case.
    struct Entry {
        std::string workload;
        /// Session-independent high-level path fingerprint
        /// (TestCase::hl_path_fingerprint).
        uint64_t fingerprint = 0;
        /// Job that first contributed the entry (scheduling-dependent).
        size_t job_index = 0;
        std::string outcome_kind;
        std::string outcome_detail;
        size_t hl_length = 0;
        uint64_t ll_steps = 0;
        /// Concrete input assignment (variable id, value) reproducing the
        /// path.
        std::vector<std::pair<uint32_t, uint64_t>> inputs;
    };

    /// The dedup identity. Entries are keyed on the actual pair (the
    /// hash below is bucketing only), so distinct paths can never be
    /// silently merged by a hash collision at this layer.
    using Key = std::pair<std::string, uint64_t>;

    /// Per-workload corpus-yield telemetry, recorded once per completed
    /// job and read by the batch scheduler to weight pending jobs by
    /// their workload's expected new-fingerprint yield.
    struct WorkloadYield {
        /// Completed jobs recorded for the workload so far.
        uint64_t jobs_recorded = 0;
        /// Candidates offered to / accepted by the corpus, summed over
        /// those jobs.
        uint64_t offered_total = 0;
        uint64_t accepted_total = 0;
        /// Exponentially decayed accepted-entries-per-job (the most
        /// recent job weighs half): the scheduler's expected yield for
        /// the workload's next job.
        double decayed_yield = 0.0;
        /// Completed jobs in a row that inserted nothing new (reset by
        /// any accepted entry). Feeds PlateauPolicy.
        uint64_t consecutive_zero_yield = 0;
    };

    /// Inserts the entry if its (workload, fingerprint) key is new.
    /// Returns true on insertion, false if a duplicate was already
    /// present (the existing entry is kept).
    bool Insert(Entry entry);

    bool Contains(const std::string& workload, uint64_t fingerprint) const;

    size_t size() const;

    /// Copy of entries ordered by (workload, fingerprint) — a stable
    /// order independent of discovery interleaving. With max_entries > 0
    /// only the first max_entries in that order are copied (entries can
    /// carry large input vectors; don't copy a huge corpus to emit a
    /// capped report).
    std::vector<Entry> Snapshot(size_t max_entries = 0) const;

    /// Sorted dedup keys. Two corpora built from the same jobs under
    /// different worker counts compare equal here.
    std::vector<Key> Keys() const;

    /// Records one completed job's corpus yield for its workload:
    /// \p offered candidates were presented, \p accepted of them were
    /// globally new.
    void RecordJobYield(const std::string& workload, size_t offered,
                        size_t accepted);

    /// Yield state for a workload; zero-initialized (jobs_recorded == 0)
    /// when no job has been recorded for it yet.
    WorkloadYield YieldFor(const std::string& workload) const;

    void Clear();

  private:
    struct KeyHash {
        size_t operator()(const Key& key) const;
    };

    mutable std::mutex mutex_;
    std::unordered_map<Key, Entry, KeyHash> entries_;
    std::unordered_map<std::string, WorkloadYield> yields_;
};

}  // namespace chef::service

#endif  // CHEF_SERVICE_CORPUS_H_
