#ifndef CHEF_SERVICE_CORPUS_H_
#define CHEF_SERVICE_CORPUS_H_

/// \file
/// Shared, deduplicated test corpus.
///
/// Worker threads running independent symbolic-test sessions offer their
/// relevant test cases here. Entries are keyed by (workload id, high-level
/// path fingerprint), so the same high-level path rediscovered by another
/// session — or the same session re-run under a different seed — collapses
/// to one corpus entry. All operations are mutex-guarded; the corpus is
/// the only data shared between workers.
///
/// For the distributed shard layer the corpus also speaks deltas: each
/// local insertion gets a monotonic sequence number, Snapshot(source,
/// since) cuts the local-origin entries newer than a high-water mark
/// (plus the current per-workload yield view), and MergeFrom() ingests a
/// remote shard's delta — fingerprints become remote-origin entries that
/// dedup local rediscovery, and the remote yield view is kept *per
/// source* and combined commutatively into YieldFor, so merge order
/// between shards cannot change the merged state.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace chef::service {

class TestCorpus
{
  public:
    /// One deduplicated high-level test case.
    struct Entry {
        std::string workload;
        /// Session-independent high-level path fingerprint
        /// (TestCase::hl_path_fingerprint).
        uint64_t fingerprint = 0;
        /// Job that first contributed the entry (scheduling-dependent).
        size_t job_index = 0;
        std::string outcome_kind;
        std::string outcome_detail;
        size_t hl_length = 0;
        uint64_t ll_steps = 0;
        /// Concrete input assignment (variable id, value) reproducing the
        /// path.
        std::vector<std::pair<uint32_t, uint64_t>> inputs;
        /// Entry arrived via MergeFrom (another shard discovered it), not
        /// a local Insert. Remote entries dedup local rediscovery but are
        /// excluded from outgoing deltas — the discovering shard reports
        /// them, so a gossip round-trip cannot echo entries forever.
        bool remote = false;
        /// Local insertion order (1-based; assigned under the mutex).
        /// Snapshot(source, since) cuts on this.
        uint64_t sequence = 0;
    };

    /// The dedup identity. Entries are keyed on the actual pair (the
    /// hash below is bucketing only), so distinct paths can never be
    /// silently merged by a hash collision at this layer.
    using Key = std::pair<std::string, uint64_t>;

    /// Per-workload corpus-yield telemetry, recorded once per completed
    /// job and read by the batch scheduler to weight pending jobs by
    /// their workload's expected new-fingerprint yield.
    struct WorkloadYield {
        /// Completed jobs recorded for the workload so far.
        uint64_t jobs_recorded = 0;
        /// Candidates offered to / accepted by the corpus, summed over
        /// those jobs.
        uint64_t offered_total = 0;
        uint64_t accepted_total = 0;
        /// Exponentially decayed accepted-entries-per-job (the most
        /// recent job weighs half): the scheduler's expected yield for
        /// the workload's next job.
        double decayed_yield = 0.0;
        /// Completed jobs in a row that inserted nothing new (reset by
        /// any accepted entry). Feeds PlateauPolicy.
        uint64_t consecutive_zero_yield = 0;
    };

    /// Ordered so serialization and comparison are deterministic.
    using YieldMap = std::map<std::string, WorkloadYield>;

    /// A corpus delta: what one shard ships to another. Entries are the
    /// source's local-origin discoveries newer than the requested
    /// high-water mark; yields are the source's full current view (small
    /// and cumulative, so resending the whole map each round keeps the
    /// merge idempotent).
    struct Delta {
        /// Identity of the producing corpus ("shard0", "coordinator").
        std::string source;
        /// Sequence high-water mark after this delta; feed back as
        /// `since` to get only newer entries next time.
        uint64_t sequence = 0;
        std::vector<Entry> entries;
        YieldMap yields;
    };

    /// Outcome of one MergeFrom call.
    struct MergeStats {
        /// Entries newly inserted from the delta.
        size_t inserted = 0;
        /// Entries already present (the cross-shard dedup count at the
        /// receiver: both shards discovered, or already gossiped, the
        /// same high-level path).
        size_t duplicates = 0;
        /// The merged per-workload yield view after the merge, for the
        /// workloads the delta touched (the ones whose merged state can
        /// have changed) — local state combined with every remote
        /// source seen so far, exactly what YieldFor serves. Other
        /// workloads are available through YieldFor on demand.
        YieldMap merged_yields;
    };

    /// Inserts the entry if its (workload, fingerprint) key is new.
    /// Returns true on insertion, false if a duplicate was already
    /// present (the existing entry is kept).
    bool Insert(Entry entry);

    bool Contains(const std::string& workload, uint64_t fingerprint) const;

    size_t size() const;

    /// Copy of entries ordered by (workload, fingerprint) — a stable
    /// order independent of discovery interleaving. With max_entries > 0
    /// only the first max_entries in that order are copied (entries can
    /// carry large input vectors; don't copy a huge corpus to emit a
    /// capped report).
    std::vector<Entry> Snapshot(size_t max_entries = 0) const;

    /// Delta snapshot for the shard layer: local-origin entries with
    /// sequence > \p since_sequence, ordered by (workload, fingerprint),
    /// plus the current local yield view, stamped with \p source.
    /// Remote-origin entries are never re-exported.
    Delta Snapshot(const std::string& source,
                   uint64_t since_sequence) const;

    /// Ingests a remote delta: entries are inserted as remote-origin
    /// (deduplicating against everything already present), and the
    /// delta's yield view *replaces* the stored view for delta.source.
    /// Keeping remote yields per source and combining them on read makes
    /// the merged state independent of merge order — merging shard A's
    /// delta then shard B's yields the same corpus and yield view as B
    /// then A (the regression contract for gossip).
    MergeStats MergeFrom(const Delta& delta);

    /// Sorted dedup keys. Two corpora built from the same jobs under
    /// different worker counts compare equal here.
    std::vector<Key> Keys() const;

    /// Records one completed job's corpus yield for its workload:
    /// \p offered candidates were presented, \p accepted of them were
    /// globally new.
    void RecordJobYield(const std::string& workload, size_t offered,
                        size_t accepted);

    /// Merged yield state for a workload — the local record combined
    /// with every remote source's view (sums for totals, max for the
    /// zero-yield streak, jobs-weighted mean for the decayed yield; all
    /// commutative). Zero-initialized (jobs_recorded == 0) when nothing
    /// local or remote has been recorded.
    WorkloadYield YieldFor(const std::string& workload) const;

    /// The local-only yield view (what Snapshot exports — never the
    /// merged view, or gossip would compound other shards' data back
    /// into itself through a round-trip).
    YieldMap LocalYields() const;

    /// Entries that arrived via MergeFrom.
    size_t remote_entries() const;

    /// Local Insert() calls rejected because a *remote-origin* entry
    /// already covered the key: exploration work another shard's gossip
    /// proved redundant (the per-shard cross-shard-dedup stat).
    size_t remote_duplicate_hits() const;

    void Clear();

  private:
    struct KeyHash {
        size_t operator()(const Key& key) const;
    };

    /// Merged local ⊕ remote view for one workload; caller holds mutex_.
    WorkloadYield CombinedYieldLocked(const std::string& workload) const;

    mutable std::mutex mutex_;
    std::unordered_map<Key, Entry, KeyHash> entries_;
    std::unordered_map<std::string, WorkloadYield> yields_;
    /// Remote yield views keyed by source, each replaced wholesale by
    /// MergeFrom for that source.
    std::map<std::string, YieldMap> remote_yields_;
    uint64_t next_sequence_ = 0;
    size_t remote_entries_ = 0;
    size_t remote_duplicate_hits_ = 0;
};

}  // namespace chef::service

#endif  // CHEF_SERVICE_CORPUS_H_
