#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "support/strings.h"
#include "workloads/registry.h"

namespace chef::service {

namespace {

using Clock = std::chrono::steady_clock;

double
SecondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

const char*
JobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::kCompleted: return "completed";
      case JobStatus::kCancelled: return "cancelled";
      case JobStatus::kFailed: return "failed";
    }
    return "?";
}

ExplorationService::ExplorationService(Options options)
    : options_(options)
{
    if (options_.num_workers == 0) {
        options_.num_workers = 1;
    }
}

uint64_t
ExplorationService::DeriveJobSeed(uint64_t service_seed, size_t job_index,
                                  uint64_t spec_seed)
{
    const uint64_t parts[3] = {service_seed,
                               static_cast<uint64_t>(job_index), spec_seed};
    return FnvHash(parts, sizeof(parts));
}

JobResult
ExplorationService::RunJob(const JobSpec& spec, size_t job_index,
                           double remaining_seconds)
{
    const auto start = Clock::now();

    JobResult result;
    result.job_index = job_index;
    result.workload = spec.workload;
    result.label = spec.label.empty() ? spec.workload : spec.label;
    result.seed_used = DeriveJobSeed(options_.seed, job_index, spec.seed);

    const workloads::WorkloadInfo* info =
        workloads::FindWorkload(spec.workload);
    if (info == nullptr) {
        result.status = JobStatus::kFailed;
        result.error = "unknown workload: " + spec.workload;
        return result;
    }

    // The service budget is enforced purely through the stop hook (not by
    // clamping max_seconds): a session that ends via the hook is
    // unambiguously "cancelled", one that exhausts its own budget is
    // "completed".
    Engine::Options engine_options = spec.options;
    engine_options.seed = result.seed_used;
    if (shared_cache_ != nullptr) {
        // Batch-level sharing overrides any cache the spec carried: one
        // cache per batch is the unit the stats and report describe.
        engine_options.solver_options.shared_cache = shared_cache_.get();
    }
    const std::function<bool()> user_stop = spec.options.stop_requested;
    engine_options.stop_requested = [this, user_stop, start,
                                     remaining_seconds] {
        if (stop_requested()) {
            return true;
        }
        if (remaining_seconds > 0.0 &&
            SecondsSince(start) >= remaining_seconds) {
            return true;
        }
        return user_stop && user_stop();
    };

    try {
        Engine engine(engine_options);
        const Engine::RunFn run = info->make_run(spec.build);
        const std::vector<TestCase> tests = engine.Explore(run);
        result.engine_stats = engine.stats();
        result.num_test_cases = tests.size();
        for (const TestCase& test : tests) {
            if (!test.new_hl_path) {
                continue;
            }
            ++result.num_relevant_test_cases;
            TestCorpus::Entry entry;
            entry.workload = spec.workload;
            entry.fingerprint = test.hl_path_fingerprint;
            entry.job_index = job_index;
            entry.outcome_kind = test.outcome_kind;
            entry.outcome_detail = test.outcome_detail;
            entry.hl_length = test.hl_length;
            entry.ll_steps = test.ll_steps;
            if (options_.record_corpus_inputs) {
                entry.inputs = test.inputs.entries();
            }
            if (corpus_.Insert(std::move(entry))) {
                ++result.corpus_inserted;
            }
        }
        result.status = result.engine_stats.stopped
                            ? JobStatus::kCancelled
                            : JobStatus::kCompleted;
    } catch (const std::exception& error) {
        result.status = JobStatus::kFailed;
        result.error = error.what();
    }
    return result;
}

std::vector<JobResult>
ExplorationService::RunBatch(const std::vector<JobSpec>& jobs)
{
    const auto batch_start = Clock::now();

    // A stop raised before this batch started targeted a *previous*
    // batch; left set it would silently cancel every job here (the
    // serial-reuse footgun). Stops raised after this line — i.e. during
    // the batch — behave as documented.
    ClearStop();

    // One shared solver cache per batch (when enabled): jobs in a batch
    // overlap heavily, across batches the workload may change entirely.
    shared_cache_.reset();
    if (options_.share_solver_cache) {
        shared_cache_ = std::make_unique<cache::SharedSolverCache>(
            options_.solver_cache_options);
    }

    std::vector<JobResult> results(jobs.size());
    std::atomic<size_t> next{0};

    auto worker = [&] {
        for (;;) {
            const size_t index =
                next.fetch_add(1, std::memory_order_relaxed);
            if (index >= jobs.size()) {
                return;
            }
            const double budget = options_.max_total_seconds;
            const double remaining =
                budget > 0.0 ? budget - SecondsSince(batch_start) : 0.0;
            if (stop_requested() || (budget > 0.0 && remaining <= 0.0)) {
                // Never dispatched: record a cancelled placeholder so the
                // batch result still lists every submitted job.
                JobResult& result = results[index];
                result.job_index = index;
                result.workload = jobs[index].workload;
                result.label = jobs[index].label.empty()
                                   ? jobs[index].workload
                                   : jobs[index].label;
                result.seed_used = DeriveJobSeed(options_.seed, index,
                                                 jobs[index].seed);
                result.status = JobStatus::kCancelled;
                result.error = stop_requested()
                                   ? "stop requested"
                                   : "service budget exhausted";
                continue;
            }
            results[index] = RunJob(jobs[index], index, remaining);
        }
    };

    const size_t pool_size =
        std::max<size_t>(1, std::min(options_.num_workers,
                                     std::max<size_t>(1, jobs.size())));
    std::vector<std::thread> pool;
    pool.reserve(pool_size);
    for (size_t i = 0; i < pool_size; ++i) {
        pool.emplace_back(worker);
    }
    for (std::thread& thread : pool) {
        thread.join();
    }

    stats_.jobs_submitted += jobs.size();
    for (const JobResult& result : results) {
        switch (result.status) {
          case JobStatus::kCompleted: ++stats_.jobs_completed; break;
          case JobStatus::kCancelled: ++stats_.jobs_cancelled; break;
          case JobStatus::kFailed: ++stats_.jobs_failed; break;
        }
        stats_.ll_paths += result.engine_stats.ll_paths;
        stats_.hl_paths += result.engine_stats.hl_paths;
        stats_.hangs += result.engine_stats.hangs;
        stats_.solver_queries += result.engine_stats.solver_queries;
        stats_.solver_sliced_queries +=
            result.engine_stats.solver_sliced_queries;
        stats_.solver_incremental_sat_calls +=
            result.engine_stats.solver_incremental_sat_calls;
        stats_.solver_clauses_loaded +=
            result.engine_stats.solver_clauses_loaded;
        stats_.solver_seconds += result.engine_stats.solver_seconds;
        stats_.engine_seconds += result.engine_stats.elapsed_seconds;
    }
    stats_.solver_cache_shared = options_.share_solver_cache;
    if (shared_cache_ != nullptr) {
        const cache::SharedSolverCache::Stats cache_stats =
            shared_cache_->stats();
        stats_.shared_cache_hits += cache_stats.hits;
        stats_.shared_cache_misses += cache_stats.misses;
        stats_.shared_cache_inserts += cache_stats.inserts;
        stats_.shared_cache_evictions += cache_stats.evictions;
        stats_.shared_cache_model_hits += cache_stats.model_reuse_hits;
        stats_.shared_cache_bytes = cache_stats.bytes;
        stats_.shared_cache_entries = cache_stats.entries;
    }
    stats_.corpus_size = corpus_.size();
    stats_.wall_seconds += SecondsSince(batch_start);
    stats_.num_workers = options_.num_workers;
    stats_.jobs_per_second =
        stats_.wall_seconds > 0.0
            ? static_cast<double>(stats_.jobs_completed) /
                  stats_.wall_seconds
            : 0.0;
    return results;
}

}  // namespace chef::service
