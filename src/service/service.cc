#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/attribution.h"
#include "obs/obs.h"
#include "obs/timeseries.h"
#include "support/json.h"
#include "support/strings.h"
#include "workloads/registry.h"

namespace chef::service {

namespace {

using Clock = std::chrono::steady_clock;

double
SecondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Which check in a job's chained stop hook fired first.
enum class StopSource {
    kNone,
    kServiceStop,
    kServiceBudget,
    kJobHook,
};

const char*
StopSourceName(StopSource source)
{
    switch (source) {
      case StopSource::kNone: return "none";
      case StopSource::kServiceStop: return "service_stop";
      case StopSource::kServiceBudget: return "service_budget";
      case StopSource::kJobHook: return "job_hook";
    }
    return "?";
}

/// The seed the session runs with: the spec's verbatim seed when the
/// shard layer pre-derived it from the global batch index, the local
/// derivation otherwise.
uint64_t
SessionSeed(const JobSpec& spec, uint64_t service_seed, size_t job_index)
{
    return spec.exact_seed
               ? spec.seed
               : ExplorationService::DeriveJobSeed(service_seed, job_index,
                                                   spec.seed);
}

}  // namespace

const char*
JobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::kCompleted: return "completed";
      case JobStatus::kCancelled: return "cancelled";
      case JobStatus::kFailed: return "failed";
    }
    return "?";
}

ExplorationService::ExplorationService(Options options)
    : options_(options)
{
    if (options_.num_workers == 0) {
        options_.num_workers = 1;
    }
}

uint64_t
ExplorationService::DeriveJobSeed(uint64_t service_seed, size_t job_index,
                                  uint64_t spec_seed)
{
    const uint64_t parts[3] = {service_seed,
                               static_cast<uint64_t>(job_index), spec_seed};
    return FnvHash(parts, sizeof(parts));
}

ExplorationService::ThreadGrant
ExplorationService::GrantExplorationThreads(const JobSpec& spec) const
{
    ThreadGrant grant;
    const uint32_t requested =
        spec.options.exploration_threads > 1
            ? spec.options.exploration_threads
            : std::max<uint32_t>(1, options_.engine_threads);
    if (requested <= 1) {
        return grant;
    }
    size_t budget = options_.core_budget;
    if (budget == 0) {
        budget = std::thread::hardware_concurrency();
        if (budget == 0) {
            budget = 1;
        }
    }
    const size_t workers = std::max<size_t>(1, options_.num_workers);
    const uint32_t fair =
        static_cast<uint32_t>(std::max<size_t>(1, budget / workers));
    if (requested <= fair) {
        grant.threads = requested;
        return grant;
    }
    // Above the fair share: only high-yield workloads get a wide
    // session. A workload with no recorded yield counts as high (its
    // yield is unknown, so exploring it fast dominates — mirroring the
    // batch scheduler's priority rule); otherwise the decayed
    // accepted-fingerprints-per-job must still be >= 1. The wide cap
    // leaves one core for every other worker.
    const TestCorpus::WorkloadYield yield = corpus_.YieldFor(spec.workload);
    const bool high_yield =
        yield.jobs_recorded == 0 || yield.decayed_yield >= 1.0;
    if (!high_yield) {
        grant.threads = fair;
        return grant;
    }
    const size_t wide_cap = budget > workers ? budget - (workers - 1) : 1;
    grant.threads = static_cast<uint32_t>(
        std::min<size_t>(requested, std::max<size_t>(fair, wide_cap)));
    grant.wide = grant.threads > fair;
    return grant;
}

void
ExplorationService::NotifyYieldsChanged()
{
    std::lock_guard<std::mutex> lock(scheduler_mutex_);
    if (active_scheduler_ != nullptr) {
        active_scheduler_->NotifyYieldsChanged();
    }
}

JobResult
ExplorationService::MakeCancelledPlaceholder(const JobSpec& spec,
                                             size_t job_index,
                                             const char* error,
                                             const char* stop_source) const
{
    JobResult result;
    result.job_index = job_index;
    result.workload = spec.workload;
    result.label = spec.label.empty() ? spec.workload : spec.label;
    result.seed_used = SessionSeed(spec, options_.seed, job_index);
    result.status = JobStatus::kCancelled;
    result.error = error;
    result.stop_source = stop_source;
    return result;
}

JobResult
ExplorationService::RunJob(const JobSpec& spec, size_t job_index,
                           double remaining_seconds)
{
    const auto start = Clock::now();

    JobResult result;
    result.job_index = job_index;
    result.workload = spec.workload;
    result.label = spec.label.empty() ? spec.workload : spec.label;
    result.seed_used = SessionSeed(spec, options_.seed, job_index);

    const workloads::WorkloadInfo* info =
        workloads::FindWorkload(spec.workload);
    if (info == nullptr) {
        result.status = JobStatus::kFailed;
        result.error = "unknown workload: " + spec.workload;
        return result;
    }

    // The service budget is enforced purely through the stop hook (not by
    // clamping max_seconds): a session that ends via the hook is
    // unambiguously "cancelled", one that exhausts its own budget is
    // "completed".
    Engine::Options engine_options = spec.options;
    engine_options.seed = result.seed_used;
    const ThreadGrant grant = GrantExplorationThreads(spec);
    engine_options.exploration_threads = grant.threads;
    if (grant.wide) {
        wide_sessions_.fetch_add(1, std::memory_order_relaxed);
    }
    if (engine_options.obs.metrics == nullptr &&
        engine_options.obs.tracer == nullptr) {
        engine_options.obs = options_.obs;
    }
    // One profiler per job, bound to the job's workload. Stack-owned:
    // the engine snapshots it into its stats before Explore returns,
    // and the solver pointers it flows to die with the engine.
    std::unique_ptr<obs::AttributionProfiler> profiler;
    if (options_.attribution &&
        engine_options.obs.attribution == nullptr) {
        profiler =
            std::make_unique<obs::AttributionProfiler>(spec.workload);
        engine_options.obs.attribution = profiler.get();
    }
    if (shared_cache_ != nullptr) {
        // Batch-level sharing overrides any cache the spec carried: one
        // cache per batch is the unit the stats and report describe.
        engine_options.solver_options.shared_cache = shared_cache_.get();
    }
    const std::function<bool()> user_stop = spec.options.stop_requested;
    // Latch which check fires first: a session ended by the spec's own
    // hook is the job's declared budget, not a service cancellation, and
    // must not be misreported as one. The hook only runs on the job's
    // engine thread, so plain shared state suffices.
    auto source = std::make_shared<StopSource>(StopSource::kNone);
    engine_options.stop_requested = [this, user_stop, start,
                                     remaining_seconds, source] {
        if (*source != StopSource::kNone) {
            return true;
        }
        if (stop_requested()) {
            *source = StopSource::kServiceStop;
            return true;
        }
        if (remaining_seconds > 0.0 &&
            SecondsSince(start) >= remaining_seconds) {
            *source = StopSource::kServiceBudget;
            return true;
        }
        if (user_stop && user_stop()) {
            *source = StopSource::kJobHook;
            return true;
        }
        return false;
    };

    try {
        // The job span is the root of each worker thread's trace row:
        // every engine/* and solver/* span of the session nests inside it
        // (the trace-validity test leans on this).
        CHEF_OBS_SPAN(job_span, options_.obs.tracer, "job", "service");
        job_span.set_detail(result.label);
        Engine engine(engine_options);
        const Engine::RunFn run = info->make_run(spec.build);
        const std::vector<TestCase> tests = engine.Explore(run);
        result.engine_stats = engine.stats();
        result.num_test_cases = tests.size();
        for (const TestCase& test : tests) {
            if (!test.new_hl_path) {
                continue;
            }
            ++result.num_relevant_test_cases;
            TestCorpus::Entry entry;
            entry.workload = spec.workload;
            entry.fingerprint = test.hl_path_fingerprint;
            entry.job_index = job_index;
            entry.outcome_kind = test.outcome_kind;
            entry.outcome_detail = test.outcome_detail;
            entry.hl_length = test.hl_length;
            entry.ll_steps = test.ll_steps;
            if (options_.record_corpus_inputs) {
                entry.inputs = test.inputs.entries();
            }
            if (corpus_.Insert(std::move(entry))) {
                ++result.corpus_inserted;
            }
        }
        if (!result.engine_stats.stopped) {
            result.status = JobStatus::kCompleted;
        } else if (*source == StopSource::kJobHook) {
            // The spec's own hook ended the session: completed within
            // its declared budget, with the source on record.
            result.status = JobStatus::kCompleted;
            result.stop_source = StopSourceName(StopSource::kJobHook);
        } else {
            const StopSource attributed =
                *source == StopSource::kNone ? StopSource::kServiceStop
                                             : *source;
            result.status = JobStatus::kCancelled;
            result.stop_source = StopSourceName(attributed);
            result.error = attributed == StopSource::kServiceBudget
                               ? "service budget exhausted"
                               : "stop requested";
        }
    } catch (const std::exception& error) {
        result.status = JobStatus::kFailed;
        result.error = error.what();
    }
    if (options_.obs.metrics != nullptr) {
        options_.obs.metrics->histogram("service.job_seconds")
            ->Record(SecondsSince(start));
    }
    if (!result.engine_stats.attribution.empty()) {
        std::lock_guard<std::mutex> lock(attribution_mutex_);
        attribution_.MergeFrom(result.engine_stats.attribution);
    }
    return result;
}

obs::AttributionSnapshot
ExplorationService::attribution() const
{
    std::lock_guard<std::mutex> lock(attribution_mutex_);
    return attribution_;
}

std::vector<JobResult>
ExplorationService::RunBatch(const std::vector<JobSpec>& jobs)
{
    const auto batch_start = Clock::now();

    // A stop raised before this batch started targeted a *previous*
    // batch; left set it would silently cancel every job here (the
    // serial-reuse footgun). Stops raised after this line — i.e. during
    // the batch — behave as documented.
    ClearStop();

    // One shared solver cache per batch (when enabled): jobs in a batch
    // overlap heavily, across batches the workload may change entirely.
    shared_cache_.reset();
    if (options_.share_solver_cache) {
        shared_cache_ = std::make_unique<cache::SharedSolverCache>(
            options_.solver_cache_options);
    }

    std::vector<JobResult> results(jobs.size());

    // Streamed events are produced by workers but delivered off the
    // worker threads, by one dispatcher thread: a slow Options::
    // on_job_event consumer back-pressures this (unbounded) queue, not
    // the exploration.
    struct EventPump {
        std::mutex mutex;
        std::condition_variable cv;
        std::deque<JobEvent> queue;
        bool done = false;
        uint64_t delivered = 0;
    };
    const bool streaming = static_cast<bool>(options_.on_job_event) ||
                           options_.event_queue != nullptr;
    EventPump pump;
    std::thread dispatcher;
    if (streaming) {
        dispatcher = std::thread([this, &pump] {
            for (;;) {
                JobEvent event;
                {
                    std::unique_lock<std::mutex> lock(pump.mutex);
                    pump.cv.wait(lock, [&pump] {
                        return !pump.queue.empty() || pump.done;
                    });
                    if (pump.queue.empty()) {
                        return;  // done, and fully drained
                    }
                    event = std::move(pump.queue.front());
                    pump.queue.pop_front();
                    ++pump.delivered;
                }
                if (options_.on_job_event) {
                    options_.on_job_event(event);
                }
                if (options_.event_queue != nullptr) {
                    options_.event_queue->Push(std::move(event));
                }
            }
        });
    }
    std::atomic<size_t> jobs_finished{0};
    // Serializes the finished-counter increment with the enqueue of the
    // events that snapshot it, so streamed kBatchProgress events are
    // monotone in jobs_finished even when workers complete back-to-back.
    std::mutex completion_order_mutex;
    // Periodic kMetrics emission is piggybacked on job completions: the
    // completing worker that first observes the interval elapsed wins the
    // CAS and renders one snapshot. No ticker thread, so cadence is
    // bounded below by job duration.
    std::atomic<double> last_metrics_emit{0.0};
    const bool metrics_events = options_.obs.metrics != nullptr &&
                                options_.metrics_interval_seconds > 0.0;
    auto emit = [&](JobEvent event) {
        if (!streaming) {
            return;
        }
        event.jobs_total = jobs.size();
        event.corpus_size = corpus_.size();
        event.elapsed_seconds = SecondsSince(batch_start);
        {
            std::lock_guard<std::mutex> lock(pump.mutex);
            pump.queue.push_back(std::move(event));
        }
        pump.cv.notify_one();
    };

    BatchScheduler::Options scheduler_options;
    scheduler_options.policy = options_.schedule_policy;
    scheduler_options.plateau = options_.plateau_policy;
    scheduler_options.obs = options_.obs;
    std::vector<std::string> job_workloads;
    job_workloads.reserve(jobs.size());
    for (const JobSpec& spec : jobs) {
        job_workloads.push_back(spec.workload);
    }
    BatchScheduler scheduler(std::move(job_workloads), &corpus_,
                             scheduler_options);
    {
        // Published so NotifyYieldsChanged (remote gossip merges) can
        // reach the in-flight batch's scheduler from other threads.
        std::lock_guard<std::mutex> lock(scheduler_mutex_);
        active_scheduler_ = &scheduler;
    }

    if (options_.obs.metrics != nullptr) {
        // Pre-register the time-series instruments (and each workload's
        // variants) so the first recorder sample already carries them
        // at zero — coverage curves start at the origin instead of at
        // the first completion.
        obs::MetricsRegistry* metrics = options_.obs.metrics;
        metrics->counter(obs::kJobsFinishedCounter);
        metrics->counter(obs::kFingerprintsNewCounter);
        metrics->gauge(obs::kCorpusSizeGauge)
            ->Set(static_cast<int64_t>(corpus_.size()));
        for (const JobSpec& spec : jobs) {
            metrics->counter(std::string(obs::kJobsFinishedCounter) + "." +
                             spec.workload);
            metrics->counter(std::string(obs::kFingerprintsNewCounter) +
                             "." + spec.workload);
        }
    }
    // Time-series sampling: when the caller supplied a recorder, a
    // ticker thread samples the registry at the recorder's cadence for
    // the life of the batch. One sample lands before any job runs and a
    // final one after all accounting, so the curve spans the whole
    // batch and its last point equals the final counters.
    obs::TimeSeriesRecorder* recorder =
        options_.obs.timeseries_enabled() ? options_.obs.timeseries
                                          : nullptr;
    std::thread sampler;
    std::mutex sampler_mutex;
    std::condition_variable sampler_cv;
    bool sampler_done = false;
    if (recorder != nullptr) {
        recorder->SampleNow(*options_.obs.metrics);
        sampler = std::thread([&] {
            const auto interval = std::chrono::duration<double>(
                recorder->options().interval_seconds);
            std::unique_lock<std::mutex> lock(sampler_mutex);
            while (!sampler_cv.wait_for(lock, interval,
                                        [&] { return sampler_done; })) {
                recorder->SampleNow(*options_.obs.metrics);
            }
        });
    }

    auto worker = [&] {
        BatchScheduler::Dispatch dispatch;
        while (scheduler.Acquire(&dispatch)) {
            const size_t index = dispatch.job_index;
            const JobSpec& spec = jobs[index];
            const double budget = options_.max_total_seconds;
            const double remaining =
                budget > 0.0 ? budget - SecondsSince(batch_start) : 0.0;
            if (dispatch.plateau_cancelled) {
                results[index] = MakeCancelledPlaceholder(
                    spec, index, "workload plateaued", "plateau");
            } else if (stop_requested() ||
                       (budget > 0.0 && remaining <= 0.0)) {
                // Never dispatched: record a cancelled placeholder so the
                // batch result still lists every submitted job.
                const bool stopped = stop_requested();
                results[index] = MakeCancelledPlaceholder(
                    spec, index,
                    stopped ? "stop requested" : "service budget exhausted",
                    stopped ? StopSourceName(StopSource::kServiceStop)
                            : StopSourceName(StopSource::kServiceBudget));
            } else {
                JobEvent started;
                started.kind = JobEvent::Kind::kJobStarted;
                started.job_index = index;
                started.workload = spec.workload;
                started.label =
                    spec.label.empty() ? spec.workload : spec.label;
                started.jobs_finished =
                    jobs_finished.load(std::memory_order_relaxed);
                emit(std::move(started));
                results[index] = RunJob(spec, index, remaining);
                if (results[index].status == JobStatus::kCompleted) {
                    // Only completed sessions carry a yield signal:
                    // failures never explored, and a session cut off
                    // mid-run by a stop or the service budget would
                    // record an artificially low yield into the
                    // corpus's persistent per-workload state, polluting
                    // priority order and plateau streaks for later
                    // batches on a serially reused service.
                    scheduler.OnJobCompleted(
                        spec.workload,
                        results[index].num_relevant_test_cases,
                        results[index].corpus_inserted);
                }
            }
            std::unique_lock<std::mutex> completion_order(
                completion_order_mutex);
            const size_t finished =
                jobs_finished.fetch_add(1, std::memory_order_relaxed) + 1;
            const JobResult& result = results[index];
            if (options_.obs.metrics != nullptr) {
                // Per-completion counters, bumped as results land (the
                // post-batch service.jobs_* totals only move once the
                // whole batch drains — useless for a time series).
                obs::MetricsRegistry* metrics = options_.obs.metrics;
                metrics->counter(obs::kJobsFinishedCounter)->Add();
                metrics
                    ->counter(std::string(obs::kJobsFinishedCounter) + "." +
                              result.workload)
                    ->Add();
                if (result.corpus_inserted > 0) {
                    metrics->counter(obs::kFingerprintsNewCounter)
                        ->Add(result.corpus_inserted);
                    metrics
                        ->counter(std::string(obs::kFingerprintsNewCounter) +
                                  "." + result.workload)
                        ->Add(result.corpus_inserted);
                }
                metrics->gauge(obs::kCorpusSizeGauge)
                    ->Set(static_cast<int64_t>(corpus_.size()));
            }
            JobEvent completed;
            completed.kind = JobEvent::Kind::kJobCompleted;
            completed.job_index = index;
            completed.workload = result.workload;
            completed.label = result.label;
            completed.status = result.status;
            completed.stop_source = result.stop_source;
            completed.corpus_inserted = result.corpus_inserted;
            completed.jobs_finished = finished;
            if (streaming) {
                completed.result = std::make_shared<JobResult>(result);
            }
            emit(std::move(completed));
            JobEvent progress;
            progress.kind = JobEvent::Kind::kBatchProgress;
            progress.job_index = index;
            progress.workload = result.workload;
            progress.jobs_finished = finished;
            emit(std::move(progress));
            completion_order.unlock();
            if (streaming && metrics_events) {
                const double now = SecondsSince(batch_start);
                double last =
                    last_metrics_emit.load(std::memory_order_relaxed);
                if (now - last >= options_.metrics_interval_seconds &&
                    last_metrics_emit.compare_exchange_strong(last, now)) {
                    support::JsonWriter json;
                    obs::WriteMetricsSnapshot(
                        json, options_.obs.metrics->Snapshot());
                    JobEvent metrics;
                    metrics.kind = JobEvent::Kind::kMetrics;
                    metrics.job_index = index;
                    metrics.workload = result.workload;
                    metrics.jobs_finished = finished;
                    metrics.metrics_json = json.Take();
                    emit(std::move(metrics));
                }
            }
        }
    };

    const size_t pool_size =
        std::max<size_t>(1, std::min(options_.num_workers,
                                     std::max<size_t>(1, jobs.size())));
    std::vector<std::thread> pool;
    pool.reserve(pool_size);
    for (size_t i = 0; i < pool_size; ++i) {
        pool.emplace_back(worker);
    }
    for (std::thread& thread : pool) {
        thread.join();
    }
    if (sampler.joinable()) {
        {
            std::lock_guard<std::mutex> lock(sampler_mutex);
            sampler_done = true;
        }
        sampler_cv.notify_one();
        sampler.join();
    }
    {
        std::lock_guard<std::mutex> lock(scheduler_mutex_);
        active_scheduler_ = nullptr;
    }
    if (streaming) {
        {
            std::lock_guard<std::mutex> lock(pump.mutex);
            pump.done = true;
        }
        pump.cv.notify_one();
        dispatcher.join();
        stats_.events_delivered += pump.delivered;
    }

    stats_.jobs_submitted += jobs.size();
    obs::Counter* m_completed = nullptr;
    obs::Counter* m_cancelled = nullptr;
    obs::Counter* m_failed = nullptr;
    if (options_.obs.metrics != nullptr) {
        m_completed = options_.obs.metrics->counter("service.jobs_completed");
        m_cancelled = options_.obs.metrics->counter("service.jobs_cancelled");
        m_failed = options_.obs.metrics->counter("service.jobs_failed");
    }
    for (const JobResult& result : results) {
        switch (result.status) {
          case JobStatus::kCompleted:
            ++stats_.jobs_completed;
            if (m_completed != nullptr) {
                m_completed->Add();
            }
            break;
          case JobStatus::kCancelled:
            ++stats_.jobs_cancelled;
            if (m_cancelled != nullptr) {
                m_cancelled->Add();
            }
            break;
          case JobStatus::kFailed:
            ++stats_.jobs_failed;
            if (m_failed != nullptr) {
                m_failed->Add();
            }
            break;
        }
        if (result.stop_source == "plateau") {
            ++stats_.jobs_plateau_cancelled;
        }
        stats_.ll_paths += result.engine_stats.ll_paths;
        stats_.hl_paths += result.engine_stats.hl_paths;
        stats_.hangs += result.engine_stats.hangs;
        stats_.solver_queries += result.engine_stats.solver_queries;
        stats_.solver_sliced_queries +=
            result.engine_stats.solver_sliced_queries;
        stats_.solver_incremental_sat_calls +=
            result.engine_stats.solver_incremental_sat_calls;
        stats_.solver_clauses_loaded +=
            result.engine_stats.solver_clauses_loaded;
        stats_.solver_seconds += result.engine_stats.solver_seconds;
        stats_.engine_seconds += result.engine_stats.elapsed_seconds;
    }
    stats_.solver_cache_shared = options_.share_solver_cache;
    if (shared_cache_ != nullptr) {
        const cache::SharedSolverCache::Stats cache_stats =
            shared_cache_->stats();
        stats_.shared_cache_hits += cache_stats.hits;
        stats_.shared_cache_misses += cache_stats.misses;
        stats_.shared_cache_inserts += cache_stats.inserts;
        stats_.shared_cache_evictions += cache_stats.evictions;
        stats_.shared_cache_model_hits += cache_stats.model_reuse_hits;
        stats_.shared_cache_bytes = cache_stats.bytes;
        stats_.shared_cache_entries = cache_stats.entries;
    }
    stats_.corpus_size = corpus_.size();
    stats_.wall_seconds += SecondsSince(batch_start);
    stats_.num_workers = options_.num_workers;
    stats_.engine_threads = std::max<uint32_t>(1, options_.engine_threads);
    stats_.wide_sessions_granted +=
        wide_sessions_.exchange(0, std::memory_order_relaxed);
    stats_.schedule_policy = options_.schedule_policy;
    stats_.jobs_per_second =
        stats_.wall_seconds > 0.0
            ? static_cast<double>(stats_.jobs_completed) /
                  stats_.wall_seconds
            : 0.0;
    if (recorder != nullptr) {
        // Final sample after all accounting: the series' last point
        // matches the batch's final counters exactly, which the
        // coverage-CSV-vs-report smoke assertion relies on.
        recorder->SampleNow(*options_.obs.metrics);
    }
    return results;
}

}  // namespace chef::service
