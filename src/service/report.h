#ifndef CHEF_SERVICE_REPORT_H_
#define CHEF_SERVICE_REPORT_H_

/// \file
/// JSON reporting for exploration-service batches.
///
/// Renders ServiceStats, per-job results, and the deduplicated corpus as
/// one JSON document with stable key order, so benches, examples, and
/// external tooling can consume a batch outcome without linking against
/// the service types.

#include <string>
#include <vector>

#include "service/corpus.h"
#include "service/job.h"
#include "support/json.h"

namespace chef::service {

/// Controls how much of the batch goes into the report.
struct ReportOptions {
    bool include_jobs = true;
    bool include_corpus = true;
    /// Cap on emitted corpus entries (0 = unlimited). The report records
    /// the full corpus size either way, and the `corpus_truncated` field
    /// counts the entries the cap dropped (0 when the array is the whole
    /// corpus) so consumers can tell a small corpus from a clipped one.
    size_t max_corpus_entries = 0;
    /// Include concrete input assignments per corpus entry.
    bool include_inputs = true;
};

/// Renders the batch outcome as a JSON document (pure ASCII, no
/// trailing newline). 64-bit identities (path fingerprints, seeds) are
/// emitted as "0x..." hex strings, not numbers, so double-based JSON
/// consumers cannot round them.
std::string RenderJsonReport(const ServiceStats& stats,
                             const std::vector<JobResult>& results,
                             const TestCorpus& corpus,
                             const ReportOptions& options = {});

/// Writes one ServiceStats object into an in-progress document — the
/// same key set RenderJsonReport emits under "stats". Exposed so the
/// shard layer's wire format and merged coordinator report serialize
/// per-shard stats with the identical schema.
void WriteServiceStats(support::JsonWriter& json, const ServiceStats& stats);

/// Writes one per-job result object — the element schema of
/// RenderJsonReport's "jobs" array. Exposed for the shard wire format.
void WriteJobResult(support::JsonWriter& json, const JobResult& result);

/// Writes the report to a file; returns false on I/O error.
bool WriteJsonReportFile(const std::string& path,
                         const ServiceStats& stats,
                         const std::vector<JobResult>& results,
                         const TestCorpus& corpus,
                         const ReportOptions& options = {});

/// The escaping/writing machinery lives in support/json.h now (shared
/// with the shard wire format); this keeps existing call sites working.
using support::JsonEscape;

}  // namespace chef::service

#endif  // CHEF_SERVICE_REPORT_H_
