#include "service/scheduler.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>
#include <utility>

namespace chef::service {

const char*
SchedulePolicyName(SchedulePolicy policy)
{
    switch (policy) {
      case SchedulePolicy::kFifo: return "fifo";
      case SchedulePolicy::kYieldPriority: return "yield_priority";
    }
    return "?";
}

const char*
JobEventKindName(JobEvent::Kind kind)
{
    switch (kind) {
      case JobEvent::Kind::kJobStarted: return "job_started";
      case JobEvent::Kind::kJobCompleted: return "job_completed";
      case JobEvent::Kind::kBatchProgress: return "batch_progress";
      case JobEvent::Kind::kMetrics: return "metrics";
    }
    return "?";
}

void
JobEventQueue::Push(JobEvent event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

bool
JobEventQueue::Poll(JobEvent* event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (events_.empty()) {
        return false;
    }
    *event = std::move(events_.front());
    events_.pop_front();
    return true;
}

std::vector<JobEvent>
JobEventQueue::Drain()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<JobEvent> drained(
        std::make_move_iterator(events_.begin()),
        std::make_move_iterator(events_.end()));
    events_.clear();
    return drained;
}

size_t
JobEventQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

BatchScheduler::BatchScheduler(std::vector<std::string> workloads,
                               TestCorpus* corpus, Options options)
    : options_(options),
      workloads_(std::move(workloads)),
      corpus_(corpus),
      epoch_(std::chrono::steady_clock::now())
{
    pending_.reserve(workloads_.size());
    // Next-to-dispatch lives at the back, so seed in reverse submission
    // order; under kFifo this vector is never reordered.
    for (size_t index = workloads_.size(); index > 0; --index) {
        pending_.push_back(index - 1);
    }
    // A serially reused corpus may already hold yield history for these
    // workloads; sort before the first dispatch rather than trusting the
    // FIFO seed.
    dirty_ = options_.policy == SchedulePolicy::kYieldPriority;
}

void
BatchScheduler::Resort()
{
    CHEF_OBS_SPAN(span, options_.obs.tracer, "sched/resort", "service");
    if (options_.obs.metrics != nullptr) {
        options_.obs.metrics->counter("scheduler.resorts")->Add();
    }
    // Rank each distinct workload once per sort (YieldFor locks the
    // corpus; don't pay that inside the comparator). Lower tier beats
    // higher; within a tier, higher decayed yield beats lower; the job
    // index breaks every remaining tie, which keeps pure-FIFO order for
    // batches with no yield signal at all.
    struct Rank {
        int tier;      // 0 untried, 1 tried, 2 deprioritized, 3 cancelled
        double yield;
    };
    std::unordered_map<std::string, Rank> ranks;
    for (const size_t index : pending_) {
        const std::string& workload = workloads_[index];
        if (ranks.count(workload) != 0) {
            continue;
        }
        const TestCorpus::WorkloadYield yield = corpus_->YieldFor(workload);
        Rank rank;
        rank.yield = yield.decayed_yield;
        if (cancelled_workloads_.count(workload) != 0) {
            // Drains last: real work first, the (instant) cancellation
            // placeholders when workers have nothing better to do.
            rank.tier = 3;
        } else if (options_.plateau.enabled &&
                   yield.jobs_recorded > 0 &&
                   yield.consecutive_zero_yield >=
                       options_.plateau.deprioritize_after) {
            rank.tier = 2;
        } else if (yield.jobs_recorded == 0) {
            // Unknown yield: optimism under uncertainty. Trying every
            // workload once dominates re-running one whose curve is
            // already known (the batch-level CUPA argument).
            rank.tier = 0;
        } else {
            rank.tier = 1;
        }
        ranks.emplace(workload, rank);
    }
    const auto key = [&](size_t index) {
        const Rank& rank = ranks.at(workloads_[index]);
        return std::make_tuple(rank.tier, -rank.yield, index);
    };
    // Worst-first, so the back of the vector is the next dispatch.
    std::sort(pending_.begin(), pending_.end(),
              [&](size_t a, size_t b) { return key(a) > key(b); });
}

bool
BatchScheduler::Acquire(Dispatch* dispatch)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.empty()) {
        return false;
    }
    if (options_.policy == SchedulePolicy::kYieldPriority && dirty_) {
        Resort();
        dirty_ = false;
    }
    const size_t index = pending_.back();
    pending_.pop_back();
    dispatch->job_index = index;
    dispatch->plateau_cancelled =
        cancelled_workloads_.count(workloads_[index]) != 0;
    return true;
}

void
BatchScheduler::OnJobCompleted(const std::string& workload, size_t offered,
                               size_t accepted)
{
    corpus_->RecordJobYield(workload, offered, accepted);
    const TestCorpus::WorkloadYield yield = corpus_->YieldFor(workload);
    std::lock_guard<std::mutex> lock(mutex_);
    dirty_ = true;
    if (!options_.plateau.enabled) {
        return;
    }
    if (options_.plateau.rate_mode) {
        // Rate mode replaces the consecutive-zero-yield cancel rule
        // (deprioritization in Resort stays count-based either way).
        UpdateRateLocked(workload, yield);
    } else if (options_.plateau.cancel_after > 0 &&
               yield.consecutive_zero_yield >=
                   options_.plateau.cancel_after) {
        if (cancelled_workloads_.insert(workload).second) {
            MarkPlateauCancelled(workload);
        }
    }
}

double
BatchScheduler::NowSeconds() const
{
    if (options_.now_seconds) {
        return options_.now_seconds();
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
}

void
BatchScheduler::UpdateRateLocked(const std::string& workload,
                                 const TestCorpus::WorkloadYield& yield)
{
    if (cancelled_workloads_.count(workload) != 0) {
        return;
    }
    const double now = NowSeconds();
    std::deque<RateObservation>& window = rate_windows_[workload];
    window.push_back(RateObservation{now, yield.accepted_total});
    // Keep the front as the *newest* observation at least a full
    // window old, so the measured span is as close to the window as
    // the data allows (never shorter).
    while (window.size() >= 2 &&
           now - window[1].t >= options_.plateau.rate_window_seconds) {
        window.pop_front();
    }
    const RateObservation& baseline = window.front();
    const double dt = now - baseline.t;
    if (dt < options_.plateau.rate_window_seconds ||
        yield.jobs_recorded < options_.plateau.rate_min_jobs) {
        return;  // Not enough history to judge the rate yet.
    }
    const uint64_t gained =
        yield.accepted_total > baseline.accepted_total
            ? yield.accepted_total - baseline.accepted_total
            : 0;
    if (static_cast<double>(gained) / dt <
        options_.plateau.min_yield_per_second) {
        if (cancelled_workloads_.insert(workload).second) {
            MarkPlateauCancelled(workload);
        }
    }
}

void
BatchScheduler::MarkPlateauCancelled(const std::string& workload)
{
    if (options_.obs.metrics != nullptr) {
        options_.obs.metrics->counter("scheduler.plateau_cancels")->Add();
    }
    if (options_.obs.tracer != nullptr) {
        options_.obs.tracer->RecordInstant("sched/plateau_cancel", "service",
                                           workload);
    }
}

void
BatchScheduler::NotifyYieldsChanged()
{
    std::lock_guard<std::mutex> lock(mutex_);
    dirty_ = true;
    if (!options_.plateau.enabled) {
        return;
    }
    if (!options_.plateau.rate_mode && options_.plateau.cancel_after == 0) {
        return;
    }
    // Remote yield can push a pending workload past its plateau
    // threshold without any local job completing; OnJobCompleted would
    // never see it.
    std::unordered_set<std::string> seen;
    for (const size_t index : pending_) {
        const std::string& workload = workloads_[index];
        if (cancelled_workloads_.count(workload) != 0 ||
            !seen.insert(workload).second) {
            continue;
        }
        const TestCorpus::WorkloadYield yield =
            corpus_->YieldFor(workload);
        if (options_.plateau.rate_mode) {
            UpdateRateLocked(workload, yield);
        } else if (yield.consecutive_zero_yield >=
                   options_.plateau.cancel_after) {
            if (cancelled_workloads_.insert(workload).second) {
                MarkPlateauCancelled(workload);
            }
        }
    }
}

size_t
BatchScheduler::pending() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_.size();
}

}  // namespace chef::service
