#ifndef CHEF_SERVICE_SCHEDULER_H_
#define CHEF_SERVICE_SCHEDULER_H_

/// \file
/// Yield-weighted batch scheduling and the streaming event queue.
///
/// BatchScheduler replaces RunBatch's FIFO index-race: workers pull from
/// a mutex-guarded priority queue whose order derives from the corpus's
/// per-workload yield tracking (TestCorpus::WorkloadYield) — exploration
/// time goes where high-level coverage is still climbing, the paper's
/// CUPA argument lifted to the batch level. The queue re-sorts lazily as
/// completed jobs land new yield data, and a PlateauPolicy first
/// deprioritizes, then cancels, workloads whose yield has flattened.
/// Ordering never changes *per-job* results for bounded jobs (each
/// session is seeded independently), so the service's worker-count
/// determinism contract is unaffected; only plateau cancellation (opt-in)
/// changes what runs.
///
/// JobEventQueue is the pollable half of the streaming surface: workers
/// produce JobEvents as jobs start and finish, a dispatcher thread
/// delivers them (see ExplorationService::Options::on_job_event), and
/// callers on any thread can poll or drain the queue while RunBatch is
/// still blocked.

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/obs.h"
#include "service/corpus.h"
#include "service/job.h"

namespace chef::service {

/// Thread-safe queue of streamed batch events. The service pushes;
/// callers poll from any thread (a dashboard ticker, a watchdog deciding
/// to RequestStop). Unbounded: a batch emits at most ~3 events per job.
class JobEventQueue
{
  public:
    void Push(JobEvent event);

    /// Pops the oldest event into \p event; false when empty.
    bool Poll(JobEvent* event);

    /// Pops everything at once (cheaper than a Poll loop under load).
    std::vector<JobEvent> Drain();

    size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::deque<JobEvent> events_;
};

/// Hands pending jobs of one batch to free workers, highest expected
/// yield first. All jobs are known at construction; Acquire never
/// blocks — an empty queue means the batch has drained.
class BatchScheduler
{
  public:
    struct Options {
        SchedulePolicy policy = SchedulePolicy::kYieldPriority;
        PlateauPolicy plateau;
        /// Telemetry (obs/obs.h): sched/resort spans, instant markers on
        /// plateau cancellations, scheduler.* counters.
        obs::ObsContext obs;
        /// Clock for the rate-based plateau mode, in monotone seconds.
        /// Defaults to the steady clock (seconds since scheduler
        /// construction); tests inject a fake to drive the rate window
        /// deterministically.
        std::function<double()> now_seconds;
    };

    struct Dispatch {
        size_t job_index = 0;
        /// The job was popped only to be reported cancelled: its
        /// workload crossed PlateauPolicy::cancel_after before the job
        /// was dispatched. The caller records a cancelled result instead
        /// of running it.
        bool plateau_cancelled = false;
    };

    /// \p workloads holds one workload id per submitted job (indexed by
    /// job index). Yield state is recorded into and read from \p corpus,
    /// which must outlive the scheduler.
    BatchScheduler(std::vector<std::string> workloads, TestCorpus* corpus,
                   Options options);

    /// Pops the highest-priority pending job. Returns false when no
    /// pending jobs remain.
    bool Acquire(Dispatch* dispatch);

    /// Records a dispatched job's corpus yield (\p offered candidates,
    /// \p accepted new) and re-sorts pending jobs against the updated
    /// expectations. Also advances the plateau state machine.
    void OnJobCompleted(const std::string& workload, size_t offered,
                        size_t accepted);

    /// Re-reads every pending workload's (merged) yield state from the
    /// corpus: marks the queue for a re-sort and re-runs the plateau
    /// cancellation check. Called when yield state changed *outside* a
    /// local job completion — the shard layer merging a remote gossip
    /// delta — so a workload another shard has already flattened is
    /// deprioritized or cancelled here without burning local jobs to
    /// rediscover the plateau.
    void NotifyYieldsChanged();

    size_t pending() const;

  private:
    /// Re-sorts pending_ so the back holds the next job to dispatch.
    void Resort();

    /// Telemetry for a workload newly crossing cancel_after (counter +
    /// instant trace marker). Called with mutex_ held.
    void MarkPlateauCancelled(const std::string& workload);

    double NowSeconds() const;

    /// Rate-mode plateau check: records (now, merged accepted_total)
    /// for \p workload, then cancels it once the windowed
    /// new-fingerprint rate stays below PlateauPolicy::
    /// min_yield_per_second across a full rate_window_seconds (and
    /// rate_min_jobs completions). \p yield is the *merged* view from
    /// TestCorpus::YieldFor, so gossiped remote completions move the
    /// rate too. Called with mutex_ held.
    void UpdateRateLocked(const std::string& workload,
                          const TestCorpus::WorkloadYield& yield);

    Options options_;
    std::vector<std::string> workloads_;
    TestCorpus* corpus_;
    /// Steady-clock epoch for the default now_seconds.
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mutex_;
    /// Pending job indices, next-to-dispatch at the back.
    std::vector<size_t> pending_;
    /// Yield data landed since the last sort.
    bool dirty_ = false;
    /// Workloads past PlateauPolicy::cancel_after; their pending jobs
    /// pop as plateau_cancelled.
    std::unordered_set<std::string> cancelled_workloads_;
    /// Rate mode: per-workload (t, merged accepted_total) observations,
    /// pruned so the front is the newest observation at least
    /// rate_window_seconds old.
    struct RateObservation {
        double t = 0.0;
        uint64_t accepted_total = 0;
    };
    std::unordered_map<std::string, std::deque<RateObservation>>
        rate_windows_;
};

}  // namespace chef::service

#endif  // CHEF_SERVICE_SCHEDULER_H_
