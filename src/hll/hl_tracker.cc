#include "hll/hl_tracker.h"

#include <algorithm>
#include <deque>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace chef::hll {

HlExecutionTree::HlExecutionTree()
{
    Reset();
}

void
HlExecutionTree::Reset()
{
    nodes_.clear();
    nodes_.push_back(Node{});
    num_terminals_ = 0;
}

uint32_t
HlExecutionTree::Advance(uint32_t node, uint64_t hlpc)
{
    CHEF_CHECK(node < nodes_.size());
    auto it = nodes_[node].children.find(hlpc);
    if (it != nodes_[node].children.end()) {
        return it->second;
    }
    const uint32_t child = static_cast<uint32_t>(nodes_.size());
    Node fresh;
    fresh.hlpc = hlpc;
    nodes_.push_back(std::move(fresh));
    nodes_[node].children.emplace(hlpc, child);
    return child;
}

bool
HlExecutionTree::MarkTerminal(uint32_t node)
{
    CHEF_CHECK(node < nodes_.size());
    if (nodes_[node].terminal) {
        return false;
    }
    nodes_[node].terminal = true;
    ++num_terminals_;
    return true;
}

void
HlCfg::Reset()
{
    nodes_.clear();
    branching_opcodes_.clear();
    potential_points_.clear();
    distance_.clear();
}

void
HlCfg::RecordNode(uint64_t hlpc, uint32_t opcode)
{
    NodeInfo& info = nodes_[hlpc];
    info.opcode = opcode;
    ++info.exec_count;
}

void
HlCfg::RecordEdge(uint64_t from, uint64_t to)
{
    nodes_[from].successors.insert(to);
    nodes_[to].predecessors.insert(from);
}

void
HlCfg::RecomputeAnalysis(double drop_fraction)
{
    branching_opcodes_.clear();
    potential_points_.clear();
    distance_.clear();

    // Step 1 (§3.4): candidate branching opcodes are those of instructions
    // observed with out-degree >= 2.
    std::unordered_map<uint32_t, uint64_t> opcode_counts;
    for (const auto& [hlpc, info] : nodes_) {
        if (info.successors.size() >= 2) {
            opcode_counts[info.opcode] += info.exec_count;
        }
    }
    // Step 2: eliminate the least frequent opcodes (default 10%), which
    // correspond to exceptions and other rare control-flow events.
    uint64_t total = 0;
    for (const auto& [opcode, count] : opcode_counts) {
        total += count;
    }
    std::vector<std::pair<uint64_t, uint32_t>> by_count;
    by_count.reserve(opcode_counts.size());
    for (const auto& [opcode, count] : opcode_counts) {
        by_count.push_back({count, opcode});
    }
    std::sort(by_count.begin(), by_count.end());
    uint64_t dropped = 0;
    for (const auto& [count, opcode] : by_count) {
        if (total > 0 &&
            static_cast<double>(dropped + count) <=
                drop_fraction * static_cast<double>(total)) {
            dropped += count;
            continue;
        }
        branching_opcodes_.insert(opcode);
    }

    // Step 3: potential branching points have a branching opcode but only
    // one successor so far.
    for (const auto& [hlpc, info] : nodes_) {
        if (info.successors.size() == 1 &&
            branching_opcodes_.count(info.opcode)) {
            potential_points_.insert(hlpc);
        }
    }

    // Step 4: multi-source BFS on reversed edges computes, for every
    // instruction, the forward distance to the nearest potential branching
    // point.
    std::deque<uint64_t> queue;
    for (uint64_t hlpc : potential_points_) {
        distance_[hlpc] = 0;
        queue.push_back(hlpc);
    }
    while (!queue.empty()) {
        const uint64_t hlpc = queue.front();
        queue.pop_front();
        const uint32_t d = distance_[hlpc];
        auto it = nodes_.find(hlpc);
        if (it == nodes_.end()) {
            continue;
        }
        for (uint64_t pred : it->second.predecessors) {
            if (!distance_.count(pred)) {
                distance_[pred] = d + 1;
                queue.push_back(pred);
            }
        }
    }
}

bool
HlCfg::IsBranchingOpcode(uint32_t opcode) const
{
    return branching_opcodes_.count(opcode) > 0;
}

bool
HlCfg::IsPotentialBranchPoint(uint64_t hlpc) const
{
    return potential_points_.count(hlpc) > 0;
}

uint32_t
HlCfg::DistanceToBranchPoint(uint64_t hlpc) const
{
    auto it = distance_.find(hlpc);
    return it == distance_.end() ? UINT32_MAX : it->second;
}

double
HlCfg::DistanceWeight(uint64_t hlpc) const
{
    const uint32_t d = DistanceToBranchPoint(hlpc);
    if (d == UINT32_MAX) {
        // Unreachable from any potential branching point: keep a small
        // residual weight so such classes are not starved entirely.
        return 1e-3;
    }
    return 1.0 / static_cast<double>(1 + d);
}

HlpcTracker::HlpcTracker() = default;

void
HlpcTracker::Attach(lowlevel::LowLevelRuntime* runtime)
{
    runtime_ = runtime;
    runtime->set_log_pc_hook(
        [this](uint64_t hlpc, uint32_t opcode) { OnLogPc(hlpc, opcode); });
}

void
HlpcTracker::Reset()
{
    tree_.Reset();
    cfg_.Reset();
    BeginRun();
}

void
HlpcTracker::BeginRun()
{
    current_node_ = 0;
    last_hlpc_ = 0;
    has_last_ = false;
    trace_.clear();
}

HlPathInfo
HlpcTracker::EndRun()
{
    HlPathInfo info;
    info.final_node = current_node_;
    info.length = trace_.size();
    info.is_new_path = tree_.MarkTerminal(current_node_);
    info.path_hash =
        FnvHash(trace_.data(), trace_.size() * sizeof(uint64_t));
    return info;
}

void
HlpcTracker::OnLogPc(uint64_t hlpc, uint32_t opcode)
{
    current_node_ = tree_.Advance(current_node_, hlpc);
    cfg_.RecordNode(hlpc, opcode);
    if (has_last_) {
        cfg_.RecordEdge(last_hlpc_, hlpc);
    }
    last_hlpc_ = hlpc;
    has_last_ = true;
    trace_.push_back(hlpc);
    if (runtime_ != nullptr) {
        runtime_->SetHlPosition(hlpc, current_node_, opcode);
    }
}

}  // namespace chef::hll
