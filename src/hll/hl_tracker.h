#ifndef CHEF_HLL_HL_TRACKER_H_
#define CHEF_HLL_HL_TRACKER_H_

/// \file
/// High-level program tracking (§3.1, Figure 3 of the paper).
///
/// The interpreter's dispatch loop reports (HLPC, opcode) pairs through
/// log_pc. From the stream of reports, CHEF reconstructs:
///  - the *high-level execution tree*: the unfolded prefix tree of HLPC
///    sequences; a node is a "dynamic HLPC", the occurrence of a static
///    HLPC along a particular high-level path;
///  - the *high-level CFG*, discovered dynamically: static HLPCs with the
///    set of observed successors and execution counts;
///  - the branching-opcode inference and distance-to-potential-branching-
///    point analysis used by coverage-optimized CUPA (§3.4).

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lowlevel/runtime.h"

namespace chef::hll {

/// Prefix tree over HLPC sequences. Node ids are dense indices; node 0 is
/// the root (before the first high-level instruction).
class HlExecutionTree
{
  public:
    HlExecutionTree();

    void Reset();

    /// Returns the child of \p node labeled \p hlpc, creating it if absent.
    uint32_t Advance(uint32_t node, uint64_t hlpc);

    /// Marks that a run ended at \p node; returns true if this is the first
    /// run to end exactly there (i.e., the run covered a new high-level
    /// path).
    bool MarkTerminal(uint32_t node);

    uint64_t hlpc_of(uint32_t node) const { return nodes_[node].hlpc; }
    size_t num_nodes() const { return nodes_.size(); }
    uint64_t num_terminal_paths() const { return num_terminals_; }

  private:
    struct Node {
        uint64_t hlpc = 0;
        std::unordered_map<uint64_t, uint32_t> children;
        bool terminal = false;
    };

    std::vector<Node> nodes_;
    uint64_t num_terminals_ = 0;
};

/// Dynamically discovered high-level control-flow graph.
class HlCfg
{
  public:
    void Reset();

    /// Records execution of the instruction at \p hlpc with \p opcode.
    void RecordNode(uint64_t hlpc, uint32_t opcode);

    /// Records an observed control transfer between consecutive HLPCs.
    void RecordEdge(uint64_t from, uint64_t to);

    /// Re-runs the branching-opcode inference and the distance analysis.
    /// \p drop_fraction is the paper's cutoff eliminating the least
    /// frequent candidate opcodes (10% by default).
    void RecomputeAnalysis(double drop_fraction = 0.10);

    /// True if \p opcode was inferred to be a branching opcode.
    bool IsBranchingOpcode(uint32_t opcode) const;

    /// True if the instruction is a potential branching point: it has a
    /// branching opcode but only one observed successor.
    bool IsPotentialBranchPoint(uint64_t hlpc) const;

    /// Distance in CFG hops from \p hlpc to the nearest potential branching
    /// point; UINT32_MAX if none is reachable.
    uint32_t DistanceToBranchPoint(uint64_t hlpc) const;

    /// The paper's class weight for a static HLPC: 1/d with d the distance
    /// (capped below by 1 so potential branch points themselves weigh 1.0).
    double DistanceWeight(uint64_t hlpc) const;

    size_t num_nodes() const { return nodes_.size(); }
    size_t num_potential_branch_points() const
    {
        return potential_points_.size();
    }

  private:
    struct NodeInfo {
        uint32_t opcode = 0;
        uint64_t exec_count = 0;
        std::unordered_set<uint64_t> successors;
        std::unordered_set<uint64_t> predecessors;
    };

    std::unordered_map<uint64_t, NodeInfo> nodes_;
    std::unordered_set<uint32_t> branching_opcodes_;
    std::unordered_set<uint64_t> potential_points_;
    std::unordered_map<uint64_t, uint32_t> distance_;
};

/// Per-run summary produced by the tracker.
struct HlPathInfo {
    uint32_t final_node = 0;      ///< Dynamic HLPC where the run ended.
    size_t length = 0;            ///< Number of high-level instructions.
    bool is_new_path = false;     ///< First run to end at final_node.
    /// FNV hash of the run's static-HLPC trace. Stable across sessions
    /// (unlike final_node, which is an index into this session's dynamic
    /// tree), so parallel sessions over the same guest can compare and
    /// deduplicate high-level paths by it.
    uint64_t path_hash = 0;
};

/// Consumes log_pc events from the low-level runtime and maintains the
/// high-level structures. Install with Attach().
class HlpcTracker
{
  public:
    HlpcTracker();

    /// Wires this tracker into the runtime's log_pc hook.
    void Attach(lowlevel::LowLevelRuntime* runtime);

    /// Clears all high-level state (new symbolic test session).
    void Reset();

    /// Begins a run (rewinds the dynamic position to the tree root).
    void BeginRun();

    /// Finishes the run and reports on the high-level path covered.
    HlPathInfo EndRun();

    /// The log_pc event handler.
    void OnLogPc(uint64_t hlpc, uint32_t opcode);

    const HlExecutionTree& tree() const { return tree_; }
    HlCfg& cfg() { return cfg_; }
    const HlCfg& cfg() const { return cfg_; }

    /// Current dynamic HLPC (execution tree node of the last log_pc).
    uint32_t current_node() const { return current_node_; }

    /// The trace of static HLPCs reported so far in the current run.
    const std::vector<uint64_t>& current_trace() const { return trace_; }

  private:
    lowlevel::LowLevelRuntime* runtime_ = nullptr;
    HlExecutionTree tree_;
    HlCfg cfg_;
    uint32_t current_node_ = 0;
    uint64_t last_hlpc_ = 0;
    bool has_last_ = false;
    std::vector<uint64_t> trace_;
};

}  // namespace chef::hll

#endif  // CHEF_HLL_HL_TRACKER_H_
