#include "solver/expr.h"

#include <algorithm>
#include <unordered_set>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace chef::solver {

const char*
ExprKindName(ExprKind kind)
{
    switch (kind) {
      case ExprKind::kConstant: return "const";
      case ExprKind::kVariable: return "var";
      case ExprKind::kNot: return "not";
      case ExprKind::kNeg: return "neg";
      case ExprKind::kZExt: return "zext";
      case ExprKind::kSExt: return "sext";
      case ExprKind::kExtract: return "extract";
      case ExprKind::kAdd: return "add";
      case ExprKind::kSub: return "sub";
      case ExprKind::kMul: return "mul";
      case ExprKind::kUDiv: return "udiv";
      case ExprKind::kSDiv: return "sdiv";
      case ExprKind::kURem: return "urem";
      case ExprKind::kSRem: return "srem";
      case ExprKind::kAnd: return "and";
      case ExprKind::kOr: return "or";
      case ExprKind::kXor: return "xor";
      case ExprKind::kShl: return "shl";
      case ExprKind::kLShr: return "lshr";
      case ExprKind::kAShr: return "ashr";
      case ExprKind::kConcat: return "concat";
      case ExprKind::kEq: return "eq";
      case ExprKind::kUlt: return "ult";
      case ExprKind::kUle: return "ule";
      case ExprKind::kSlt: return "slt";
      case ExprKind::kSle: return "sle";
      case ExprKind::kIte: return "ite";
    }
    return "?";
}

uint64_t
WidthMask(int width)
{
    CHEF_CHECK(width >= 1 && width <= 64);
    return (width == 64) ? ~0ull : ((1ull << width) - 1);
}

int64_t
SignExtend(uint64_t value, int width)
{
    CHEF_CHECK(width >= 1 && width <= 64);
    if (width == 64) {
        return static_cast<int64_t>(value);
    }
    const uint64_t sign_bit = 1ull << (width - 1);
    const uint64_t masked = value & WidthMask(width);
    return static_cast<int64_t>((masked ^ sign_bit) - sign_bit);
}

Expr::Expr(ExprKind kind, int width, uint64_t value, uint32_t var_id,
           std::string name, int extract_offset, ExprRef a, ExprRef b,
           ExprRef c)
    : kind_(kind),
      width_(static_cast<uint8_t>(width)),
      extract_offset_(extract_offset),
      var_id_(var_id),
      value_(value),
      name_(std::move(name)),
      a_(std::move(a)),
      b_(std::move(b)),
      c_(std::move(c))
{
    CHEF_CHECK(width >= 1 && width <= 64);
    uint64_t h = HashCombine(static_cast<uint64_t>(kind_), width_);
    h = HashCombine(h, value_);
    h = HashCombine(h, var_id_);
    h = HashCombine(h, static_cast<uint64_t>(extract_offset_));
    if (a_) h = HashCombine(h, a_->hash());
    if (b_) h = HashCombine(h, b_->hash());
    if (c_) h = HashCombine(h, c_->hash());
    hash_ = h;
}

bool
Expr::Equal(const ExprRef& x, const ExprRef& y)
{
    if (x.get() == y.get()) {
        return true;
    }
    if (!x || !y) {
        return false;
    }
    if (x->hash_ != y->hash_ || x->kind_ != y->kind_ ||
        x->width_ != y->width_ || x->value_ != y->value_ ||
        x->var_id_ != y->var_id_ ||
        x->extract_offset_ != y->extract_offset_) {
        return false;
    }
    return Equal(x->a_, y->a_) && Equal(x->b_, y->b_) && Equal(x->c_, y->c_);
}

std::string
Expr::ToString() const
{
    switch (kind_) {
      case ExprKind::kConstant:
        return std::to_string(value_) + ":" + std::to_string(width_);
      case ExprKind::kVariable:
        return name_;
      case ExprKind::kExtract:
        return std::string("(extract ") + std::to_string(extract_offset_) +
               " " + std::to_string(width_) + " " + a_->ToString() + ")";
      default: {
        std::string out = std::string("(") + ExprKindName(kind_);
        if (kind_ == ExprKind::kZExt || kind_ == ExprKind::kSExt) {
            out += " " + std::to_string(width_);
        }
        for (const ExprRef* child : {&a_, &b_, &c_}) {
            if (*child) {
                out += " " + (*child)->ToString();
            }
        }
        out += ")";
        return out;
      }
    }
}

void
Assignment::Set(uint32_t var_id, uint64_t value)
{
    auto it = std::lower_bound(
        values_.begin(), values_.end(), var_id,
        [](const auto& entry, uint32_t id) { return entry.first < id; });
    if (it != values_.end() && it->first == var_id) {
        it->second = value;
    } else {
        values_.insert(it, {var_id, value});
    }
}

uint64_t
Assignment::Get(uint32_t var_id) const
{
    auto it = std::lower_bound(
        values_.begin(), values_.end(), var_id,
        [](const auto& entry, uint32_t id) { return entry.first < id; });
    if (it != values_.end() && it->first == var_id) {
        return it->second;
    }
    return 0;
}

bool
Assignment::Has(uint32_t var_id) const
{
    auto it = std::lower_bound(
        values_.begin(), values_.end(), var_id,
        [](const auto& entry, uint32_t id) { return entry.first < id; });
    return it != values_.end() && it->first == var_id;
}

const std::vector<std::pair<uint32_t, uint64_t>>&
Assignment::entries() const
{
    return values_;
}

namespace {

ExprRef
MakeNode(ExprKind kind, int width, ExprRef a, ExprRef b = nullptr,
         ExprRef c = nullptr, int extract_offset = 0)
{
    return std::make_shared<Expr>(kind, width, 0, 0, std::string(),
                                  extract_offset, std::move(a), std::move(b),
                                  std::move(c));
}

bool
IsConst(const ExprRef& e, uint64_t value)
{
    return e->IsConstant() && e->constant_value() == value;
}

bool
IsAllOnes(const ExprRef& e)
{
    return e->IsConstant() &&
           e->constant_value() == WidthMask(e->width());
}

}  // namespace

ExprRef
MakeConst(uint64_t value, int width)
{
    return std::make_shared<Expr>(ExprKind::kConstant, width,
                                  value & WidthMask(width), 0, std::string(),
                                  0, nullptr, nullptr, nullptr);
}

ExprRef
MakeBool(bool value)
{
    return MakeConst(value ? 1 : 0, 1);
}

ExprRef
MakeVar(uint32_t var_id, const std::string& name, int width)
{
    return std::make_shared<Expr>(ExprKind::kVariable, width, 0, var_id,
                                  name, 0, nullptr, nullptr, nullptr);
}

ExprRef
MakeNot(const ExprRef& a)
{
    if (a->IsConstant()) {
        return MakeConst(~a->constant_value(), a->width());
    }
    if (a->kind() == ExprKind::kNot) {
        return a->a();
    }
    return MakeNode(ExprKind::kNot, a->width(), a);
}

ExprRef
MakeNeg(const ExprRef& a)
{
    if (a->IsConstant()) {
        return MakeConst(-a->constant_value(), a->width());
    }
    return MakeNode(ExprKind::kNeg, a->width(), a);
}

ExprRef
MakeZExt(const ExprRef& a, int width)
{
    CHEF_CHECK(width >= a->width());
    if (width == a->width()) {
        return a;
    }
    if (a->IsConstant()) {
        return MakeConst(a->constant_value(), width);
    }
    return MakeNode(ExprKind::kZExt, width, a);
}

ExprRef
MakeSExt(const ExprRef& a, int width)
{
    CHEF_CHECK(width >= a->width());
    if (width == a->width()) {
        return a;
    }
    if (a->IsConstant()) {
        return MakeConst(
            static_cast<uint64_t>(SignExtend(a->constant_value(),
                                             a->width())),
            width);
    }
    return MakeNode(ExprKind::kSExt, width, a);
}

ExprRef
MakeExtract(const ExprRef& a, int offset, int width)
{
    CHEF_CHECK(offset >= 0 && width >= 1 && offset + width <= a->width());
    if (offset == 0 && width == a->width()) {
        return a;
    }
    if (a->IsConstant()) {
        return MakeConst(a->constant_value() >> offset, width);
    }
    // (extract off w (extract off2 w2 x)) = (extract (off+off2) w x)
    if (a->kind() == ExprKind::kExtract) {
        return MakeExtract(a->a(), offset + a->extract_offset(), width);
    }
    // Extracting the low part of a concat reaches through to the low child.
    if (a->kind() == ExprKind::kConcat) {
        const int low_width = a->b()->width();
        if (offset + width <= low_width) {
            return MakeExtract(a->b(), offset, width);
        }
        if (offset >= low_width) {
            return MakeExtract(a->a(), offset - low_width, width);
        }
    }
    // Extracting the low bits of a zext/sext that stay within the original.
    if ((a->kind() == ExprKind::kZExt || a->kind() == ExprKind::kSExt) &&
        offset + width <= a->a()->width()) {
        return MakeExtract(a->a(), offset, width);
    }
    return MakeNode(ExprKind::kExtract, width, a, nullptr, nullptr, offset);
}

#define CHEF_CHECK_SAME_WIDTH(a, b) CHEF_CHECK((a)->width() == (b)->width())

ExprRef
MakeAdd(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (a->IsConstant() && b->IsConstant()) {
        return MakeConst(a->constant_value() + b->constant_value(),
                         a->width());
    }
    if (IsConst(a, 0)) return b;
    if (IsConst(b, 0)) return a;
    return MakeNode(ExprKind::kAdd, a->width(), a, b);
}

ExprRef
MakeSub(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (a->IsConstant() && b->IsConstant()) {
        return MakeConst(a->constant_value() - b->constant_value(),
                         a->width());
    }
    if (IsConst(b, 0)) return a;
    if (Expr::Equal(a, b)) return MakeConst(0, a->width());
    return MakeNode(ExprKind::kSub, a->width(), a, b);
}

ExprRef
MakeMul(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (a->IsConstant() && b->IsConstant()) {
        return MakeConst(a->constant_value() * b->constant_value(),
                         a->width());
    }
    if (IsConst(a, 0) || IsConst(b, 0)) return MakeConst(0, a->width());
    if (IsConst(a, 1)) return b;
    if (IsConst(b, 1)) return a;
    // Multiplication by a power of two is a shift.
    for (const ExprRef* operand : {&b, &a}) {
        const ExprRef& c = *operand;
        if (c->IsConstant() &&
            (c->constant_value() & (c->constant_value() - 1)) == 0) {
            int shift = 0;
            while ((1ull << shift) != c->constant_value()) {
                ++shift;
            }
            return MakeShl(Expr::Equal(c, b) ? a : b,
                           MakeConst(static_cast<uint64_t>(shift),
                                     a->width()));
        }
    }
    return MakeNode(ExprKind::kMul, a->width(), a, b);
}

ExprRef
MakeUDiv(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (a->IsConstant() && b->IsConstant()) {
        // SMT-LIB semantics: x udiv 0 = all ones.
        if (b->constant_value() == 0) {
            return MakeConst(WidthMask(a->width()), a->width());
        }
        return MakeConst(a->constant_value() / b->constant_value(),
                         a->width());
    }
    if (IsConst(b, 1)) return a;
    // Division by a power of two is a logical shift.
    if (b->IsConstant() && (b->constant_value() &
                            (b->constant_value() - 1)) == 0 &&
        b->constant_value() != 0) {
        int shift = 0;
        while ((1ull << shift) != b->constant_value()) {
            ++shift;
        }
        return MakeLShr(a, MakeConst(static_cast<uint64_t>(shift),
                                     a->width()));
    }
    return MakeNode(ExprKind::kUDiv, a->width(), a, b);
}

ExprRef
MakeSDiv(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (a->IsConstant() && b->IsConstant()) {
        const int64_t bv = SignExtend(b->constant_value(), b->width());
        const int64_t av = SignExtend(a->constant_value(), a->width());
        if (bv == 0) {
            // SMT-LIB: x sdiv 0 = (x < 0) ? 1 : -1.
            return MakeConst(av < 0 ? 1 : WidthMask(a->width()), a->width());
        }
        if (av == INT64_MIN && bv == -1) {
            return MakeConst(a->constant_value(), a->width());
        }
        return MakeConst(static_cast<uint64_t>(av / bv), a->width());
    }
    if (IsConst(b, 1)) return a;
    return MakeNode(ExprKind::kSDiv, a->width(), a, b);
}

ExprRef
MakeURem(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (a->IsConstant() && b->IsConstant()) {
        // SMT-LIB semantics: x urem 0 = x.
        if (b->constant_value() == 0) {
            return a;
        }
        return MakeConst(a->constant_value() % b->constant_value(),
                         a->width());
    }
    if (IsConst(b, 1)) return MakeConst(0, a->width());
    // Remainder by a power of two is a mask.
    if (b->IsConstant() && (b->constant_value() &
                            (b->constant_value() - 1)) == 0 &&
        b->constant_value() != 0) {
        return MakeAnd(a, MakeConst(b->constant_value() - 1, a->width()));
    }
    return MakeNode(ExprKind::kURem, a->width(), a, b);
}

ExprRef
MakeSRem(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (a->IsConstant() && b->IsConstant()) {
        const int64_t bv = SignExtend(b->constant_value(), b->width());
        const int64_t av = SignExtend(a->constant_value(), a->width());
        if (bv == 0) {
            return a;
        }
        if (av == INT64_MIN && bv == -1) {
            return MakeConst(0, a->width());
        }
        return MakeConst(static_cast<uint64_t>(av % bv), a->width());
    }
    return MakeNode(ExprKind::kSRem, a->width(), a, b);
}

ExprRef
MakeAnd(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (a->IsConstant() && b->IsConstant()) {
        return MakeConst(a->constant_value() & b->constant_value(),
                         a->width());
    }
    if (IsConst(a, 0) || IsConst(b, 0)) return MakeConst(0, a->width());
    if (IsAllOnes(a)) return b;
    if (IsAllOnes(b)) return a;
    if (Expr::Equal(a, b)) return a;
    return MakeNode(ExprKind::kAnd, a->width(), a, b);
}

ExprRef
MakeOr(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (a->IsConstant() && b->IsConstant()) {
        return MakeConst(a->constant_value() | b->constant_value(),
                         a->width());
    }
    if (IsConst(a, 0)) return b;
    if (IsConst(b, 0)) return a;
    if (IsAllOnes(a)) return a;
    if (IsAllOnes(b)) return b;
    if (Expr::Equal(a, b)) return a;
    return MakeNode(ExprKind::kOr, a->width(), a, b);
}

ExprRef
MakeXor(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (a->IsConstant() && b->IsConstant()) {
        return MakeConst(a->constant_value() ^ b->constant_value(),
                         a->width());
    }
    if (IsConst(a, 0)) return b;
    if (IsConst(b, 0)) return a;
    if (Expr::Equal(a, b)) return MakeConst(0, a->width());
    return MakeNode(ExprKind::kXor, a->width(), a, b);
}

namespace {

/// Common shift folding: shifts of >= width bits have defined results.
ExprRef
FoldShift(ExprKind kind, const ExprRef& a, const ExprRef& b)
{
    const int width = a->width();
    if (b->IsConstant()) {
        const uint64_t amount = b->constant_value();
        if (amount == 0) {
            return a;
        }
        if (amount >= static_cast<uint64_t>(width)) {
            if (kind == ExprKind::kAShr) {
                // Fills with sign bit.
                if (a->IsConstant()) {
                    const int64_t sa = SignExtend(a->constant_value(), width);
                    return MakeConst(sa < 0 ? WidthMask(width) : 0, width);
                }
            } else {
                return MakeConst(0, width);
            }
        } else if (a->IsConstant()) {
            switch (kind) {
              case ExprKind::kShl:
                return MakeConst(a->constant_value() << amount, width);
              case ExprKind::kLShr:
                return MakeConst(
                    (a->constant_value() & WidthMask(width)) >> amount,
                    width);
              case ExprKind::kAShr:
                return MakeConst(
                    static_cast<uint64_t>(
                        SignExtend(a->constant_value(), width) >>
                        amount),
                    width);
              default:
                break;
            }
        }
    }
    return nullptr;
}

}  // namespace

ExprRef
MakeShl(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (ExprRef folded = FoldShift(ExprKind::kShl, a, b)) return folded;
    return MakeNode(ExprKind::kShl, a->width(), a, b);
}

ExprRef
MakeLShr(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (ExprRef folded = FoldShift(ExprKind::kLShr, a, b)) return folded;
    return MakeNode(ExprKind::kLShr, a->width(), a, b);
}

ExprRef
MakeAShr(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (ExprRef folded = FoldShift(ExprKind::kAShr, a, b)) return folded;
    return MakeNode(ExprKind::kAShr, a->width(), a, b);
}

ExprRef
MakeConcat(const ExprRef& high, const ExprRef& low)
{
    const int width = high->width() + low->width();
    CHEF_CHECK(width <= 64);
    if (high->IsConstant() && low->IsConstant()) {
        return MakeConst((high->constant_value() << low->width()) |
                             low->constant_value(),
                         width);
    }
    // A zero high part is a zext.
    if (IsConst(high, 0)) {
        return MakeZExt(low, width);
    }
    return MakeNode(ExprKind::kConcat, width, high, low);
}

ExprRef
MakeEq(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (a->IsConstant() && b->IsConstant()) {
        return MakeBool(a->constant_value() == b->constant_value());
    }
    if (Expr::Equal(a, b)) {
        return MakeBool(true);
    }
    // Boolean equality against a constant simplifies to the operand or its
    // negation.
    if (a->width() == 1) {
        if (a->IsConstant()) {
            return a->constant_value() ? b : MakeBoolNot(b);
        }
        if (b->IsConstant()) {
            return b->constant_value() ? a : MakeBoolNot(a);
        }
    }
    return MakeNode(ExprKind::kEq, 1, a, b);
}

ExprRef
MakeNe(const ExprRef& a, const ExprRef& b)
{
    return MakeBoolNot(MakeEq(a, b));
}

ExprRef
MakeUlt(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (a->IsConstant() && b->IsConstant()) {
        return MakeBool(a->constant_value() < b->constant_value());
    }
    if (IsConst(b, 0)) return MakeBool(false);
    if (Expr::Equal(a, b)) return MakeBool(false);
    return MakeNode(ExprKind::kUlt, 1, a, b);
}

ExprRef
MakeUle(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (a->IsConstant() && b->IsConstant()) {
        return MakeBool(a->constant_value() <= b->constant_value());
    }
    if (IsConst(a, 0)) return MakeBool(true);
    if (Expr::Equal(a, b)) return MakeBool(true);
    return MakeNode(ExprKind::kUle, 1, a, b);
}

ExprRef
MakeUgt(const ExprRef& a, const ExprRef& b)
{
    return MakeUlt(b, a);
}

ExprRef
MakeUge(const ExprRef& a, const ExprRef& b)
{
    return MakeUle(b, a);
}

ExprRef
MakeSlt(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (a->IsConstant() && b->IsConstant()) {
        return MakeBool(SignExtend(a->constant_value(), a->width()) <
                        SignExtend(b->constant_value(), b->width()));
    }
    if (Expr::Equal(a, b)) return MakeBool(false);
    return MakeNode(ExprKind::kSlt, 1, a, b);
}

ExprRef
MakeSle(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK_SAME_WIDTH(a, b);
    if (a->IsConstant() && b->IsConstant()) {
        return MakeBool(SignExtend(a->constant_value(), a->width()) <=
                        SignExtend(b->constant_value(), b->width()));
    }
    if (Expr::Equal(a, b)) return MakeBool(true);
    return MakeNode(ExprKind::kSle, 1, a, b);
}

ExprRef
MakeSgt(const ExprRef& a, const ExprRef& b)
{
    return MakeSlt(b, a);
}

ExprRef
MakeSge(const ExprRef& a, const ExprRef& b)
{
    return MakeSle(b, a);
}

ExprRef
MakeBoolAnd(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK(a->width() == 1 && b->width() == 1);
    return MakeAnd(a, b);
}

ExprRef
MakeBoolOr(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK(a->width() == 1 && b->width() == 1);
    return MakeOr(a, b);
}

ExprRef
MakeBoolNot(const ExprRef& a)
{
    CHEF_CHECK(a->width() == 1);
    return MakeNot(a);
}

bool
IsSyntacticNegation(const ExprRef& a, const ExprRef& b)
{
    CHEF_CHECK(a->width() == 1 && b->width() == 1);
    // Mirrors MakeBoolNot's folding: the negation of a kNot node is its
    // operand, the negation of anything else is a kNot wrapper, and
    // constants fold. Checking both orientations covers MakeBoolNot's
    // double-negation collapse without building a node.
    if (a->kind() == ExprKind::kNot && Expr::Equal(a->a(), b)) {
        return true;
    }
    if (b->kind() == ExprKind::kNot && Expr::Equal(b->a(), a)) {
        return true;
    }
    return a->IsConstant() && b->IsConstant() &&
           ((a->constant_value() ^ b->constant_value()) & 1) == 1;
}

ExprRef
MakeIte(const ExprRef& cond, const ExprRef& then_expr,
        const ExprRef& else_expr)
{
    CHEF_CHECK(cond->width() == 1);
    CHEF_CHECK_SAME_WIDTH(then_expr, else_expr);
    if (cond->IsConstant()) {
        return cond->constant_value() ? then_expr : else_expr;
    }
    if (Expr::Equal(then_expr, else_expr)) {
        return then_expr;
    }
    // Boolean ite with constant arms reduces to cond or its negation.
    if (then_expr->width() == 1 && then_expr->IsConstant() &&
        else_expr->IsConstant()) {
        return then_expr->constant_value() ? cond : MakeBoolNot(cond);
    }
    return MakeNode(ExprKind::kIte, then_expr->width(), cond, then_expr,
                    else_expr);
}

uint64_t
EvalConcrete(const ExprRef& expr, const Assignment& assignment)
{
    const Expr* e = expr.get();
    const int width = e->width();
    const uint64_t mask = WidthMask(width);
    switch (e->kind()) {
      case ExprKind::kConstant:
        return e->constant_value() & mask;
      case ExprKind::kVariable:
        return assignment.Get(e->var_id()) & mask;
      case ExprKind::kNot:
        return ~EvalConcrete(e->a(), assignment) & mask;
      case ExprKind::kNeg:
        return (-EvalConcrete(e->a(), assignment)) & mask;
      case ExprKind::kZExt:
        return EvalConcrete(e->a(), assignment) & mask;
      case ExprKind::kSExt:
        return static_cast<uint64_t>(
                   SignExtend(EvalConcrete(e->a(), assignment),
                              e->a()->width())) &
               mask;
      case ExprKind::kExtract:
        return (EvalConcrete(e->a(), assignment) >> e->extract_offset()) &
               mask;
      default:
        break;
    }
    if (e->kind() == ExprKind::kIte) {
        return EvalConcrete(e->a(), assignment)
                   ? EvalConcrete(e->b(), assignment)
                   : EvalConcrete(e->c(), assignment);
    }
    const uint64_t av = EvalConcrete(e->a(), assignment);
    const uint64_t bv = e->b() ? EvalConcrete(e->b(), assignment) : 0;
    const int aw = e->a()->width();
    switch (e->kind()) {
      case ExprKind::kAdd: return (av + bv) & mask;
      case ExprKind::kSub: return (av - bv) & mask;
      case ExprKind::kMul: return (av * bv) & mask;
      case ExprKind::kUDiv:
        return (bv == 0 ? mask : (av / bv)) & mask;
      case ExprKind::kURem:
        return (bv == 0 ? av : (av % bv)) & mask;
      case ExprKind::kSDiv: {
        const int64_t sa = SignExtend(av, aw);
        const int64_t sb = SignExtend(bv, aw);
        if (sb == 0) return (sa < 0 ? 1 : mask) & mask;
        if (sa == INT64_MIN && sb == -1) return av & mask;
        return static_cast<uint64_t>(sa / sb) & mask;
      }
      case ExprKind::kSRem: {
        const int64_t sa = SignExtend(av, aw);
        const int64_t sb = SignExtend(bv, aw);
        if (sb == 0) return av & mask;
        if (sa == INT64_MIN && sb == -1) return 0;
        return static_cast<uint64_t>(sa % sb) & mask;
      }
      case ExprKind::kAnd: return av & bv;
      case ExprKind::kOr: return av | bv;
      case ExprKind::kXor: return av ^ bv;
      case ExprKind::kShl:
        return (bv >= static_cast<uint64_t>(width)) ? 0 : (av << bv) & mask;
      case ExprKind::kLShr:
        return (bv >= static_cast<uint64_t>(width)) ? 0 : (av >> bv);
      case ExprKind::kAShr: {
        const int64_t sa = SignExtend(av, width);
        if (bv >= static_cast<uint64_t>(width)) {
            return (sa < 0 ? mask : 0);
        }
        return static_cast<uint64_t>(sa >> bv) & mask;
      }
      case ExprKind::kConcat:
        return ((av << e->b()->width()) | bv) & mask;
      case ExprKind::kEq: return av == bv;
      case ExprKind::kUlt: return av < bv;
      case ExprKind::kUle: return av <= bv;
      case ExprKind::kSlt:
        return SignExtend(av, aw) < SignExtend(bv, aw);
      case ExprKind::kSle:
        return SignExtend(av, aw) <= SignExtend(bv, aw);
      default:
        CHEF_UNREACHABLE("unhandled expression kind in EvalConcrete");
    }
}

namespace {

void
CollectVariablesImpl(const ExprRef& expr,
                     std::unordered_set<const Expr*>* visited,
                     std::unordered_set<uint32_t>* seen_ids,
                     std::vector<ExprRef>* out)
{
    if (!expr || visited->count(expr.get())) {
        return;
    }
    visited->insert(expr.get());
    if (expr->kind() == ExprKind::kVariable) {
        if (seen_ids->insert(expr->var_id()).second) {
            out->push_back(expr);
        }
        return;
    }
    CollectVariablesImpl(expr->a(), visited, seen_ids, out);
    CollectVariablesImpl(expr->b(), visited, seen_ids, out);
    CollectVariablesImpl(expr->c(), visited, seen_ids, out);
}

void
CountNodesImpl(const ExprRef& expr,
               std::unordered_set<const Expr*>* visited)
{
    if (!expr || visited->count(expr.get())) {
        return;
    }
    visited->insert(expr.get());
    CountNodesImpl(expr->a(), visited);
    CountNodesImpl(expr->b(), visited);
    CountNodesImpl(expr->c(), visited);
}

}  // namespace

void
CollectVariables(const ExprRef& expr, std::vector<ExprRef>* out)
{
    std::unordered_set<const Expr*> visited;
    std::unordered_set<uint32_t> seen_ids;
    for (const ExprRef& existing : *out) {
        seen_ids.insert(existing->var_id());
    }
    CollectVariablesImpl(expr, &visited, &seen_ids, out);
}

size_t
CountNodes(const ExprRef& expr)
{
    std::unordered_set<const Expr*> visited;
    CountNodesImpl(expr, &visited);
    return visited.size();
}

}  // namespace chef::solver
