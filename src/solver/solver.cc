#include "solver/solver.h"

#include <algorithm>
#include <chrono>

#include "cache/canonical.h"
#include "cache/shared_cache.h"
#include "obs/attribution.h"
#include "solver/bitblast.h"
#include "solver/independence.h"
#include "support/diagnostics.h"
#include "support/strings.h"

namespace chef::solver {

namespace {

/// Accumulates the enclosing scope's wall time into a stats field on every
/// exit path (Solve returns from many places), and optionally mirrors the
/// sample into a latency histogram and the attribution profiler (which
/// charges the same duration to the thread's ambient location, so the
/// attribution table's solver totals agree with solve_seconds).
class ScopedTimer
{
  public:
    explicit ScopedTimer(double* total, obs::Histogram* histogram = nullptr,
                         obs::AttributionProfiler* attribution = nullptr)
        : total_(total), histogram_(histogram), attribution_(attribution)
    {
    }
    ~ScopedTimer()
    {
        const auto elapsed_nanos =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count();
        const double elapsed =
            static_cast<double>(elapsed_nanos) / 1e9;
        *total_ += elapsed;
        if (histogram_ != nullptr) {
            histogram_->Record(elapsed);
        }
        if (attribution_ != nullptr) {
            attribution_->ChargeSolver(
                static_cast<uint64_t>(elapsed_nanos));
        }
    }

  private:
    double* total_;
    obs::Histogram* histogram_;
    obs::AttributionProfiler* attribution_;
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

}  // namespace

Solver::Solver(Options options) : options_(options)
{
    if (options_.obs.metrics != nullptr) {
        obs::MetricsRegistry& registry = *options_.obs.metrics;
        m_queries_ = registry.counter("solver.queries");
        m_cache_hits_ = registry.counter("solver.cache_hits");
        m_shared_cache_hits_ = registry.counter("solver.shared_cache_hits");
        m_model_reuse_hits_ = registry.counter("solver.model_reuse_hits");
        m_sat_calls_ = registry.counter("solver.sat_calls");
        m_incremental_sat_calls_ =
            registry.counter("solver.incremental_sat_calls");
        m_solve_latency_ = registry.histogram("solver.solve_seconds");
        m_sat_latency_ = registry.histogram("solver.sat_seconds");
    }
}

void
Solver::StoreLocal(uint64_t key, QueryResult result,
                   const Assignment& model,
                   const std::vector<ExprRef>& sorted_assertions)
{
    if (!options_.enable_query_cache) {
        return;
    }
    auto [it, inserted] = cache_.try_emplace(key);
    CacheEntry& entry = it->second;
    if (inserted) {
        lru_.push_front(key);
        entry.lru_it = lru_.begin();
    } else {
        // Overwriting a colliding (or re-stored) entry: retire its bytes
        // first and refresh its LRU position.
        stats_.cache_bytes -= cache::QueryEntryBytes(
            entry.key_assertions.size(), entry.model.size());
        lru_.splice(lru_.begin(), lru_, entry.lru_it);
    }
    entry.result = result;
    entry.model = result == QueryResult::kSat ? model : Assignment();
    entry.key_assertions = sorted_assertions;
    stats_.cache_bytes += cache::QueryEntryBytes(
        sorted_assertions.size(), entry.model.size());

    // Enforce the byte budget, least-recently-used first. The entry just
    // stored sits at the LRU front, so it survives unless it alone
    // exceeds the budget.
    while (options_.max_cache_bytes != 0 &&
           stats_.cache_bytes > options_.max_cache_bytes &&
           !lru_.empty()) {
        const uint64_t victim_key = lru_.back();
        auto victim = cache_.find(victim_key);
        CHEF_CHECK(victim != cache_.end());
        stats_.cache_bytes -= cache::QueryEntryBytes(
            victim->second.key_assertions.size(),
            victim->second.model.size());
        lru_.pop_back();
        cache_.erase(victim);
        ++stats_.cache_evictions;
    }
}

void
Solver::RememberModel(const Assignment& model)
{
    if (!options_.enable_model_reuse) {
        return;
    }
    recent_models_.push_front(model);
    if (recent_models_.size() > options_.model_reuse_window) {
        recent_models_.pop_back();
    }
}

QueryResult
Solver::Solve(const std::vector<ExprRef>& assertions, Assignment* model)
{
    const ScopedTimer timer(&stats_.solve_seconds, m_solve_latency_,
                            options_.obs.attribution);
    CHEF_OBS_SPAN(span, options_.obs.tracer, "solver/solve", "solver");
    ++stats_.queries;
    if (m_queries_ != nullptr) {
        m_queries_->Add();
    }

    // Constant-folded outcomes never reach the backend.
    std::vector<ExprRef> live;
    live.reserve(assertions.size());
    for (const ExprRef& assertion : assertions) {
        CHEF_CHECK(assertion->width() == 1);
        if (assertion->IsTrue()) {
            continue;
        }
        if (assertion->IsFalse()) {
            ++stats_.unsat_results;
            return QueryResult::kUnsat;
        }
        live.push_back(assertion);
    }
    if (live.empty()) {
        if (model != nullptr) {
            *model = Assignment();
        }
        ++stats_.sat_results;
        return QueryResult::kSat;
    }

    // Syntactic contradiction fast path: concolic negation queries are
    // frequently of the form {..., c, ..., !c} where the flipped branch
    // condition already appears in the prefix (input-dependent loops that
    // re-test one condition). Detect the pair structurally — without
    // allocating the negated node — before paying for anything else.
    {
        const ExprRef& last = live.back();
        for (size_t i = 0; i + 1 < live.size(); ++i) {
            if (IsSyntacticNegation(live[i], last)) {
                ++stats_.unsat_results;
                return QueryResult::kUnsat;
            }
        }
    }

    // Independence slicing: variable-disjoint slices are decided
    // separately (the conjunction is sat iff each slice is, and the union
    // of slice models is a model of the whole query). Prefix slices hit
    // their per-slice cache entries; only the slice containing the
    // freshly negated branch condition does real work.
    if (options_.enable_independence_slicing) {
        std::vector<IndependentSlice> slices = PartitionIndependent(live);
        if (slices.size() > 1) {
            CHEF_OBS_SPAN(slice_span, options_.obs.tracer, "solver/slices",
                          "solver");
            slice_span.set_detail(std::to_string(slices.size()) + " slices");
            ++stats_.sliced_queries;
            stats_.slices_solved += slices.size();
            // Whole-query shared prefetch: a sibling worker that solved
            // this exact query published it *whole* (below), so one
            // striped-lock lookup can answer every slice at once — and
            // on a sat hit the slice projections of the stored model
            // prime the local per-slice caches, so follow-up queries
            // that share a prefix slice stay entirely local.
            cache::CanonicalQuery whole;
            if (options_.shared_cache != nullptr) {
                whole.hash = cache::QueryHash(live);
                whole.sorted_assertions = cache::SortedByHash(live);
                cache::CachedResult shared_result;
                Assignment shared_model;
                if (options_.shared_cache->Lookup(whole, &shared_result,
                                                  &shared_model)) {
                    ++stats_.shared_whole_query_hits;
                    if (shared_result == cache::CachedResult::kUnsat) {
                        ++stats_.unsat_results;
                        return QueryResult::kUnsat;
                    }
                    Assignment whole_merged;
                    for (const IndependentSlice& slice : slices) {
                        Assignment slice_model;
                        for (const uint32_t var_id : slice.var_ids) {
                            // Get() zero-fills variables the stored
                            // model satisfied by absence, as in the
                            // per-slice path below.
                            const uint64_t value =
                                shared_model.Get(var_id);
                            slice_model.Set(var_id, value);
                            whole_merged.Set(var_id, value);
                        }
                        StoreLocal(cache::QueryHash(slice.assertions),
                                   QueryResult::kSat, slice_model,
                                   cache::SortedByHash(slice.assertions));
                        ++stats_.shared_slices_primed;
                    }
                    ++stats_.sat_results;
                    RememberModel(whole_merged);
                    if (model != nullptr) {
                        *model = std::move(whole_merged);
                    }
                    return QueryResult::kSat;
                }
            }
            Assignment merged;
            bool unknown = false;
            for (const IndependentSlice& slice : slices) {
                Assignment slice_model;
                const QueryResult result =
                    SolveLeaf(slice.assertions, &slice_model);
                if (result == QueryResult::kUnsat) {
                    if (options_.shared_cache != nullptr) {
                        // Any unsat slice proves the whole query unsat;
                        // publish it so siblings short-circuit the whole
                        // pipeline on one lookup.
                        options_.shared_cache->Insert(
                            whole, cache::CachedResult::kUnsat,
                            Assignment());
                    }
                    ++stats_.unsat_results;
                    return QueryResult::kUnsat;
                }
                if (result == QueryResult::kUnknown) {
                    // Keep going: a later unsat slice still decides the
                    // whole query, which a budget-starved monolithic
                    // solve could not.
                    unknown = true;
                    continue;
                }
                // Merge only the slice's own variables: a slice answered
                // from the cache or model-reuse window can carry a full
                // model whose stray entries would clobber other slices'
                // assignments. Get() turns variables such a model
                // satisfied *by absence* (absent evaluates as zero) into
                // explicit zeros, so the caller never has to guess — the
                // engine fills absent inputs with guest defaults, which
                // are not zero.
                for (const uint32_t var_id : slice.var_ids) {
                    merged.Set(var_id, slice_model.Get(var_id));
                }
            }
            if (unknown) {
                ++stats_.unknown_results;
                return QueryResult::kUnknown;
            }
            if (options_.shared_cache != nullptr) {
                // Publish the *whole* sliced query (slices partition the
                // assertions, so the union of slice models is a model of
                // the conjunction): siblings prime all their slices from
                // this one entry instead of paying a shared lookup per
                // slice.
                options_.shared_cache->Insert(
                    whole, cache::CachedResult::kSat, merged);
            }
            ++stats_.sat_results;
            RememberModel(merged);
            if (model != nullptr) {
                *model = std::move(merged);
            }
            return QueryResult::kSat;
        }
    }

    const QueryResult result = SolveLeaf(live, model);
    if (result == QueryResult::kSat && model != nullptr) {
        // A model served by the reuse layers can satisfy an assertion by
        // *absence* (absent variables evaluate as zero). Make those zeros
        // explicit so every constrained variable is assigned — callers
        // (the engine) substitute their own defaults for absent inputs.
        std::vector<uint32_t> var_ids;
        for (const ExprRef& assertion : live) {
            CollectVarIds(assertion, &var_ids);
        }
        for (const uint32_t var_id : var_ids) {
            if (!model->Has(var_id)) {
                model->Set(var_id, 0);
            }
        }
    }
    switch (result) {
      case QueryResult::kSat: ++stats_.sat_results; break;
      case QueryResult::kUnsat: ++stats_.unsat_results; break;
      case QueryResult::kUnknown: ++stats_.unknown_results; break;
    }
    return result;
}

QueryResult
Solver::SolveLeaf(const std::vector<ExprRef>& live, Assignment* model)
{
    CHEF_OBS_SPAN(span, options_.obs.tracer, "solver/leaf", "solver");
    const uint64_t key = cache::QueryHash(live);
    const std::vector<ExprRef> sorted_live = cache::SortedByHash(live);
    if (options_.enable_query_cache) {
        auto it = cache_.find(key);
        if (it != cache_.end() &&
            cache::SameAssertions(it->second.key_assertions, sorted_live)) {
            ++stats_.cache_hits;
            if (m_cache_hits_ != nullptr) {
                m_cache_hits_->Add();
            }
            lru_.splice(lru_.begin(), lru_, it->second.lru_it);
            if (it->second.result == QueryResult::kSat && model != nullptr) {
                *model = it->second.model;
            }
            return it->second.result;
        }
    }

    // Built after the local-cache check so local hits (the steady-state
    // majority) never pay the copy; reused by the shared lookup and both
    // insert paths below.
    cache::CanonicalQuery canonical;
    if (options_.shared_cache != nullptr) {
        canonical.hash = key;
        canonical.sorted_assertions = sorted_live;
    }

    // Cross-worker shared cache: cheap (one striped lock) relative to
    // everything below, and a hit also primes the local layers.
    if (options_.shared_cache != nullptr) {
        cache::CachedResult shared_result;
        Assignment shared_model;
        if (options_.shared_cache->Lookup(canonical, &shared_result,
                                          &shared_model)) {
            ++stats_.shared_cache_hits;
            if (m_shared_cache_hits_ != nullptr) {
                m_shared_cache_hits_->Add();
            }
            const QueryResult result =
                shared_result == cache::CachedResult::kSat
                    ? QueryResult::kSat
                    : QueryResult::kUnsat;
            StoreLocal(key, result, shared_model, sorted_live);
            if (result == QueryResult::kSat) {
                RememberModel(shared_model);
                if (model != nullptr) {
                    *model = std::move(shared_model);
                }
            }
            return result;
        }
    }

    if (options_.enable_model_reuse) {
        for (const Assignment& candidate : recent_models_) {
            if (cache::ModelSatisfies(live, candidate)) {
                ++stats_.model_reuse_hits;
                if (m_model_reuse_hits_ != nullptr) {
                    m_model_reuse_hits_->Add();
                }
                if (model != nullptr) {
                    *model = candidate;
                }
                StoreLocal(key, QueryResult::kSat, candidate, sorted_live);
                return QueryResult::kSat;
            }
        }
    }

    // Sibling sessions' counterexamples: a model another worker published
    // often satisfies this worker's negation query outright.
    if (options_.shared_cache != nullptr) {
        Assignment candidate;
        if (options_.shared_cache->TryCounterexamples(live, &candidate)) {
            ++stats_.shared_model_reuse_hits;
            StoreLocal(key, QueryResult::kSat, candidate, sorted_live);
            RememberModel(candidate);
            if (model != nullptr) {
                *model = std::move(candidate);
            }
            return QueryResult::kSat;
        }
    }

    return SolveViaSat(live, key, sorted_live, model);
}

QueryResult
Solver::SolveViaSat(const std::vector<ExprRef>& live, uint64_t key,
                    const std::vector<ExprRef>& sorted_live,
                    Assignment* model)
{
    // stats_.solve_seconds already covers this scope (SolveViaSat runs
    // inside Solve's timer); the discard double only feeds the histogram.
    double sat_seconds_discard = 0.0;
    const ScopedTimer sat_timer(&sat_seconds_discard, m_sat_latency_);
    CHEF_OBS_SPAN(span, options_.obs.tracer, "solver/sat", "solver");
    span.set_detail(options_.enable_incremental_sat ? "incremental"
                                                    : "fresh");
    if (m_sat_calls_ != nullptr) {
        m_sat_calls_->Add();
        if (options_.enable_incremental_sat) {
            m_incremental_sat_calls_->Add();
        }
    }

    SatStatus status;
    Assignment extracted;

    if (options_.enable_incremental_sat) {
        if (session_ == nullptr) {
            SatSolver::Options sat_options;
            sat_options.max_conflicts = options_.max_conflicts;
            sat_options.max_learned_clauses = options_.max_learned_clauses;
            session_ = std::make_unique<SatSession>(sat_options);
        }
        const size_t clauses_before = session_->cnf.clauses().size();
        const int vars_before = session_->cnf.num_vars();
        std::vector<Lit> assumptions;
        assumptions.reserve(live.size());
        for (const ExprRef& assertion : live) {
            assumptions.push_back(session_->blaster.BlastBool(assertion));
        }
        stats_.cnf_vars +=
            static_cast<uint64_t>(session_->cnf.num_vars() - vars_before);
        stats_.cnf_clauses += session_->cnf.clauses().size() - clauses_before;
        ++stats_.sat_calls;
        ++stats_.incremental_sat_calls;
        const size_t loaded_before = session_->sat.loaded_clauses();
        const uint64_t purged_before = session_->sat.stats().purged_clauses;
        status = session_->sat.SolveIncremental(session_->cnf, assumptions);
        stats_.clauses_loaded +=
            session_->sat.loaded_clauses() - loaded_before;
        stats_.learned_clauses_purged +=
            session_->sat.stats().purged_clauses - purged_before;
        if (status == SatStatus::kSat) {
            // The session's blaster has seen every query of the session;
            // extract only this query's variables (absent variables are
            // unconstrained and default to zero, as in the fresh path).
            std::vector<uint32_t> var_ids;
            for (const ExprRef& assertion : live) {
                CollectVarIds(assertion, &var_ids);
            }
            for (const uint32_t var_id : var_ids) {
                extracted.Set(
                    var_id,
                    session_->blaster.ModelValue(session_->sat, var_id));
            }
        }
    } else {
        CnfFormula cnf;
        BitBlaster blaster(&cnf);
        for (const ExprRef& assertion : live) {
            blaster.AssertTrue(assertion);
        }
        stats_.cnf_vars += cnf.num_vars();
        stats_.cnf_clauses += cnf.clauses().size();
        stats_.clauses_loaded += cnf.clauses().size();

        SatSolver::Options sat_options;
        sat_options.max_conflicts = options_.max_conflicts;
        sat_options.max_learned_clauses = options_.max_learned_clauses;
        SatSolver sat(sat_options);
        ++stats_.sat_calls;
        status = sat.Solve(cnf);
        stats_.learned_clauses_purged += sat.stats().purged_clauses;
        if (status == SatStatus::kSat) {
            for (const auto& [var_id, info] : blaster.variables()) {
                extracted.Set(var_id, blaster.ModelValue(sat, var_id));
            }
        }
    }

    if (status == SatStatus::kUnknown) {
        return QueryResult::kUnknown;
    }
    if (status == SatStatus::kUnsat) {
        StoreLocal(key, QueryResult::kUnsat, Assignment(), sorted_live);
        if (options_.shared_cache != nullptr) {
            cache::CanonicalQuery canonical;
            canonical.hash = key;
            canonical.sorted_assertions = sorted_live;
            options_.shared_cache->Insert(
                canonical, cache::CachedResult::kUnsat, Assignment());
        }
        return QueryResult::kUnsat;
    }

    // Internal consistency: the extracted model must satisfy the query.
    CHEF_CHECK_MSG(cache::ModelSatisfies(live, extracted),
                   "bit-blasted model does not satisfy the query");

    StoreLocal(key, QueryResult::kSat, extracted, sorted_live);
    if (options_.shared_cache != nullptr) {
        cache::CanonicalQuery canonical;
        canonical.hash = key;
        canonical.sorted_assertions = sorted_live;
        options_.shared_cache->Insert(canonical, cache::CachedResult::kSat,
                                      extracted);
        options_.shared_cache->PublishModel(extracted);
    }
    RememberModel(extracted);
    if (model != nullptr) {
        *model = std::move(extracted);
    }
    return QueryResult::kSat;
}

bool
Solver::UpperBound(const std::vector<ExprRef>& assertions,
                   const ExprRef& value, uint64_t* bound)
{
    Assignment model;
    if (Solve(assertions, &model) != QueryResult::kSat) {
        return false;
    }
    uint64_t low = EvalConcrete(value, model);   // Achievable.
    uint64_t high = WidthMask(value->width());   // Inclusive upper limit.
    // Binary search for the largest achievable value: invariant is that
    // `low` is achievable and everything above `high` is not.
    while (low < high) {
        const uint64_t mid = low + (high - low + 1) / 2;
        std::vector<ExprRef> augmented = assertions;
        augmented.push_back(
            MakeUge(value, MakeConst(mid, value->width())));
        Assignment probe;
        if (Solve(augmented, &probe) == QueryResult::kSat) {
            low = EvalConcrete(value, probe);
            CHEF_CHECK(low >= mid);
        } else {
            high = mid - 1;
        }
    }
    *bound = low;
    return true;
}

}  // namespace chef::solver
