#include "solver/solver.h"

#include <algorithm>

#include "solver/bitblast.h"
#include "support/diagnostics.h"
#include "support/strings.h"

namespace chef::solver {

Solver::Solver(Options options) : options_(options) {}

uint64_t
Solver::QueryHash(const std::vector<ExprRef>& assertions)
{
    // Order-insensitive combination so permuted assertion sets hit the same
    // cache line.
    uint64_t combined = 0x51ed270b4d2d3c75ull;
    for (const ExprRef& assertion : assertions) {
        combined += assertion->hash() * 0x9e3779b97f4a7c15ull;
    }
    return combined;
}

std::vector<ExprRef>
Solver::SortedByHash(std::vector<ExprRef> assertions)
{
    std::sort(assertions.begin(), assertions.end(),
              [](const ExprRef& a, const ExprRef& b) {
                  return a->hash() < b->hash();
              });
    return assertions;
}

bool
Solver::SameAssertions(const std::vector<ExprRef>& sorted_a,
                       const std::vector<ExprRef>& sorted_b)
{
    if (sorted_a.size() != sorted_b.size()) {
        return false;
    }
    for (size_t i = 0; i < sorted_a.size(); ++i) {
        if (!Expr::Equal(sorted_a[i], sorted_b[i])) {
            return false;
        }
    }
    return true;
}

bool
Solver::AssertionsHoldUnder(const std::vector<ExprRef>& assertions,
                            const Assignment& model) const
{
    // Evaluate newest-first: for concolic queries the violated assertion
    // is almost always the freshly negated branch at the end.
    for (size_t i = assertions.size(); i > 0; --i) {
        if (EvalConcrete(assertions[i - 1], model) == 0) {
            return false;
        }
    }
    return true;
}

QueryResult
Solver::Solve(const std::vector<ExprRef>& assertions, Assignment* model)
{
    ++stats_.queries;

    // Constant-folded outcomes never reach the backend.
    std::vector<ExprRef> live;
    live.reserve(assertions.size());
    for (const ExprRef& assertion : assertions) {
        CHEF_CHECK(assertion->width() == 1);
        if (assertion->IsTrue()) {
            continue;
        }
        if (assertion->IsFalse()) {
            ++stats_.unsat_results;
            return QueryResult::kUnsat;
        }
        live.push_back(assertion);
    }
    if (live.empty()) {
        if (model != nullptr) {
            *model = Assignment();
        }
        ++stats_.sat_results;
        return QueryResult::kSat;
    }

    // Syntactic contradiction fast path: concolic negation queries are
    // frequently of the form {..., c, ..., !c} where the flipped branch
    // condition already appears in the prefix (input-dependent loops that
    // re-test one condition). Detect the pair structurally before paying
    // for bit blasting.
    {
        const ExprRef& last = live.back();
        const ExprRef negated_last = MakeBoolNot(last);
        for (size_t i = 0; i + 1 < live.size(); ++i) {
            if (Expr::Equal(live[i], negated_last)) {
                ++stats_.unsat_results;
                return QueryResult::kUnsat;
            }
        }
    }

    const uint64_t key = QueryHash(live);
    const std::vector<ExprRef> sorted_live = SortedByHash(live);
    if (options_.enable_query_cache) {
        auto it = cache_.find(key);
        if (it != cache_.end() &&
            SameAssertions(it->second.key_assertions, sorted_live)) {
            ++stats_.cache_hits;
            if (it->second.result == QueryResult::kSat && model != nullptr) {
                *model = it->second.model;
            }
            if (it->second.result == QueryResult::kSat) {
                ++stats_.sat_results;
            } else {
                ++stats_.unsat_results;
            }
            return it->second.result;
        }
    }

    if (options_.enable_model_reuse) {
        for (const Assignment& candidate : recent_models_) {
            if (AssertionsHoldUnder(live, candidate)) {
                ++stats_.model_reuse_hits;
                ++stats_.sat_results;
                if (model != nullptr) {
                    *model = candidate;
                }
                if (options_.enable_query_cache) {
                    cache_[key] = {QueryResult::kSat, candidate,
                                   sorted_live};
                }
                return QueryResult::kSat;
            }
        }
    }

    CnfFormula cnf;
    BitBlaster blaster(&cnf);
    for (const ExprRef& assertion : live) {
        blaster.AssertTrue(assertion);
    }
    stats_.cnf_vars += cnf.num_vars();
    stats_.cnf_clauses += cnf.clauses().size();

    SatSolver::Options sat_options;
    sat_options.max_conflicts = options_.max_conflicts;
    SatSolver sat(sat_options);
    ++stats_.sat_calls;
    const SatStatus status = sat.Solve(cnf);

    if (status == SatStatus::kUnknown) {
        ++stats_.unknown_results;
        return QueryResult::kUnknown;
    }
    if (status == SatStatus::kUnsat) {
        ++stats_.unsat_results;
        if (options_.enable_query_cache) {
            cache_[key] = {QueryResult::kUnsat, Assignment(), sorted_live};
        }
        return QueryResult::kUnsat;
    }

    Assignment extracted;
    for (const auto& [var_id, info] : blaster.variables()) {
        extracted.Set(var_id, blaster.ModelValue(sat, var_id));
    }
    // Internal consistency: the extracted model must satisfy the query.
    CHEF_CHECK_MSG(AssertionsHoldUnder(live, extracted),
                   "bit-blasted model does not satisfy the query");

    ++stats_.sat_results;
    if (options_.enable_query_cache) {
        cache_[key] = {QueryResult::kSat, extracted, sorted_live};
    }
    if (options_.enable_model_reuse) {
        recent_models_.push_front(extracted);
        if (recent_models_.size() > options_.model_reuse_window) {
            recent_models_.pop_back();
        }
    }
    if (model != nullptr) {
        *model = std::move(extracted);
    }
    return QueryResult::kSat;
}

bool
Solver::UpperBound(const std::vector<ExprRef>& assertions,
                   const ExprRef& value, uint64_t* bound)
{
    Assignment model;
    if (Solve(assertions, &model) != QueryResult::kSat) {
        return false;
    }
    uint64_t low = EvalConcrete(value, model);   // Achievable.
    uint64_t high = WidthMask(value->width());   // Inclusive upper limit.
    // Binary search for the largest achievable value: invariant is that
    // `low` is achievable and everything above `high` is not.
    while (low < high) {
        const uint64_t mid = low + (high - low + 1) / 2;
        std::vector<ExprRef> augmented = assertions;
        augmented.push_back(
            MakeUge(value, MakeConst(mid, value->width())));
        Assignment probe;
        if (Solve(augmented, &probe) == QueryResult::kSat) {
            low = EvalConcrete(value, probe);
            CHEF_CHECK(low >= mid);
        } else {
            high = mid - 1;
        }
    }
    *bound = low;
    return true;
}

}  // namespace chef::solver
