#include "solver/solver.h"

#include <algorithm>
#include <chrono>

#include "cache/canonical.h"
#include "cache/shared_cache.h"
#include "solver/bitblast.h"
#include "support/diagnostics.h"
#include "support/strings.h"

namespace chef::solver {

namespace {

/// Accumulates the enclosing scope's wall time into a stats field on every
/// exit path (Solve returns from many places).
class ScopedTimer
{
  public:
    explicit ScopedTimer(double* total) : total_(total) {}
    ~ScopedTimer()
    {
        *total_ += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
    }

  private:
    double* total_;
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

}  // namespace

Solver::Solver(Options options) : options_(options) {}

void
Solver::StoreLocal(uint64_t key, QueryResult result,
                   const Assignment& model,
                   const std::vector<ExprRef>& sorted_assertions)
{
    if (!options_.enable_query_cache) {
        return;
    }
    CacheEntry& entry = cache_[key];
    if (!entry.key_assertions.empty()) {
        // Overwriting a colliding entry: retire its bytes first (a real
        // entry always has at least one assertion, so an empty key means
        // the slot was just default-constructed).
        stats_.cache_bytes -= cache::QueryEntryBytes(
            entry.key_assertions.size(), entry.model.size());
    }
    entry.result = result;
    entry.model = result == QueryResult::kSat ? model : Assignment();
    entry.key_assertions = sorted_assertions;
    stats_.cache_bytes += cache::QueryEntryBytes(
        sorted_assertions.size(), entry.model.size());
}

void
Solver::RememberModel(const Assignment& model)
{
    if (!options_.enable_model_reuse) {
        return;
    }
    recent_models_.push_front(model);
    if (recent_models_.size() > options_.model_reuse_window) {
        recent_models_.pop_back();
    }
}

QueryResult
Solver::Solve(const std::vector<ExprRef>& assertions, Assignment* model)
{
    const ScopedTimer timer(&stats_.solve_seconds);
    ++stats_.queries;

    // Constant-folded outcomes never reach the backend.
    std::vector<ExprRef> live;
    live.reserve(assertions.size());
    for (const ExprRef& assertion : assertions) {
        CHEF_CHECK(assertion->width() == 1);
        if (assertion->IsTrue()) {
            continue;
        }
        if (assertion->IsFalse()) {
            ++stats_.unsat_results;
            return QueryResult::kUnsat;
        }
        live.push_back(assertion);
    }
    if (live.empty()) {
        if (model != nullptr) {
            *model = Assignment();
        }
        ++stats_.sat_results;
        return QueryResult::kSat;
    }

    // Syntactic contradiction fast path: concolic negation queries are
    // frequently of the form {..., c, ..., !c} where the flipped branch
    // condition already appears in the prefix (input-dependent loops that
    // re-test one condition). Detect the pair structurally before paying
    // for bit blasting.
    {
        const ExprRef& last = live.back();
        const ExprRef negated_last = MakeBoolNot(last);
        for (size_t i = 0; i + 1 < live.size(); ++i) {
            if (Expr::Equal(live[i], negated_last)) {
                ++stats_.unsat_results;
                return QueryResult::kUnsat;
            }
        }
    }

    const uint64_t key = cache::QueryHash(live);
    const std::vector<ExprRef> sorted_live = cache::SortedByHash(live);
    if (options_.enable_query_cache) {
        auto it = cache_.find(key);
        if (it != cache_.end() &&
            cache::SameAssertions(it->second.key_assertions, sorted_live)) {
            ++stats_.cache_hits;
            if (it->second.result == QueryResult::kSat && model != nullptr) {
                *model = it->second.model;
            }
            if (it->second.result == QueryResult::kSat) {
                ++stats_.sat_results;
            } else {
                ++stats_.unsat_results;
            }
            return it->second.result;
        }
    }

    // Built after the local-cache check so local hits (the steady-state
    // majority) never pay the copy; reused by the shared lookup and both
    // insert paths below.
    cache::CanonicalQuery canonical;
    if (options_.shared_cache != nullptr) {
        canonical.hash = key;
        canonical.sorted_assertions = sorted_live;
    }

    // Cross-worker shared cache: cheap (one striped lock) relative to
    // everything below, and a hit also primes the local layers.
    if (options_.shared_cache != nullptr) {
        cache::CachedResult shared_result;
        Assignment shared_model;
        if (options_.shared_cache->Lookup(canonical, &shared_result,
                                          &shared_model)) {
            ++stats_.shared_cache_hits;
            const QueryResult result =
                shared_result == cache::CachedResult::kSat
                    ? QueryResult::kSat
                    : QueryResult::kUnsat;
            StoreLocal(key, result, shared_model, sorted_live);
            if (result == QueryResult::kSat) {
                ++stats_.sat_results;
                RememberModel(shared_model);
                if (model != nullptr) {
                    *model = std::move(shared_model);
                }
            } else {
                ++stats_.unsat_results;
            }
            return result;
        }
    }

    if (options_.enable_model_reuse) {
        for (const Assignment& candidate : recent_models_) {
            if (cache::ModelSatisfies(live, candidate)) {
                ++stats_.model_reuse_hits;
                ++stats_.sat_results;
                if (model != nullptr) {
                    *model = candidate;
                }
                StoreLocal(key, QueryResult::kSat, candidate, sorted_live);
                return QueryResult::kSat;
            }
        }
    }

    // Sibling sessions' counterexamples: a model another worker published
    // often satisfies this worker's negation query outright.
    if (options_.shared_cache != nullptr) {
        Assignment candidate;
        if (options_.shared_cache->TryCounterexamples(live, &candidate)) {
            ++stats_.shared_model_reuse_hits;
            ++stats_.sat_results;
            StoreLocal(key, QueryResult::kSat, candidate, sorted_live);
            RememberModel(candidate);
            if (model != nullptr) {
                *model = std::move(candidate);
            }
            return QueryResult::kSat;
        }
    }

    CnfFormula cnf;
    BitBlaster blaster(&cnf);
    for (const ExprRef& assertion : live) {
        blaster.AssertTrue(assertion);
    }
    stats_.cnf_vars += cnf.num_vars();
    stats_.cnf_clauses += cnf.clauses().size();

    SatSolver::Options sat_options;
    sat_options.max_conflicts = options_.max_conflicts;
    SatSolver sat(sat_options);
    ++stats_.sat_calls;
    const SatStatus status = sat.Solve(cnf);

    if (status == SatStatus::kUnknown) {
        ++stats_.unknown_results;
        return QueryResult::kUnknown;
    }
    if (status == SatStatus::kUnsat) {
        ++stats_.unsat_results;
        StoreLocal(key, QueryResult::kUnsat, Assignment(), sorted_live);
        if (options_.shared_cache != nullptr) {
            options_.shared_cache->Insert(
                canonical, cache::CachedResult::kUnsat, Assignment());
        }
        return QueryResult::kUnsat;
    }

    Assignment extracted;
    for (const auto& [var_id, info] : blaster.variables()) {
        extracted.Set(var_id, blaster.ModelValue(sat, var_id));
    }
    // Internal consistency: the extracted model must satisfy the query.
    CHEF_CHECK_MSG(cache::ModelSatisfies(live, extracted),
                   "bit-blasted model does not satisfy the query");

    ++stats_.sat_results;
    StoreLocal(key, QueryResult::kSat, extracted, sorted_live);
    if (options_.shared_cache != nullptr) {
        options_.shared_cache->Insert(canonical, cache::CachedResult::kSat,
                                      extracted);
        options_.shared_cache->PublishModel(extracted);
    }
    RememberModel(extracted);
    if (model != nullptr) {
        *model = std::move(extracted);
    }
    return QueryResult::kSat;
}

bool
Solver::UpperBound(const std::vector<ExprRef>& assertions,
                   const ExprRef& value, uint64_t* bound)
{
    Assignment model;
    if (Solve(assertions, &model) != QueryResult::kSat) {
        return false;
    }
    uint64_t low = EvalConcrete(value, model);   // Achievable.
    uint64_t high = WidthMask(value->width());   // Inclusive upper limit.
    // Binary search for the largest achievable value: invariant is that
    // `low` is achievable and everything above `high` is not.
    while (low < high) {
        const uint64_t mid = low + (high - low + 1) / 2;
        std::vector<ExprRef> augmented = assertions;
        augmented.push_back(
            MakeUge(value, MakeConst(mid, value->width())));
        Assignment probe;
        if (Solve(augmented, &probe) == QueryResult::kSat) {
            low = EvalConcrete(value, probe);
            CHEF_CHECK(low >= mid);
        } else {
            high = mid - 1;
        }
    }
    *bound = low;
    return true;
}

}  // namespace chef::solver
