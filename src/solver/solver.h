#ifndef CHEF_SOLVER_SOLVER_H_
#define CHEF_SOLVER_SOLVER_H_

/// \file
/// Constraint solver facade: the engine-facing entry point.
///
/// Wraps simplification, bit-blasting and the CDCL backend behind a single
/// Solve() call, and adds two KLEE-style accelerations that matter for
/// concolic workloads: an exact-match query cache, and counterexample reuse
/// (recent satisfying models are tried against a new query before invoking
/// the SAT solver; concolic negation queries are frequently satisfied by a
/// sibling path's model).
///
/// Both accelerations also exist at batch scope: when Options::shared_cache
/// points at a cache::SharedSolverCache, queries consult (and feed) the
/// cross-worker cache between the local layers and the SAT call — the
/// lookup order is local cache, shared cache, local model reuse, shared
/// counterexample store, SAT. Query canonicalization lives in
/// cache/canonical.h so every layer agrees on one key.

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "solver/expr.h"
#include "solver/sat.h"

namespace chef::cache {
class SharedSolverCache;
}  // namespace chef::cache

namespace chef::solver {

/// Result of a satisfiability query.
enum class QueryResult {
    kSat,
    kUnsat,
    kUnknown,  ///< Backend resource limit exceeded.
};

/// Aggregate statistics across a Solver's lifetime.
struct SolverStats {
    uint64_t queries = 0;
    uint64_t cache_hits = 0;
    uint64_t model_reuse_hits = 0;
    /// Queries answered by the cross-worker shared cache.
    uint64_t shared_cache_hits = 0;
    /// Queries satisfied by a sibling session's published model.
    uint64_t shared_model_reuse_hits = 0;
    uint64_t sat_calls = 0;
    uint64_t sat_results = 0;
    uint64_t unsat_results = 0;
    uint64_t unknown_results = 0;
    uint64_t cnf_vars = 0;
    uint64_t cnf_clauses = 0;
    /// Approximate bytes held by the local query cache (gauge; grows
    /// monotonically since the local cache does not evict).
    uint64_t cache_bytes = 0;
    /// Wall time spent inside Solve(), including cache probes and SAT.
    double solve_seconds = 0.0;
};

/// Constraint solver over bitvector assertions.
class Solver
{
  public:
    struct Options {
        bool enable_query_cache = true;
        bool enable_model_reuse = true;
        size_t model_reuse_window = 16;
        /// Conflict budget per SAT call (0 = unlimited).
        uint64_t max_conflicts = 2'000'000;
        /// Optional cross-worker cache, owned by the caller (typically
        /// one per ExplorationService batch) and shared by many Solvers.
        /// Consulted after the local cache and fed after every proven SAT
        /// call. Sat/unsat outcomes are cache-invariant; the satisfying
        /// *model* a query returns may come from a sibling session, which
        /// makes exploration order model-dependent — see
        /// cache/shared_cache.h for the determinism contract.
        cache::SharedSolverCache* shared_cache = nullptr;
    };

    Solver() : Solver(Options{}) {}
    explicit Solver(Options options);

    /// Checks the conjunction of \p assertions (width-1 expressions). On
    /// kSat fills \p model (if non-null) with values for every variable
    /// appearing in the assertions; absent variables are unconstrained and
    /// default to zero.
    QueryResult Solve(const std::vector<ExprRef>& assertions,
                      Assignment* model);

    /// Computes the maximum value the expression can take under the given
    /// assertions (the paper's upper_bound API used by the symbolic-aware
    /// allocator). Uses binary search over Solve() calls. Returns false if
    /// the assertions themselves are unsatisfiable.
    bool UpperBound(const std::vector<ExprRef>& assertions,
                    const ExprRef& value, uint64_t* bound);

    const SolverStats& stats() const { return stats_; }
    const Options& options() const { return options_; }

  private:
    struct CacheEntry {
        QueryResult result;
        /// Satisfying assignment; populated only for kSat results.
        Assignment model;
        /// Assertions sorted by hash, kept to reject hash collisions.
        std::vector<ExprRef> key_assertions;
    };

    /// Inserts into the local query cache (no-op when disabled); stores
    /// the model only for kSat and maintains the cache_bytes gauge.
    void StoreLocal(uint64_t key, QueryResult result,
                    const Assignment& model,
                    const std::vector<ExprRef>& sorted_assertions);

    /// Pushes a satisfying model into the bounded recent-model window
    /// (no-op when model reuse is disabled).
    void RememberModel(const Assignment& model);

    Options options_;
    SolverStats stats_;
    std::unordered_map<uint64_t, CacheEntry> cache_;
    std::deque<Assignment> recent_models_;
};

}  // namespace chef::solver

#endif  // CHEF_SOLVER_SOLVER_H_
