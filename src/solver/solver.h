#ifndef CHEF_SOLVER_SOLVER_H_
#define CHEF_SOLVER_SOLVER_H_

/// \file
/// Constraint solver facade: the engine-facing entry point.
///
/// Wraps simplification, independence slicing, bit-blasting and the CDCL
/// backend behind a single Solve() call, and adds two KLEE-style
/// accelerations that matter for concolic workloads: an exact-match query
/// cache, and counterexample reuse (recent satisfying models are tried
/// against a new query before invoking the SAT solver; concolic negation
/// queries are frequently satisfied by a sibling path's model).
///
/// A query is first partitioned into variable-disjoint slices
/// (solver/independence.h); each slice then runs the cache pipeline on
/// its own, so a path prefix that was proven satisfiable once is answered
/// from the per-slice cache while only the slice containing the freshly
/// negated branch condition does real work. Slices that miss every cache
/// reach the SAT backend through a persistent incremental session: one
/// BitBlaster + CDCL instance per Solver, queried under assumptions, so
/// shared prefix nodes are blasted and CNF-loaded once per session and
/// learned clauses carry over between queries.
///
/// The cache accelerations also exist at batch scope: when
/// Options::shared_cache points at a cache::SharedSolverCache, slices
/// consult (and feed) the cross-worker cache between the local layers and
/// the SAT call — the lookup order is local cache, shared cache, local
/// model reuse, shared counterexample store, SAT. Query canonicalization
/// lives in cache/canonical.h so every layer agrees on one key; slicing
/// shrinks those keys, which is what lifts local *and* shared hit rates.

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obs/obs.h"
#include "solver/bitblast.h"
#include "solver/expr.h"
#include "solver/sat.h"

namespace chef::cache {
class SharedSolverCache;
}  // namespace chef::cache

namespace chef::solver {

/// Result of a satisfiability query.
enum class QueryResult {
    kSat,
    kUnsat,
    kUnknown,  ///< Backend resource limit exceeded.
};

/// Aggregate statistics across a Solver's lifetime.
///
/// Outcome counters (sat/unsat/unknown_results) count top-level Solve()
/// calls. Pipeline counters (cache_hits, model_reuse_hits, shared_*,
/// sat_calls) count per *slice*, since each independent slice runs the
/// cache pipeline on its own — so they can exceed `queries`.
struct SolverStats {
    uint64_t queries = 0;
    uint64_t cache_hits = 0;
    uint64_t model_reuse_hits = 0;
    /// Slices answered by the cross-worker shared cache.
    uint64_t shared_cache_hits = 0;
    /// Slices satisfied by a sibling session's published model.
    uint64_t shared_model_reuse_hits = 0;
    /// Sliced queries answered whole by the shared cache before the
    /// per-slice pipeline ran: a sibling published the full query, so
    /// one striped-lock lookup replaced every per-slice probe.
    uint64_t shared_whole_query_hits = 0;
    /// Local per-slice cache entries primed from whole-query hits, so
    /// follow-up queries sharing a prefix slice hit locally without
    /// touching the shared cache at all.
    uint64_t shared_slices_primed = 0;
    /// Queries that split into more than one independent slice, and the
    /// total number of slices those queries produced.
    uint64_t sliced_queries = 0;
    uint64_t slices_solved = 0;
    uint64_t sat_calls = 0;
    /// SAT calls served by the persistent incremental session (subset of
    /// sat_calls; the remainder built a fresh CNF + CDCL instance).
    uint64_t incremental_sat_calls = 0;
    uint64_t sat_results = 0;
    uint64_t unsat_results = 0;
    uint64_t unknown_results = 0;
    /// CNF variables/clauses *built* for SAT calls. Incremental calls add
    /// only the delta since the previous call (the point of the session).
    uint64_t cnf_vars = 0;
    uint64_t cnf_clauses = 0;
    /// Clauses actually loaded into a CDCL instance across all SAT calls:
    /// the whole formula per fresh call, the newly appended delta per
    /// incremental call.
    uint64_t clauses_loaded = 0;
    /// Approximate bytes held by the local query cache (gauge; bounded by
    /// Options::max_cache_bytes via LRU eviction).
    uint64_t cache_bytes = 0;
    /// Local cache entries evicted to respect the byte budget.
    uint64_t cache_evictions = 0;
    /// Learned clauses dropped by the SAT backend's activity-based purge
    /// (Options::max_learned_clauses); bounds the persistent incremental
    /// session's memory over a long session.
    uint64_t learned_clauses_purged = 0;
    /// Wall time spent inside Solve(), including cache probes and SAT.
    double solve_seconds = 0.0;
};

/// Constraint solver over bitvector assertions.
class Solver
{
  public:
    struct Options {
        bool enable_query_cache = true;
        bool enable_model_reuse = true;
        /// Partition each query into variable-disjoint slices and run the
        /// cache pipeline per slice (independence optimization). Sound
        /// for sat/unsat outcomes; satisfying models may differ from the
        /// unsliced pipeline's (PR 2 determinism contract).
        bool enable_independence_slicing = true;
        /// Solve cache-missing slices through a persistent incremental
        /// session (one BitBlaster + CDCL instance per Solver, queried
        /// under assumptions) instead of re-blasting the whole slice and
        /// running a fresh CDCL instance per call.
        bool enable_incremental_sat = true;
        size_t model_reuse_window = 16;
        /// Byte budget for the local query cache (approximate, the same
        /// accounting as the shared cache); least-recently-used entries
        /// are evicted beyond it. 0 = unbounded.
        size_t max_cache_bytes = 8u << 20;
        /// Conflict budget per SAT call (0 = unlimited).
        uint64_t max_conflicts = 2'000'000;
        /// Learned-clause cap for the SAT backend (0 = unbounded). The
        /// persistent incremental session keeps learned clauses across
        /// every query of a Solver's lifetime; without a cap a long
        /// session's clause database grows without bound. At the cap the
        /// backend purges the lowest-activity half
        /// (SolverStats::learned_clauses_purged counts the drops).
        size_t max_learned_clauses = 50'000;
        /// Optional cross-worker cache, owned by the caller (typically
        /// one per ExplorationService batch) and shared by many Solvers.
        /// Consulted after the local cache and fed after every proven SAT
        /// call. Sat/unsat outcomes are cache-invariant; the satisfying
        /// *model* a query returns may come from a sibling session, which
        /// makes exploration order model-dependent — see
        /// cache/shared_cache.h for the determinism contract.
        cache::SharedSolverCache* shared_cache = nullptr;
        /// Telemetry (obs/obs.h). Default-disabled; when set, the solver
        /// mirrors its hot counters into the registry (handles resolved
        /// once at construction) and emits solver/solve, solver/leaf and
        /// solver/sat trace spans.
        obs::ObsContext obs;
    };

    Solver() : Solver(Options{}) {}
    explicit Solver(Options options);

    /// Checks the conjunction of \p assertions (width-1 expressions). On
    /// kSat fills \p model (if non-null) with an explicit value for every
    /// variable appearing in the assertions — including variables a cache
    /// or reuse layer satisfied by absence, which are zero-filled so
    /// callers with non-zero defaults (the engine) stay sound. Variables
    /// not appearing at all are unconstrained and omitted.
    QueryResult Solve(const std::vector<ExprRef>& assertions,
                      Assignment* model);

    /// Computes the maximum value the expression can take under the given
    /// assertions (the paper's upper_bound API used by the symbolic-aware
    /// allocator). Uses binary search over Solve() calls. Returns false if
    /// the assertions themselves are unsatisfiable.
    bool UpperBound(const std::vector<ExprRef>& assertions,
                    const ExprRef& value, uint64_t* bound);

    const SolverStats& stats() const { return stats_; }
    const Options& options() const { return options_; }

  private:
    struct CacheEntry {
        QueryResult result;
        /// Satisfying assignment; populated only for kSat results.
        Assignment model;
        /// Assertions sorted by hash, kept to reject hash collisions.
        std::vector<ExprRef> key_assertions;
        /// Position in the LRU list (front = most recent).
        std::list<uint64_t>::iterator lru_it;
    };

    /// The persistent incremental backend: one formula that only grows,
    /// one blaster memo keyed by expression node, one CDCL instance that
    /// keeps its learned clauses. Created lazily on the first SAT call
    /// when Options::enable_incremental_sat is set.
    struct SatSession {
        CnfFormula cnf;
        BitBlaster blaster;
        SatSolver sat;
        SatSession(const SatSolver::Options& sat_options)
            : blaster(&cnf), sat(sat_options) {}
    };

    /// Runs the cache pipeline for one independent slice (or for the
    /// whole query when slicing is off or found a single slice): local
    /// cache, shared cache, model reuse, shared counterexamples, SAT.
    /// Does not touch the outcome counters — Solve() counts those once
    /// per top-level query.
    QueryResult SolveLeaf(const std::vector<ExprRef>& live,
                          Assignment* model);

    /// The SAT step of SolveLeaf: incremental session or fresh blast.
    QueryResult SolveViaSat(const std::vector<ExprRef>& live, uint64_t key,
                            const std::vector<ExprRef>& sorted_live,
                            Assignment* model);

    /// Inserts into the local query cache (no-op when disabled); stores
    /// the model only for kSat, maintains the cache_bytes gauge and LRU
    /// order, and evicts beyond Options::max_cache_bytes.
    void StoreLocal(uint64_t key, QueryResult result,
                    const Assignment& model,
                    const std::vector<ExprRef>& sorted_assertions);

    /// Pushes a satisfying model into the bounded recent-model window
    /// (no-op when model reuse is disabled).
    void RememberModel(const Assignment& model);

    Options options_;
    SolverStats stats_;
    // Metric handles, resolved once at construction (null when
    // Options::obs carries no registry) so the hot path never touches
    // the registry's name map.
    obs::Counter* m_queries_ = nullptr;
    obs::Counter* m_cache_hits_ = nullptr;
    obs::Counter* m_shared_cache_hits_ = nullptr;
    obs::Counter* m_model_reuse_hits_ = nullptr;
    obs::Counter* m_sat_calls_ = nullptr;
    obs::Counter* m_incremental_sat_calls_ = nullptr;
    obs::Histogram* m_solve_latency_ = nullptr;
    obs::Histogram* m_sat_latency_ = nullptr;
    std::unordered_map<uint64_t, CacheEntry> cache_;
    /// Cache keys, most-recently-used first.
    std::list<uint64_t> lru_;
    std::deque<Assignment> recent_models_;
    std::unique_ptr<SatSession> session_;
};

}  // namespace chef::solver

#endif  // CHEF_SOLVER_SOLVER_H_
