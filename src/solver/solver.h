#ifndef CHEF_SOLVER_SOLVER_H_
#define CHEF_SOLVER_SOLVER_H_

/// \file
/// Constraint solver facade: the engine-facing entry point.
///
/// Wraps simplification, bit-blasting and the CDCL backend behind a single
/// Solve() call, and adds two KLEE-style accelerations that matter for
/// concolic workloads: an exact-match query cache, and counterexample reuse
/// (recent satisfying models are tried against a new query before invoking
/// the SAT solver; concolic negation queries are frequently satisfied by a
/// sibling path's model).

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "solver/expr.h"
#include "solver/sat.h"

namespace chef::solver {

/// Result of a satisfiability query.
enum class QueryResult {
    kSat,
    kUnsat,
    kUnknown,  ///< Backend resource limit exceeded.
};

/// Aggregate statistics across a Solver's lifetime.
struct SolverStats {
    uint64_t queries = 0;
    uint64_t cache_hits = 0;
    uint64_t model_reuse_hits = 0;
    uint64_t sat_calls = 0;
    uint64_t sat_results = 0;
    uint64_t unsat_results = 0;
    uint64_t unknown_results = 0;
    uint64_t cnf_vars = 0;
    uint64_t cnf_clauses = 0;
};

/// Constraint solver over bitvector assertions.
class Solver
{
  public:
    struct Options {
        bool enable_query_cache = true;
        bool enable_model_reuse = true;
        size_t model_reuse_window = 16;
        /// Conflict budget per SAT call (0 = unlimited).
        uint64_t max_conflicts = 2'000'000;
    };

    Solver() : Solver(Options{}) {}
    explicit Solver(Options options);

    /// Checks the conjunction of \p assertions (width-1 expressions). On
    /// kSat fills \p model (if non-null) with values for every variable
    /// appearing in the assertions; absent variables are unconstrained and
    /// default to zero.
    QueryResult Solve(const std::vector<ExprRef>& assertions,
                      Assignment* model);

    /// Computes the maximum value the expression can take under the given
    /// assertions (the paper's upper_bound API used by the symbolic-aware
    /// allocator). Uses binary search over Solve() calls. Returns false if
    /// the assertions themselves are unsatisfiable.
    bool UpperBound(const std::vector<ExprRef>& assertions,
                    const ExprRef& value, uint64_t* bound);

    const SolverStats& stats() const { return stats_; }
    const Options& options() const { return options_; }

  private:
    struct CacheEntry {
        QueryResult result;
        Assignment model;
        /// Assertions sorted by hash, kept to reject hash collisions.
        std::vector<ExprRef> key_assertions;
    };

    static std::vector<ExprRef> SortedByHash(std::vector<ExprRef> assertions);
    static bool SameAssertions(const std::vector<ExprRef>& sorted_a,
                               const std::vector<ExprRef>& sorted_b);

    static uint64_t QueryHash(const std::vector<ExprRef>& assertions);
    bool AssertionsHoldUnder(const std::vector<ExprRef>& assertions,
                             const Assignment& model) const;

    Options options_;
    SolverStats stats_;
    std::unordered_map<uint64_t, CacheEntry> cache_;
    std::deque<Assignment> recent_models_;
};

}  // namespace chef::solver

#endif  // CHEF_SOLVER_SOLVER_H_
