#include "solver/independence.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace chef::solver {

namespace {

void
CollectVarIdsImpl(const Expr* e, std::unordered_set<const Expr*>* visited,
                  std::vector<uint32_t>* out)
{
    if (e == nullptr || !visited->insert(e).second) {
        return;
    }
    if (e->kind() == ExprKind::kVariable) {
        out->push_back(e->var_id());
        return;
    }
    CollectVarIdsImpl(e->a().get(), visited, out);
    CollectVarIdsImpl(e->b().get(), visited, out);
    CollectVarIdsImpl(e->c().get(), visited, out);
}

/// Union-find over dense slot indices with path halving.
class UnionFind
{
  public:
    size_t MakeSet()
    {
        parent_.push_back(parent_.size());
        return parent_.size() - 1;
    }

    size_t Find(size_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

  private:
    std::vector<size_t> parent_;
};

}  // namespace

void
CollectVarIds(const ExprRef& expr, std::vector<uint32_t>* out)
{
    std::unordered_set<const Expr*> visited;
    std::vector<uint32_t> found;
    CollectVarIdsImpl(expr.get(), &visited, &found);
    // Dedup against what the caller already has (set-based: callers
    // accumulate across a whole query's assertions).
    std::unordered_set<uint32_t> seen(out->begin(), out->end());
    for (const uint32_t id : found) {
        if (seen.insert(id).second) {
            out->push_back(id);
        }
    }
}

std::vector<IndependentSlice>
PartitionIndependent(const std::vector<ExprRef>& assertions)
{
    // One union-find slot per assertion plus one per distinct variable;
    // each assertion is unioned with every variable it references, so two
    // assertions end up in the same component iff they are transitively
    // connected through shared variables.
    UnionFind uf;
    std::vector<size_t> assertion_slot(assertions.size());
    std::unordered_map<uint32_t, size_t> var_slot;
    std::vector<std::vector<uint32_t>> assertion_vars(assertions.size());

    for (size_t i = 0; i < assertions.size(); ++i) {
        assertion_slot[i] = uf.MakeSet();
        CollectVarIds(assertions[i], &assertion_vars[i]);
        for (const uint32_t id : assertion_vars[i]) {
            auto [it, inserted] = var_slot.emplace(id, 0);
            if (inserted) {
                it->second = uf.MakeSet();
            }
            uf.Union(assertion_slot[i], it->second);
        }
    }

    // Group assertions by component, ordered by first occurrence so the
    // partition is deterministic in the input order.
    std::vector<IndependentSlice> slices;
    std::unordered_map<size_t, size_t> root_to_slice;
    for (size_t i = 0; i < assertions.size(); ++i) {
        const size_t root = uf.Find(assertion_slot[i]);
        auto [it, inserted] = root_to_slice.emplace(root, slices.size());
        if (inserted) {
            slices.emplace_back();
        }
        IndependentSlice& slice = slices[it->second];
        slice.assertions.push_back(assertions[i]);
        for (const uint32_t id : assertion_vars[i]) {
            slice.var_ids.push_back(id);
        }
    }
    for (IndependentSlice& slice : slices) {
        std::sort(slice.var_ids.begin(), slice.var_ids.end());
        slice.var_ids.erase(
            std::unique(slice.var_ids.begin(), slice.var_ids.end()),
            slice.var_ids.end());
    }
    return slices;
}

}  // namespace chef::solver
