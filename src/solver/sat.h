#ifndef CHEF_SOLVER_SAT_H_
#define CHEF_SOLVER_SAT_H_

/// \file
/// A from-scratch CDCL SAT solver (the backend below the bit-blaster).
///
/// Implements the standard conflict-driven clause learning loop: two-watched-
/// literal propagation, 1UIP conflict analysis, VSIDS-style branching with
/// phase saving, and geometric restarts. Sized for the CNF instances produced
/// by bit-blasting path conditions over tens to hundreds of input bytes.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chef::solver {

/// DIMACS-style literal: +v or -v for 1-based variable v.
using Lit = int32_t;

/// Outcome of a SAT call.
enum class SatStatus {
    kSat,
    kUnsat,
    kUnknown,  ///< Resource limit exceeded.
};

/// Accumulates a CNF formula.
class CnfFormula
{
  public:
    /// Allocates a fresh variable and returns its (positive) index.
    int NewVar() { return ++num_vars_; }

    int num_vars() const { return num_vars_; }

    /// Adds a clause given as DIMACS literals. Empty clauses make the
    /// formula trivially unsatisfiable.
    void AddClause(std::vector<Lit> lits);
    void AddUnit(Lit a) { AddClause({a}); }
    void AddBinary(Lit a, Lit b) { AddClause({a, b}); }
    void AddTernary(Lit a, Lit b, Lit c) { AddClause({a, b, c}); }

    const std::vector<std::vector<Lit>>& clauses() const { return clauses_; }
    bool trivially_unsat() const { return trivially_unsat_; }

  private:
    int num_vars_ = 0;
    bool trivially_unsat_ = false;
    std::vector<std::vector<Lit>> clauses_;
};

/// Solver statistics for one Solve() call.
struct SatStats {
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t conflicts = 0;
    uint64_t restarts = 0;
    uint64_t learned_clauses = 0;
    /// Learned clauses dropped by the activity-based purge
    /// (Options::max_learned_clauses).
    uint64_t purged_clauses = 0;
};

/// CDCL solver. A fresh instance is used per query.
class SatSolver
{
  public:
    struct Options {
        /// Give up after this many conflicts (0 = no limit).
        uint64_t max_conflicts = 0;
        double var_decay = 0.95;
        /// Initial restart interval in conflicts; grows geometrically.
        uint64_t restart_base = 100;
        double restart_growth = 1.5;
        /// Learned-clause cap (0 = unbounded). When the database holds
        /// this many learned clauses, the lowest-activity half is purged
        /// — essential for persistent incremental sessions, whose
        /// learned clauses would otherwise accumulate across a long
        /// session without bound. Purging never affects soundness (a
        /// learned clause is implied by the problem clauses), only how
        /// much past search effort is remembered: each purge restarts
        /// from the root level, so caps near zero degrade search badly
        /// (every conflict becomes a blind restart). Use hundreds to
        /// tens of thousands.
        size_t max_learned_clauses = 0;
    };

    SatSolver() : SatSolver(Options{}) {}
    explicit SatSolver(Options options);

    /// Solves the formula. On kSat, the model can be read via ModelValue().
    SatStatus Solve(const CnfFormula& formula);

    /// Incremental interface. The solver stays bound to one logical
    /// formula that only ever grows: each call loads the clauses appended
    /// to \p formula since the previous call — keeping the learned-clause
    /// database, variable activities and saved phases — and decides
    /// satisfiability of formula AND assumptions. Assumptions are handled
    /// Minisat-style, as forced first decisions, so learned clauses are
    /// implied by the clause database alone and stay valid across calls
    /// with different assumptions. The per-call conflict budget is
    /// Options::max_conflicts. Do not mix with the one-shot Solve() on
    /// the same instance (Solve() discards all incremental state).
    SatStatus SolveIncremental(const CnfFormula& formula,
                               const std::vector<Lit>& assumptions);

    /// Formula clauses consumed by clause loading so far (total across
    /// incremental calls; callers diff it to get per-call load counts).
    size_t loaded_clauses() const { return loaded_clauses_; }

    /// Returns the truth value of variable \p var (1-based) in the model.
    bool ModelValue(int var) const;

    const SatStats& stats() const { return stats_; }

  private:
    // Internal literal encoding: 2*var + (negated ? 1 : 0), var 0-based.
    using ILit = uint32_t;

    enum : uint8_t { kUndef = 2 };

    struct Clause {
        std::vector<ILit> lits;
        bool learned = false;
    };

    struct Watcher {
        uint32_t clause_index;
        ILit blocker;
    };

    static ILit Encode(Lit lit);
    ILit NegateLit(ILit lit) const { return lit ^ 1; }
    uint32_t VarOf(ILit lit) const { return lit >> 1; }
    uint8_t ValueOf(ILit lit) const;

    /// Discards every clause, assignment and heuristic state (the one-shot
    /// Solve() entry point).
    void ResetState();
    /// Grows the per-variable arrays to \p num_vars (monotone).
    void GrowVars(int num_vars);
    /// Loads formula clauses [loaded_clauses_, end); root-level units go
    /// straight onto the trail. Returns false on an immediate root
    /// conflict.
    bool LoadIncrement(const CnfFormula& formula);
    /// The CDCL loop over the current clause database, with \p assumptions
    /// placed as forced first decisions.
    SatStatus Search(const std::vector<Lit>& assumptions);

    bool AttachClause(uint32_t clause_index);
    /// Drops the lowest-scoring half of the learned clauses (score: mean
    /// VSIDS activity of a clause's variables) and rebuilds watches and
    /// reason indices. Requires the trail at root level with propagation
    /// complete; clauses locked as root-assignment reasons are kept.
    void PurgeLearned();
    bool Enqueue(ILit lit, int32_t reason);
    int32_t Propagate();
    void Analyze(int32_t conflict_index, std::vector<ILit>* learned,
                 int* backtrack_level);
    void Backtrack(int level);
    void BumpVar(uint32_t var);
    void DecayActivities();
    ILit PickBranchLit();
    bool AllAssigned() const;

    // Activity-ordered branching heap (indexed max-heap). Invariant:
    // every unassigned variable is in the heap; assigned variables may
    // linger and are skipped on pop. Keeps decisions O(log V) even when
    // the incremental session's variable count grows across queries.
    void HeapUp(size_t index);
    void HeapDown(size_t index);
    void HeapInsert(uint32_t var);
    uint32_t HeapPopMax();

    Options options_;
    SatStats stats_;

    /// Formula clauses consumed so far (incremental loading cursor).
    size_t loaded_clauses_ = 0;
    /// Latched when the clause database itself (no assumptions) is proven
    /// unsatisfiable; every later call answers kUnsat immediately.
    bool root_unsat_ = false;

    int num_vars_ = 0;
    /// Learned clauses currently in clauses_ (purge trigger gauge).
    size_t num_learned_ = 0;
    std::vector<Clause> clauses_;
    std::vector<std::vector<Watcher>> watches_;  // indexed by ILit
    std::vector<uint8_t> assign_;                // per var: 0/1/kUndef
    std::vector<uint8_t> phase_;                 // saved phase per var
    std::vector<int32_t> reason_;                // clause index or -1
    std::vector<int32_t> level_;
    std::vector<ILit> trail_;
    std::vector<size_t> trail_limits_;
    size_t propagate_head_ = 0;
    std::vector<double> activity_;
    double activity_inc_ = 1.0;
    std::vector<uint8_t> seen_;
    std::vector<uint32_t> heap_;     // var indices, max activity at root
    std::vector<int32_t> heap_pos_;  // var -> heap index, -1 if absent
};

}  // namespace chef::solver

#endif  // CHEF_SOLVER_SAT_H_
