#ifndef CHEF_SOLVER_BITBLAST_H_
#define CHEF_SOLVER_BITBLAST_H_

/// \file
/// Tseitin bit-blasting of bitvector expressions to CNF.
///
/// Each expression node is lowered to a vector of CNF literals, least
/// significant bit first. Gate-level peepholes keep circuits involving
/// constant bits small (comparisons against literals, which dominate path
/// conditions, largely collapse).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "solver/expr.h"
#include "solver/sat.h"

namespace chef::solver {

/// Lowers expressions into a CnfFormula and tracks input variables so a
/// satisfying SAT model can be mapped back to bitvector values.
///
/// The node→literal memo owns a reference to every node it caches, so a
/// BitBlaster may outlive the queries it served: a long-lived instance
/// (the solver's incremental session) blasts a path's shared prefix once
/// and answers later queries' repeated nodes from the memo, appending
/// only the new nodes' clauses to the formula.
class BitBlaster
{
  public:
    explicit BitBlaster(CnfFormula* cnf);

    /// Lowers \p expr; returns its literals, LSB first.
    std::vector<Lit> Blast(const ExprRef& expr);

    /// Lowers the width-1 expression \p expr and returns its single
    /// literal — used as an assumption by the incremental backend, which
    /// must constrain the expression per-query without asserting it into
    /// the formula permanently.
    Lit BlastBool(const ExprRef& expr);

    /// Asserts that the width-1 expression \p expr is true.
    void AssertTrue(const ExprRef& expr);

    /// Bitvector input variable that appeared during blasting.
    struct VarInfo {
        ExprRef var;
        std::vector<Lit> bits;  ///< LSB first.
    };

    /// Variables encountered so far, keyed by variable id.
    const std::unordered_map<uint32_t, VarInfo>& variables() const
    {
        return vars_;
    }

    /// Reads back the value of a blasted variable from a SAT model.
    uint64_t ModelValue(const SatSolver& sat, uint32_t var_id) const;

  private:
    Lit TrueLit();
    Lit FalseLit() { return -TrueLit(); }
    bool IsTrueLit(Lit lit) { return lit == TrueLit(); }
    bool IsFalseLit(Lit lit) { return lit == -TrueLit(); }
    Lit LitConst(bool value) { return value ? TrueLit() : FalseLit(); }

    // Gates (with constant peepholes). Each returns a literal equivalent to
    // the gate output.
    Lit GateAnd(Lit a, Lit b);
    Lit GateOr(Lit a, Lit b);
    Lit GateXor(Lit a, Lit b);
    Lit GateIte(Lit c, Lit t, Lit e);
    Lit GateAndMany(const std::vector<Lit>& lits);
    Lit GateOrMany(const std::vector<Lit>& lits);

    // Word-level circuits; vectors are LSB first and equal width unless
    // noted.
    std::vector<Lit> Adder(const std::vector<Lit>& a,
                           const std::vector<Lit>& b, Lit carry_in,
                           Lit* carry_out);
    std::vector<Lit> Negate(const std::vector<Lit>& a);
    Lit UltCircuit(const std::vector<Lit>& a, const std::vector<Lit>& b);
    Lit EqCircuit(const std::vector<Lit>& a, const std::vector<Lit>& b);
    std::vector<Lit> Mux(Lit cond, const std::vector<Lit>& then_bits,
                         const std::vector<Lit>& else_bits);
    std::vector<Lit> Multiplier(const std::vector<Lit>& a,
                                const std::vector<Lit>& b);
    void Divider(const std::vector<Lit>& a, const std::vector<Lit>& b,
                 std::vector<Lit>* quotient, std::vector<Lit>* remainder);
    std::vector<Lit> Shifter(ExprKind kind, const std::vector<Lit>& a,
                             const std::vector<Lit>& b);
    std::vector<Lit> ConstBits(uint64_t value, int width);

    std::vector<Lit> BlastNode(const Expr* e);

    /// Memo entry; owns the node so pointer-keyed entries stay valid for
    /// the blaster's whole lifetime (a dead node's address could
    /// otherwise be reused by a structurally different expression).
    struct BlastedNode {
        ExprRef node;
        std::vector<Lit> bits;
    };

    CnfFormula* cnf_;
    Lit true_lit_ = 0;
    std::unordered_map<const Expr*, BlastedNode> cache_;
    std::unordered_map<uint32_t, VarInfo> vars_;
};

}  // namespace chef::solver

#endif  // CHEF_SOLVER_BITBLAST_H_
