#include "solver/bitblast.h"

#include "support/diagnostics.h"

namespace chef::solver {

BitBlaster::BitBlaster(CnfFormula* cnf) : cnf_(cnf) {}

Lit
BitBlaster::TrueLit()
{
    if (true_lit_ == 0) {
        true_lit_ = cnf_->NewVar();
        cnf_->AddUnit(true_lit_);
    }
    return true_lit_;
}

Lit
BitBlaster::GateAnd(Lit a, Lit b)
{
    if (IsFalseLit(a) || IsFalseLit(b)) return FalseLit();
    if (IsTrueLit(a)) return b;
    if (IsTrueLit(b)) return a;
    if (a == b) return a;
    if (a == -b) return FalseLit();
    const Lit out = cnf_->NewVar();
    cnf_->AddTernary(-a, -b, out);
    cnf_->AddBinary(a, -out);
    cnf_->AddBinary(b, -out);
    return out;
}

Lit
BitBlaster::GateOr(Lit a, Lit b)
{
    return -GateAnd(-a, -b);
}

Lit
BitBlaster::GateXor(Lit a, Lit b)
{
    if (IsFalseLit(a)) return b;
    if (IsFalseLit(b)) return a;
    if (IsTrueLit(a)) return -b;
    if (IsTrueLit(b)) return -a;
    if (a == b) return FalseLit();
    if (a == -b) return TrueLit();
    const Lit out = cnf_->NewVar();
    cnf_->AddTernary(-out, a, b);
    cnf_->AddTernary(-out, -a, -b);
    cnf_->AddTernary(out, -a, b);
    cnf_->AddTernary(out, a, -b);
    return out;
}

Lit
BitBlaster::GateIte(Lit c, Lit t, Lit e)
{
    if (IsTrueLit(c)) return t;
    if (IsFalseLit(c)) return e;
    if (t == e) return t;
    if (IsTrueLit(t) && IsFalseLit(e)) return c;
    if (IsFalseLit(t) && IsTrueLit(e)) return -c;
    if (IsTrueLit(t)) return GateOr(c, e);
    if (IsFalseLit(t)) return GateAnd(-c, e);
    if (IsTrueLit(e)) return GateOr(-c, t);
    if (IsFalseLit(e)) return GateAnd(c, t);
    const Lit out = cnf_->NewVar();
    cnf_->AddTernary(-c, -t, out);
    cnf_->AddTernary(-c, t, -out);
    cnf_->AddTernary(c, -e, out);
    cnf_->AddTernary(c, e, -out);
    return out;
}

Lit
BitBlaster::GateAndMany(const std::vector<Lit>& lits)
{
    Lit acc = TrueLit();
    for (Lit lit : lits) {
        acc = GateAnd(acc, lit);
    }
    return acc;
}

Lit
BitBlaster::GateOrMany(const std::vector<Lit>& lits)
{
    Lit acc = FalseLit();
    for (Lit lit : lits) {
        acc = GateOr(acc, lit);
    }
    return acc;
}

std::vector<Lit>
BitBlaster::Adder(const std::vector<Lit>& a, const std::vector<Lit>& b,
                  Lit carry_in, Lit* carry_out)
{
    CHEF_CHECK(a.size() == b.size());
    std::vector<Lit> sum(a.size());
    Lit carry = carry_in;
    for (size_t i = 0; i < a.size(); ++i) {
        const Lit axb = GateXor(a[i], b[i]);
        sum[i] = GateXor(axb, carry);
        // carry' = (a & b) | (carry & (a ^ b))
        carry = GateOr(GateAnd(a[i], b[i]), GateAnd(carry, axb));
    }
    if (carry_out != nullptr) {
        *carry_out = carry;
    }
    return sum;
}

std::vector<Lit>
BitBlaster::Negate(const std::vector<Lit>& a)
{
    std::vector<Lit> inverted(a.size());
    for (size_t i = 0; i < a.size(); ++i) {
        inverted[i] = -a[i];
    }
    return Adder(inverted, ConstBits(0, static_cast<int>(a.size())),
                 TrueLit(), nullptr);
}

Lit
BitBlaster::UltCircuit(const std::vector<Lit>& a, const std::vector<Lit>& b)
{
    CHEF_CHECK(a.size() == b.size());
    // a < b  <=>  no carry out of a + ~b + 1.
    std::vector<Lit> b_inverted(b.size());
    for (size_t i = 0; i < b.size(); ++i) {
        b_inverted[i] = -b[i];
    }
    Lit carry_out = 0;
    Adder(a, b_inverted, TrueLit(), &carry_out);
    return -carry_out;
}

Lit
BitBlaster::EqCircuit(const std::vector<Lit>& a, const std::vector<Lit>& b)
{
    CHEF_CHECK(a.size() == b.size());
    Lit acc = TrueLit();
    for (size_t i = 0; i < a.size(); ++i) {
        acc = GateAnd(acc, -GateXor(a[i], b[i]));
    }
    return acc;
}

std::vector<Lit>
BitBlaster::Mux(Lit cond, const std::vector<Lit>& then_bits,
                const std::vector<Lit>& else_bits)
{
    CHEF_CHECK(then_bits.size() == else_bits.size());
    std::vector<Lit> out(then_bits.size());
    for (size_t i = 0; i < then_bits.size(); ++i) {
        out[i] = GateIte(cond, then_bits[i], else_bits[i]);
    }
    return out;
}

std::vector<Lit>
BitBlaster::Multiplier(const std::vector<Lit>& a, const std::vector<Lit>& b)
{
    CHEF_CHECK(a.size() == b.size());
    const size_t width = a.size();
    std::vector<Lit> acc = ConstBits(0, static_cast<int>(width));
    for (size_t i = 0; i < width; ++i) {
        if (IsFalseLit(b[i])) {
            continue;
        }
        // addend = (a << i) & b[i], truncated to width.
        std::vector<Lit> addend(width, FalseLit());
        for (size_t j = i; j < width; ++j) {
            addend[j] = GateAnd(a[j - i], b[i]);
        }
        acc = Adder(acc, addend, FalseLit(), nullptr);
    }
    return acc;
}

void
BitBlaster::Divider(const std::vector<Lit>& a, const std::vector<Lit>& b,
                    std::vector<Lit>* quotient,
                    std::vector<Lit>* remainder)
{
    const size_t width = a.size();
    CHEF_CHECK(b.size() == width);
    // Restoring division on a (width+1)-bit remainder register.
    const size_t ext = width + 1;
    std::vector<Lit> b_ext = b;
    b_ext.push_back(FalseLit());
    std::vector<Lit> rem(ext, FalseLit());
    std::vector<Lit> q(width, FalseLit());
    for (size_t step = 0; step < width; ++step) {
        const size_t bit = width - 1 - step;
        // rem = (rem << 1) | a[bit]; the top bit shifts out but is always
        // zero because rem < b <= 2^width - 1 before the shift.
        for (size_t i = ext - 1; i > 0; --i) {
            rem[i] = rem[i - 1];
        }
        rem[0] = a[bit];
        const Lit geq = -UltCircuit(rem, b_ext);
        q[bit] = geq;
        const std::vector<Lit> diff =
            Adder(rem, [&] {
                std::vector<Lit> inverted(ext);
                for (size_t i = 0; i < ext; ++i) {
                    inverted[i] = -b_ext[i];
                }
                return inverted;
            }(), TrueLit(), nullptr);
        rem = Mux(geq, diff, rem);
    }
    // Division by zero follows SMT-LIB: q = all ones, r = a.
    const Lit b_is_zero = EqCircuit(b, ConstBits(0, static_cast<int>(width)));
    std::vector<Lit> rem_trunc(rem.begin(), rem.begin() + width);
    *quotient = Mux(b_is_zero,
                    ConstBits(WidthMask(static_cast<int>(width)),
                              static_cast<int>(width)),
                    q);
    *remainder = Mux(b_is_zero, a, rem_trunc);
}

std::vector<Lit>
BitBlaster::Shifter(ExprKind kind, const std::vector<Lit>& a,
                    const std::vector<Lit>& b)
{
    const size_t width = a.size();
    CHEF_CHECK(b.size() == width);
    const Lit fill_msb =
        (kind == ExprKind::kAShr) ? a[width - 1] : FalseLit();

    // Barrel shifter over the low stage bits.
    size_t stages = 0;
    while ((1ull << stages) < width) {
        ++stages;
    }
    std::vector<Lit> current = a;
    for (size_t s = 0; s < stages && s < width; ++s) {
        const size_t amount = 1ull << s;
        std::vector<Lit> shifted(width);
        for (size_t i = 0; i < width; ++i) {
            if (kind == ExprKind::kShl) {
                shifted[i] =
                    (i >= amount) ? current[i - amount] : FalseLit();
            } else {
                shifted[i] = (i + amount < width) ? current[i + amount]
                                                  : fill_msb;
            }
        }
        current = Mux(b[s], shifted, current);
    }
    // Out-of-range shift amounts (>= width) produce the fill value.
    const Lit oob = -UltCircuit(
        b, ConstBits(static_cast<uint64_t>(width),
                     static_cast<int>(width)));
    const std::vector<Lit> fill(width, fill_msb);
    return Mux(oob, fill, current);
}

std::vector<Lit>
BitBlaster::ConstBits(uint64_t value, int width)
{
    std::vector<Lit> bits(width);
    for (int i = 0; i < width; ++i) {
        bits[i] = LitConst((value >> i) & 1);
    }
    return bits;
}

std::vector<Lit>
BitBlaster::Blast(const ExprRef& expr)
{
    auto it = cache_.find(expr.get());
    if (it != cache_.end()) {
        return it->second.bits;
    }
    std::vector<Lit> bits = BlastNode(expr.get());
    CHEF_CHECK(bits.size() == static_cast<size_t>(expr->width()));
    cache_.emplace(expr.get(), BlastedNode{expr, bits});
    return bits;
}

Lit
BitBlaster::BlastBool(const ExprRef& expr)
{
    CHEF_CHECK(expr->width() == 1);
    return Blast(expr)[0];
}

std::vector<Lit>
BitBlaster::BlastNode(const Expr* e)
{
    const int width = e->width();
    switch (e->kind()) {
      case ExprKind::kConstant:
        return ConstBits(e->constant_value(), width);
      case ExprKind::kVariable: {
        auto it = vars_.find(e->var_id());
        if (it != vars_.end()) {
            return it->second.bits;
        }
        VarInfo info;
        // Clone the node reference so the VarInfo owns it; we only have a
        // raw pointer here, so rebuild a reference-equal variable node.
        info.var = MakeVar(e->var_id(), e->var_name(), width);
        info.bits.resize(width);
        for (int i = 0; i < width; ++i) {
            info.bits[i] = cnf_->NewVar();
        }
        auto inserted = vars_.emplace(e->var_id(), std::move(info));
        return inserted.first->second.bits;
      }
      case ExprKind::kNot: {
        std::vector<Lit> bits = Blast(e->a());
        for (Lit& bit : bits) {
            bit = -bit;
        }
        return bits;
      }
      case ExprKind::kNeg:
        return Negate(Blast(e->a()));
      case ExprKind::kZExt: {
        std::vector<Lit> bits = Blast(e->a());
        bits.resize(width, FalseLit());
        return bits;
      }
      case ExprKind::kSExt: {
        std::vector<Lit> bits = Blast(e->a());
        const Lit sign = bits.back();
        bits.resize(width, sign);
        return bits;
      }
      case ExprKind::kExtract: {
        const std::vector<Lit> bits = Blast(e->a());
        return std::vector<Lit>(
            bits.begin() + e->extract_offset(),
            bits.begin() + e->extract_offset() + width);
      }
      case ExprKind::kConcat: {
        std::vector<Lit> low = Blast(e->b());
        const std::vector<Lit> high = Blast(e->a());
        low.insert(low.end(), high.begin(), high.end());
        return low;
      }
      case ExprKind::kIte:
        return Mux(Blast(e->a())[0], Blast(e->b()), Blast(e->c()));
      default:
        break;
    }

    const std::vector<Lit> a = Blast(e->a());
    const std::vector<Lit> b = Blast(e->b());
    switch (e->kind()) {
      case ExprKind::kAdd:
        return Adder(a, b, FalseLit(), nullptr);
      case ExprKind::kSub: {
        std::vector<Lit> b_inverted(b.size());
        for (size_t i = 0; i < b.size(); ++i) {
            b_inverted[i] = -b[i];
        }
        return Adder(a, b_inverted, TrueLit(), nullptr);
      }
      case ExprKind::kMul:
        return Multiplier(a, b);
      case ExprKind::kUDiv: {
        std::vector<Lit> q, r;
        Divider(a, b, &q, &r);
        return q;
      }
      case ExprKind::kURem: {
        std::vector<Lit> q, r;
        Divider(a, b, &q, &r);
        return r;
      }
      case ExprKind::kSDiv:
      case ExprKind::kSRem: {
        const Lit a_neg = a.back();
        const Lit b_neg = b.back();
        const std::vector<Lit> abs_a = Mux(a_neg, Negate(a), a);
        const std::vector<Lit> abs_b = Mux(b_neg, Negate(b), b);
        std::vector<Lit> q, r;
        Divider(abs_a, abs_b, &q, &r);
        if (e->kind() == ExprKind::kSDiv) {
            const Lit flip = GateXor(a_neg, b_neg);
            // Division by zero keeps SMT-LIB unsigned-path semantics; the
            // Divider already special-cases b == 0 on the absolute values,
            // and the sign mux below matches the sdiv definition closely
            // enough for our (division-by-nonzero) guest semantics, which
            // guard division by zero at the interpreter level.
            return Mux(flip, Negate(q), q);
        }
        return Mux(a_neg, Negate(r), r);
      }
      case ExprKind::kAnd: {
        std::vector<Lit> out(a.size());
        for (size_t i = 0; i < a.size(); ++i) {
            out[i] = GateAnd(a[i], b[i]);
        }
        return out;
      }
      case ExprKind::kOr: {
        std::vector<Lit> out(a.size());
        for (size_t i = 0; i < a.size(); ++i) {
            out[i] = GateOr(a[i], b[i]);
        }
        return out;
      }
      case ExprKind::kXor: {
        std::vector<Lit> out(a.size());
        for (size_t i = 0; i < a.size(); ++i) {
            out[i] = GateXor(a[i], b[i]);
        }
        return out;
      }
      case ExprKind::kShl:
      case ExprKind::kLShr:
      case ExprKind::kAShr:
        return Shifter(e->kind(), a, b);
      case ExprKind::kEq:
        return {EqCircuit(a, b)};
      case ExprKind::kUlt:
        return {UltCircuit(a, b)};
      case ExprKind::kUle:
        return {-UltCircuit(b, a)};
      case ExprKind::kSlt: {
        // slt(a,b) = (sign(a) ^ sign(b)) ? sign(a) : ult(a,b)
        const Lit sign_differs = GateXor(a.back(), b.back());
        return {GateIte(sign_differs, a.back(), UltCircuit(a, b))};
      }
      case ExprKind::kSle: {
        const Lit sign_differs = GateXor(a.back(), b.back());
        return {GateIte(sign_differs, a.back(), -UltCircuit(b, a))};
      }
      default:
        CHEF_UNREACHABLE("unhandled expression kind in bit blaster");
    }
}

void
BitBlaster::AssertTrue(const ExprRef& expr)
{
    CHEF_CHECK(expr->width() == 1);
    const std::vector<Lit> bits = Blast(expr);
    cnf_->AddUnit(bits[0]);
}

uint64_t
BitBlaster::ModelValue(const SatSolver& sat, uint32_t var_id) const
{
    auto it = vars_.find(var_id);
    CHEF_CHECK(it != vars_.end());
    uint64_t value = 0;
    const std::vector<Lit>& bits = it->second.bits;
    for (size_t i = 0; i < bits.size(); ++i) {
        const Lit lit = bits[i];
        const bool bit_value =
            (lit > 0) ? sat.ModelValue(lit) : !sat.ModelValue(-lit);
        if (bit_value) {
            value |= 1ull << i;
        }
    }
    return value;
}

}  // namespace chef::solver
