#ifndef CHEF_SOLVER_EXPR_H_
#define CHEF_SOLVER_EXPR_H_

/// \file
/// Immutable bitvector expression DAG.
///
/// This is the constraint language shared by the whole system (the paper's
/// engines speak STP's QF_BV; this module is our STP-equivalent front end).
/// Expressions are fixed-width bitvectors of 1..64 bits; boolean values are
/// width-1 bitvectors. Nodes are immutable and reference counted; the
/// factory functions in this header perform constant folding and light
/// algebraic simplification so that fully concrete computations never reach
/// the SAT backend.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace chef::solver {

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

/// Expression node kinds.
enum class ExprKind : uint8_t {
    kConstant,
    kVariable,
    // Unary.
    kNot,       ///< Bitwise complement.
    kNeg,       ///< Two's complement negation.
    kZExt,      ///< Zero extension to the node's width.
    kSExt,      ///< Sign extension to the node's width.
    kExtract,   ///< Bit slice [offset, offset + width).
    // Binary arithmetic / bitwise.
    kAdd, kSub, kMul, kUDiv, kSDiv, kURem, kSRem,
    kAnd, kOr, kXor, kShl, kLShr, kAShr,
    kConcat,    ///< a is the high part, b the low part.
    // Comparisons; result width is 1.
    kEq, kUlt, kUle, kSlt, kSle,
    // Ternary.
    kIte,       ///< a ? b : c with a of width 1.
};

/// Returns a printable mnemonic for an expression kind.
const char* ExprKindName(ExprKind kind);

/// Returns the all-ones mask for a bitvector width (1..64).
uint64_t WidthMask(int width);

/// Sign-extends a width-bit value held in a uint64_t to 64 bits.
int64_t SignExtend(uint64_t value, int width);

/// A single immutable expression node. Construct only via the factory
/// functions below, which fold constants eagerly.
class Expr
{
  public:
    ExprKind kind() const { return kind_; }
    int width() const { return width_; }

    /// Constant payload; meaningful only for kConstant.
    uint64_t constant_value() const { return value_; }

    /// Variable payload; meaningful only for kVariable.
    uint32_t var_id() const { return var_id_; }
    const std::string& var_name() const { return name_; }

    /// Extract offset; meaningful only for kExtract.
    int extract_offset() const { return extract_offset_; }

    const ExprRef& a() const { return a_; }
    const ExprRef& b() const { return b_; }
    const ExprRef& c() const { return c_; }

    /// Structural hash, computed at construction.
    uint64_t hash() const { return hash_; }

    bool IsConstant() const { return kind_ == ExprKind::kConstant; }
    bool IsTrue() const { return IsConstant() && value_ == 1 && width_ == 1; }
    bool IsFalse() const { return IsConstant() && value_ == 0 && width_ == 1; }

    /// Deep structural equality (hash-accelerated).
    static bool Equal(const ExprRef& x, const ExprRef& y);

    /// Renders the expression as an s-expression (for debugging and tests).
    std::string ToString() const;

    // Node constructors are internal; use the Make* factories.
    Expr(ExprKind kind, int width, uint64_t value, uint32_t var_id,
         std::string name, int extract_offset, ExprRef a, ExprRef b,
         ExprRef c);

  private:
    ExprKind kind_;
    uint8_t width_;
    int extract_offset_ = 0;
    uint32_t var_id_ = 0;
    uint64_t value_ = 0;
    uint64_t hash_ = 0;
    std::string name_;
    ExprRef a_, b_, c_;
};

/// Assignment of concrete values to variables, keyed by variable id.
/// Unassigned variables evaluate to zero.
class Assignment
{
  public:
    void Set(uint32_t var_id, uint64_t value);
    uint64_t Get(uint32_t var_id) const;
    bool Has(uint32_t var_id) const;
    size_t size() const { return values_.size(); }
    const std::vector<std::pair<uint32_t, uint64_t>>& entries() const;

  private:
    // Sorted association list; variable counts are small (tens to a few
    // hundred input bytes), so this beats a hash map on locality.
    std::vector<std::pair<uint32_t, uint64_t>> values_;
};

// ---------------------------------------------------------------------------
// Factories (with eager constant folding).
// ---------------------------------------------------------------------------

ExprRef MakeConst(uint64_t value, int width);
ExprRef MakeBool(bool value);
ExprRef MakeVar(uint32_t var_id, const std::string& name, int width);

ExprRef MakeNot(const ExprRef& a);
ExprRef MakeNeg(const ExprRef& a);
ExprRef MakeZExt(const ExprRef& a, int width);
ExprRef MakeSExt(const ExprRef& a, int width);
ExprRef MakeExtract(const ExprRef& a, int offset, int width);

ExprRef MakeAdd(const ExprRef& a, const ExprRef& b);
ExprRef MakeSub(const ExprRef& a, const ExprRef& b);
ExprRef MakeMul(const ExprRef& a, const ExprRef& b);
ExprRef MakeUDiv(const ExprRef& a, const ExprRef& b);
ExprRef MakeSDiv(const ExprRef& a, const ExprRef& b);
ExprRef MakeURem(const ExprRef& a, const ExprRef& b);
ExprRef MakeSRem(const ExprRef& a, const ExprRef& b);
ExprRef MakeAnd(const ExprRef& a, const ExprRef& b);
ExprRef MakeOr(const ExprRef& a, const ExprRef& b);
ExprRef MakeXor(const ExprRef& a, const ExprRef& b);
ExprRef MakeShl(const ExprRef& a, const ExprRef& b);
ExprRef MakeLShr(const ExprRef& a, const ExprRef& b);
ExprRef MakeAShr(const ExprRef& a, const ExprRef& b);
ExprRef MakeConcat(const ExprRef& high, const ExprRef& low);

ExprRef MakeEq(const ExprRef& a, const ExprRef& b);
ExprRef MakeNe(const ExprRef& a, const ExprRef& b);
ExprRef MakeUlt(const ExprRef& a, const ExprRef& b);
ExprRef MakeUle(const ExprRef& a, const ExprRef& b);
ExprRef MakeUgt(const ExprRef& a, const ExprRef& b);
ExprRef MakeUge(const ExprRef& a, const ExprRef& b);
ExprRef MakeSlt(const ExprRef& a, const ExprRef& b);
ExprRef MakeSle(const ExprRef& a, const ExprRef& b);
ExprRef MakeSgt(const ExprRef& a, const ExprRef& b);
ExprRef MakeSge(const ExprRef& a, const ExprRef& b);

/// Boolean connectives over width-1 expressions.
ExprRef MakeBoolAnd(const ExprRef& a, const ExprRef& b);
ExprRef MakeBoolOr(const ExprRef& a, const ExprRef& b);
ExprRef MakeBoolNot(const ExprRef& a);

ExprRef MakeIte(const ExprRef& cond, const ExprRef& then_expr,
                const ExprRef& else_expr);

// ---------------------------------------------------------------------------
// Queries over expressions.
// ---------------------------------------------------------------------------

/// Evaluates the expression under a concrete assignment. The result is
/// masked to the expression width.
uint64_t EvalConcrete(const ExprRef& expr, const Assignment& assignment);

/// True iff the width-1 expressions are syntactic negations of each other
/// — exactly when Expr::Equal(a, MakeBoolNot(b)) would hold — but decided
/// without allocating the negated node. Used by the solver's syntactic-
/// contradiction fast path, which runs on every query.
bool IsSyntacticNegation(const ExprRef& a, const ExprRef& b);

/// Collects the distinct variables referenced by the expression, appending
/// them to \p out (deduplicated by variable id).
void CollectVariables(const ExprRef& expr, std::vector<ExprRef>* out);

/// Counts the number of distinct nodes in the DAG (for stats and tests).
size_t CountNodes(const ExprRef& expr);

}  // namespace chef::solver

#endif  // CHEF_SOLVER_EXPR_H_
