#ifndef CHEF_SOLVER_INDEPENDENCE_H_
#define CHEF_SOLVER_INDEPENDENCE_H_

/// \file
/// Constraint-independence slicing for solver queries.
///
/// A query is a conjunction of width-1 assertions; two assertions are
/// dependent iff they share a variable (transitively). Partitioning a
/// query into variable-disjoint slices lets the solver decide each slice
/// on its own: the conjunction is sat iff every slice is sat, and the
/// union of per-slice models is a model of the whole query (the slices
/// constrain disjoint variables). For concolic negation queries this is
/// the classic KLEE "independence" optimization — the freshly flipped
/// branch condition usually touches a handful of input bytes, while the
/// path prefix drags in every byte the run ever branched on; slicing
/// keeps the SAT call (and, just as importantly, the cache key) down to
/// the relevant bytes.

#include <cstdint>
#include <vector>

#include "solver/expr.h"

namespace chef::solver {

/// One variable-disjoint group of assertions from a query.
struct IndependentSlice {
    /// The slice's assertions, in their original relative order.
    std::vector<ExprRef> assertions;
    /// Sorted distinct ids of the variables the slice constrains.
    std::vector<uint32_t> var_ids;
};

/// Appends the distinct ids of the variables referenced by \p expr to
/// \p out (walking every child edge, including kIte's condition and
/// arms, kConcat's halves and kExtract/kSExt/kZExt operands). The result
/// is deduplicated against ids already present in \p out.
void CollectVarIds(const ExprRef& expr, std::vector<uint32_t>* out);

/// Partitions \p assertions into independent slices via union-find over
/// the variables each assertion references. Slices are ordered by the
/// first assertion they contain, so the output is deterministic in the
/// input order. Assertions referencing no variables (possible only for
/// shapes the constant folder does not collapse) each form their own
/// slice, which keeps the decomposition sound.
std::vector<IndependentSlice>
PartitionIndependent(const std::vector<ExprRef>& assertions);

}  // namespace chef::solver

#endif  // CHEF_SOLVER_INDEPENDENCE_H_
