#include "solver/sat.h"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.h"

namespace chef::solver {

void
CnfFormula::AddClause(std::vector<Lit> lits)
{
    // Normalize: drop duplicate literals; detect tautologies.
    std::sort(lits.begin(), lits.end(),
              [](Lit a, Lit b) { return std::abs(a) < std::abs(b) ||
                                        (std::abs(a) == std::abs(b) && a < b); });
    std::vector<Lit> normalized;
    for (size_t i = 0; i < lits.size(); ++i) {
        CHEF_CHECK(lits[i] != 0 && std::abs(lits[i]) <= num_vars_);
        if (i > 0 && lits[i] == lits[i - 1]) {
            continue;  // Duplicate literal.
        }
        if (i > 0 && lits[i] == -lits[i - 1]) {
            return;  // Tautology; clause is always satisfied.
        }
        normalized.push_back(lits[i]);
    }
    if (normalized.empty()) {
        trivially_unsat_ = true;
        return;
    }
    clauses_.push_back(std::move(normalized));
}

SatSolver::SatSolver(Options options) : options_(options) {}

SatSolver::ILit
SatSolver::Encode(Lit lit)
{
    CHEF_CHECK(lit != 0);
    const uint32_t var = static_cast<uint32_t>(std::abs(lit)) - 1;
    return (var << 1) | (lit < 0 ? 1u : 0u);
}

uint8_t
SatSolver::ValueOf(ILit lit) const
{
    const uint8_t v = assign_[VarOf(lit)];
    if (v == kUndef) {
        return kUndef;
    }
    return v ^ static_cast<uint8_t>(lit & 1);
}

bool
SatSolver::AttachClause(uint32_t clause_index)
{
    Clause& clause = clauses_[clause_index];
    CHEF_CHECK(clause.lits.size() >= 2);
    watches_[NegateLit(clause.lits[0])].push_back(
        {clause_index, clause.lits[1]});
    watches_[NegateLit(clause.lits[1])].push_back(
        {clause_index, clause.lits[0]});
    return true;
}

bool
SatSolver::Enqueue(ILit lit, int32_t reason)
{
    const uint8_t value = ValueOf(lit);
    if (value != kUndef) {
        return value == 1;
    }
    const uint32_t var = VarOf(lit);
    assign_[var] = static_cast<uint8_t>(1 ^ (lit & 1));
    phase_[var] = assign_[var];
    reason_[var] = reason;
    level_[var] = static_cast<int32_t>(trail_limits_.size());
    trail_.push_back(lit);
    return true;
}

int32_t
SatSolver::Propagate()
{
    while (propagate_head_ < trail_.size()) {
        const ILit lit = trail_[propagate_head_++];
        ++stats_.propagations;
        std::vector<Watcher>& watch_list = watches_[lit];
        size_t keep = 0;
        for (size_t i = 0; i < watch_list.size(); ++i) {
            const Watcher watcher = watch_list[i];
            // Fast path: the blocker literal is already true.
            if (ValueOf(watcher.blocker) == 1) {
                watch_list[keep++] = watcher;
                continue;
            }
            Clause& clause = clauses_[watcher.clause_index];
            // Ensure the falsified literal is in slot 1.
            const ILit false_lit = NegateLit(lit);
            if (clause.lits[0] == false_lit) {
                std::swap(clause.lits[0], clause.lits[1]);
            }
            const ILit first = clause.lits[0];
            if (first != watcher.blocker && ValueOf(first) == 1) {
                watch_list[keep++] = {watcher.clause_index, first};
                continue;
            }
            // Look for a new literal to watch.
            bool found = false;
            for (size_t k = 2; k < clause.lits.size(); ++k) {
                if (ValueOf(clause.lits[k]) != 0) {
                    std::swap(clause.lits[1], clause.lits[k]);
                    watches_[NegateLit(clause.lits[1])].push_back(
                        {watcher.clause_index, first});
                    found = true;
                    break;
                }
            }
            if (found) {
                continue;  // This watcher moves to another list.
            }
            // Clause is unit or conflicting.
            watch_list[keep++] = {watcher.clause_index, first};
            if (!Enqueue(first,
                         static_cast<int32_t>(watcher.clause_index))) {
                // Conflict: restore the remaining watchers and report.
                for (size_t k = i + 1; k < watch_list.size(); ++k) {
                    watch_list[keep++] = watch_list[k];
                }
                watch_list.resize(keep);
                propagate_head_ = trail_.size();
                return static_cast<int32_t>(watcher.clause_index);
            }
        }
        watch_list.resize(keep);
    }
    return -1;
}

void
SatSolver::Analyze(int32_t conflict_index, std::vector<ILit>* learned,
                   int* backtrack_level)
{
    learned->clear();
    learned->push_back(0);  // Placeholder for the asserting literal.

    int counter = 0;
    ILit asserting = 0;
    bool first_round = true;
    int32_t clause_index = conflict_index;
    size_t trail_pos = trail_.size();
    const int current_level = static_cast<int>(trail_limits_.size());

    for (;;) {
        CHEF_CHECK(clause_index >= 0);
        const Clause& clause = clauses_[clause_index];
        // Skip lits[0] on non-conflict rounds: it is the asserting literal
        // whose reason we are expanding.
        const size_t start = first_round ? 0 : 1;
        first_round = false;
        for (size_t i = start; i < clause.lits.size(); ++i) {
            const ILit q = clause.lits[i];
            const uint32_t var = VarOf(q);
            if (seen_[var] || level_[var] == 0) {
                continue;
            }
            seen_[var] = 1;
            BumpVar(var);
            if (level_[var] == current_level) {
                ++counter;
            } else {
                learned->push_back(q);
            }
        }
        // Find the next literal on the trail to expand.
        do {
            CHEF_CHECK(trail_pos > 0);
            --trail_pos;
        } while (!seen_[VarOf(trail_[trail_pos])]);
        asserting = trail_[trail_pos];
        const uint32_t var = VarOf(asserting);
        seen_[var] = 0;
        --counter;
        if (counter == 0) {
            break;
        }
        clause_index = reason_[var];
    }
    (*learned)[0] = NegateLit(asserting);

    // Clear the seen flags for the learned clause literals.
    for (size_t i = 1; i < learned->size(); ++i) {
        seen_[VarOf((*learned)[i])] = 0;
    }

    // Compute the backtrack level: the highest level among the non-
    // asserting literals.
    if (learned->size() == 1) {
        *backtrack_level = 0;
    } else {
        size_t max_index = 1;
        for (size_t i = 2; i < learned->size(); ++i) {
            if (level_[VarOf((*learned)[i])] >
                level_[VarOf((*learned)[max_index])]) {
                max_index = i;
            }
        }
        std::swap((*learned)[1], (*learned)[max_index]);
        *backtrack_level = level_[VarOf((*learned)[1])];
    }
}

void
SatSolver::Backtrack(int target_level)
{
    if (static_cast<int>(trail_limits_.size()) <= target_level) {
        return;
    }
    const size_t new_size = trail_limits_[target_level];
    for (size_t i = trail_.size(); i > new_size; --i) {
        const uint32_t var = VarOf(trail_[i - 1]);
        assign_[var] = kUndef;
        reason_[var] = -1;
    }
    trail_.resize(new_size);
    trail_limits_.resize(target_level);
    propagate_head_ = new_size;
}

void
SatSolver::BumpVar(uint32_t var)
{
    activity_[var] += activity_inc_;
    if (activity_[var] > 1e100) {
        for (double& activity : activity_) {
            activity *= 1e-100;
        }
        activity_inc_ *= 1e-100;
    }
}

void
SatSolver::DecayActivities()
{
    activity_inc_ /= options_.var_decay;
}

SatSolver::ILit
SatSolver::PickBranchLit()
{
    // Linear scan over activities; fine at our scale and keeps the solver
    // simple (no heap rebuilds on backtrack).
    double best_activity = -1.0;
    int best_var = -1;
    for (int var = 0; var < num_vars_; ++var) {
        if (assign_[var] == kUndef && activity_[var] > best_activity) {
            best_activity = activity_[var];
            best_var = var;
        }
    }
    CHEF_CHECK(best_var >= 0);
    const uint32_t uvar = static_cast<uint32_t>(best_var);
    // Phase saving: re-use the last assigned polarity.
    return (uvar << 1) | (phase_[uvar] == 1 ? 0u : 1u);
}

bool
SatSolver::AllAssigned() const
{
    return trail_.size() == static_cast<size_t>(num_vars_);
}

SatStatus
SatSolver::Solve(const CnfFormula& formula)
{
    if (formula.trivially_unsat()) {
        return SatStatus::kUnsat;
    }
    num_vars_ = formula.num_vars();
    assign_.assign(num_vars_, kUndef);
    phase_.assign(num_vars_, 0);
    reason_.assign(num_vars_, -1);
    level_.assign(num_vars_, 0);
    activity_.assign(num_vars_, 0.0);
    seen_.assign(num_vars_, 0);
    watches_.assign(2 * static_cast<size_t>(num_vars_), {});
    trail_.clear();
    trail_limits_.clear();
    propagate_head_ = 0;

    // Load clauses; units go straight onto the trail.
    clauses_.clear();
    clauses_.reserve(formula.clauses().size());
    for (const std::vector<Lit>& clause : formula.clauses()) {
        if (clause.size() == 1) {
            if (!Enqueue(Encode(clause[0]), -1)) {
                return SatStatus::kUnsat;
            }
            continue;
        }
        Clause internal;
        internal.lits.reserve(clause.size());
        for (Lit lit : clause) {
            internal.lits.push_back(Encode(lit));
        }
        clauses_.push_back(std::move(internal));
        AttachClause(static_cast<uint32_t>(clauses_.size() - 1));
        // Bump variables that appear in clauses so branching prefers
        // constrained variables.
        for (Lit lit : clause) {
            activity_[static_cast<uint32_t>(std::abs(lit)) - 1] += 1.0;
        }
    }

    if (Propagate() >= 0) {
        return SatStatus::kUnsat;
    }

    uint64_t restart_limit = options_.restart_base;
    uint64_t conflicts_since_restart = 0;
    std::vector<ILit> learned;

    for (;;) {
        const int32_t conflict = Propagate();
        if (conflict >= 0) {
            ++stats_.conflicts;
            ++conflicts_since_restart;
            if (trail_limits_.empty()) {
                return SatStatus::kUnsat;
            }
            if (options_.max_conflicts != 0 &&
                stats_.conflicts >= options_.max_conflicts) {
                return SatStatus::kUnknown;
            }
            int backtrack_level = 0;
            Analyze(conflict, &learned, &backtrack_level);
            Backtrack(backtrack_level);
            if (learned.size() == 1) {
                CHEF_CHECK(Enqueue(learned[0], -1));
            } else {
                Clause clause;
                clause.lits = learned;
                clause.learned = true;
                clauses_.push_back(std::move(clause));
                ++stats_.learned_clauses;
                const auto index =
                    static_cast<uint32_t>(clauses_.size() - 1);
                AttachClause(index);
                CHEF_CHECK(Enqueue(learned[0],
                                   static_cast<int32_t>(index)));
            }
            DecayActivities();
            continue;
        }
        if (AllAssigned()) {
            return SatStatus::kSat;
        }
        if (conflicts_since_restart >= restart_limit) {
            ++stats_.restarts;
            conflicts_since_restart = 0;
            restart_limit = static_cast<uint64_t>(
                static_cast<double>(restart_limit) *
                options_.restart_growth);
            Backtrack(0);
            continue;
        }
        ++stats_.decisions;
        trail_limits_.push_back(trail_.size());
        CHEF_CHECK(Enqueue(PickBranchLit(), -1));
    }
}

bool
SatSolver::ModelValue(int var) const
{
    CHEF_CHECK(var >= 1 && var <= num_vars_);
    const uint8_t v = assign_[var - 1];
    return v == 1;
}

}  // namespace chef::solver
