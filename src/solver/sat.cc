#include "solver/sat.h"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.h"

namespace chef::solver {

void
CnfFormula::AddClause(std::vector<Lit> lits)
{
    // Normalize: drop duplicate literals; detect tautologies.
    std::sort(lits.begin(), lits.end(),
              [](Lit a, Lit b) { return std::abs(a) < std::abs(b) ||
                                        (std::abs(a) == std::abs(b) && a < b); });
    std::vector<Lit> normalized;
    for (size_t i = 0; i < lits.size(); ++i) {
        CHEF_CHECK(lits[i] != 0 && std::abs(lits[i]) <= num_vars_);
        if (i > 0 && lits[i] == lits[i - 1]) {
            continue;  // Duplicate literal.
        }
        if (i > 0 && lits[i] == -lits[i - 1]) {
            return;  // Tautology; clause is always satisfied.
        }
        normalized.push_back(lits[i]);
    }
    if (normalized.empty()) {
        trivially_unsat_ = true;
        return;
    }
    clauses_.push_back(std::move(normalized));
}

SatSolver::SatSolver(Options options) : options_(options) {}

SatSolver::ILit
SatSolver::Encode(Lit lit)
{
    CHEF_CHECK(lit != 0);
    const uint32_t var = static_cast<uint32_t>(std::abs(lit)) - 1;
    return (var << 1) | (lit < 0 ? 1u : 0u);
}

uint8_t
SatSolver::ValueOf(ILit lit) const
{
    const uint8_t v = assign_[VarOf(lit)];
    if (v == kUndef) {
        return kUndef;
    }
    return v ^ static_cast<uint8_t>(lit & 1);
}

bool
SatSolver::AttachClause(uint32_t clause_index)
{
    Clause& clause = clauses_[clause_index];
    CHEF_CHECK(clause.lits.size() >= 2);
    watches_[NegateLit(clause.lits[0])].push_back(
        {clause_index, clause.lits[1]});
    watches_[NegateLit(clause.lits[1])].push_back(
        {clause_index, clause.lits[0]});
    return true;
}

bool
SatSolver::Enqueue(ILit lit, int32_t reason)
{
    const uint8_t value = ValueOf(lit);
    if (value != kUndef) {
        return value == 1;
    }
    const uint32_t var = VarOf(lit);
    assign_[var] = static_cast<uint8_t>(1 ^ (lit & 1));
    phase_[var] = assign_[var];
    reason_[var] = reason;
    level_[var] = static_cast<int32_t>(trail_limits_.size());
    trail_.push_back(lit);
    return true;
}

int32_t
SatSolver::Propagate()
{
    while (propagate_head_ < trail_.size()) {
        const ILit lit = trail_[propagate_head_++];
        ++stats_.propagations;
        std::vector<Watcher>& watch_list = watches_[lit];
        size_t keep = 0;
        for (size_t i = 0; i < watch_list.size(); ++i) {
            const Watcher watcher = watch_list[i];
            // Fast path: the blocker literal is already true.
            if (ValueOf(watcher.blocker) == 1) {
                watch_list[keep++] = watcher;
                continue;
            }
            Clause& clause = clauses_[watcher.clause_index];
            // Ensure the falsified literal is in slot 1.
            const ILit false_lit = NegateLit(lit);
            if (clause.lits[0] == false_lit) {
                std::swap(clause.lits[0], clause.lits[1]);
            }
            const ILit first = clause.lits[0];
            if (first != watcher.blocker && ValueOf(first) == 1) {
                watch_list[keep++] = {watcher.clause_index, first};
                continue;
            }
            // Look for a new literal to watch.
            bool found = false;
            for (size_t k = 2; k < clause.lits.size(); ++k) {
                if (ValueOf(clause.lits[k]) != 0) {
                    std::swap(clause.lits[1], clause.lits[k]);
                    watches_[NegateLit(clause.lits[1])].push_back(
                        {watcher.clause_index, first});
                    found = true;
                    break;
                }
            }
            if (found) {
                continue;  // This watcher moves to another list.
            }
            // Clause is unit or conflicting.
            watch_list[keep++] = {watcher.clause_index, first};
            if (!Enqueue(first,
                         static_cast<int32_t>(watcher.clause_index))) {
                // Conflict: restore the remaining watchers and report.
                for (size_t k = i + 1; k < watch_list.size(); ++k) {
                    watch_list[keep++] = watch_list[k];
                }
                watch_list.resize(keep);
                propagate_head_ = trail_.size();
                return static_cast<int32_t>(watcher.clause_index);
            }
        }
        watch_list.resize(keep);
    }
    return -1;
}

void
SatSolver::Analyze(int32_t conflict_index, std::vector<ILit>* learned,
                   int* backtrack_level)
{
    learned->clear();
    learned->push_back(0);  // Placeholder for the asserting literal.

    int counter = 0;
    ILit asserting = 0;
    bool first_round = true;
    int32_t clause_index = conflict_index;
    size_t trail_pos = trail_.size();
    const int current_level = static_cast<int>(trail_limits_.size());

    for (;;) {
        CHEF_CHECK(clause_index >= 0);
        const Clause& clause = clauses_[clause_index];
        // Skip lits[0] on non-conflict rounds: it is the asserting literal
        // whose reason we are expanding.
        const size_t start = first_round ? 0 : 1;
        first_round = false;
        for (size_t i = start; i < clause.lits.size(); ++i) {
            const ILit q = clause.lits[i];
            const uint32_t var = VarOf(q);
            if (seen_[var] || level_[var] == 0) {
                continue;
            }
            seen_[var] = 1;
            BumpVar(var);
            if (level_[var] == current_level) {
                ++counter;
            } else {
                learned->push_back(q);
            }
        }
        // Find the next literal on the trail to expand.
        do {
            CHEF_CHECK(trail_pos > 0);
            --trail_pos;
        } while (!seen_[VarOf(trail_[trail_pos])]);
        asserting = trail_[trail_pos];
        const uint32_t var = VarOf(asserting);
        seen_[var] = 0;
        --counter;
        if (counter == 0) {
            break;
        }
        clause_index = reason_[var];
    }
    (*learned)[0] = NegateLit(asserting);

    // Clear the seen flags for the learned clause literals.
    for (size_t i = 1; i < learned->size(); ++i) {
        seen_[VarOf((*learned)[i])] = 0;
    }

    // Compute the backtrack level: the highest level among the non-
    // asserting literals.
    if (learned->size() == 1) {
        *backtrack_level = 0;
    } else {
        size_t max_index = 1;
        for (size_t i = 2; i < learned->size(); ++i) {
            if (level_[VarOf((*learned)[i])] >
                level_[VarOf((*learned)[max_index])]) {
                max_index = i;
            }
        }
        std::swap((*learned)[1], (*learned)[max_index]);
        *backtrack_level = level_[VarOf((*learned)[1])];
    }
}

void
SatSolver::Backtrack(int target_level)
{
    if (static_cast<int>(trail_limits_.size()) <= target_level) {
        return;
    }
    const size_t new_size = trail_limits_[target_level];
    for (size_t i = trail_.size(); i > new_size; --i) {
        const uint32_t var = VarOf(trail_[i - 1]);
        assign_[var] = kUndef;
        reason_[var] = -1;
        HeapInsert(var);
    }
    trail_.resize(new_size);
    trail_limits_.resize(target_level);
    propagate_head_ = new_size;
}

void
SatSolver::ResetState()
{
    loaded_clauses_ = 0;
    root_unsat_ = false;
    num_vars_ = 0;
    num_learned_ = 0;
    clauses_.clear();
    watches_.clear();
    assign_.clear();
    phase_.clear();
    reason_.clear();
    level_.clear();
    activity_.clear();
    seen_.clear();
    heap_.clear();
    heap_pos_.clear();
    trail_.clear();
    trail_limits_.clear();
    propagate_head_ = 0;
    activity_inc_ = 1.0;
}

void
SatSolver::GrowVars(int num_vars)
{
    CHEF_CHECK(num_vars >= num_vars_);
    const int old_vars = num_vars_;
    num_vars_ = num_vars;
    assign_.resize(num_vars_, kUndef);
    phase_.resize(num_vars_, 0);
    reason_.resize(num_vars_, -1);
    level_.resize(num_vars_, 0);
    activity_.resize(num_vars_, 0.0);
    seen_.resize(num_vars_, 0);
    heap_pos_.resize(num_vars_, -1);
    watches_.resize(2 * static_cast<size_t>(num_vars_));
    for (int var = old_vars; var < num_vars_; ++var) {
        HeapInsert(static_cast<uint32_t>(var));
    }
}

void
SatSolver::BumpVar(uint32_t var)
{
    activity_[var] += activity_inc_;
    if (activity_[var] > 1e100) {
        // Uniform rescale preserves the heap order.
        for (double& activity : activity_) {
            activity *= 1e-100;
        }
        activity_inc_ *= 1e-100;
    }
    if (heap_pos_[var] >= 0) {
        HeapUp(static_cast<size_t>(heap_pos_[var]));
    }
}

void
SatSolver::DecayActivities()
{
    activity_inc_ /= options_.var_decay;
}

void
SatSolver::HeapUp(size_t index)
{
    const uint32_t var = heap_[index];
    while (index > 0) {
        const size_t parent = (index - 1) / 2;
        if (activity_[heap_[parent]] >= activity_[var]) {
            break;
        }
        heap_[index] = heap_[parent];
        heap_pos_[heap_[index]] = static_cast<int32_t>(index);
        index = parent;
    }
    heap_[index] = var;
    heap_pos_[var] = static_cast<int32_t>(index);
}

void
SatSolver::HeapDown(size_t index)
{
    const uint32_t var = heap_[index];
    for (;;) {
        size_t child = 2 * index + 1;
        if (child >= heap_.size()) {
            break;
        }
        if (child + 1 < heap_.size() &&
            activity_[heap_[child + 1]] > activity_[heap_[child]]) {
            ++child;
        }
        if (activity_[heap_[child]] <= activity_[var]) {
            break;
        }
        heap_[index] = heap_[child];
        heap_pos_[heap_[index]] = static_cast<int32_t>(index);
        index = child;
    }
    heap_[index] = var;
    heap_pos_[var] = static_cast<int32_t>(index);
}

void
SatSolver::HeapInsert(uint32_t var)
{
    if (heap_pos_[var] >= 0) {
        return;
    }
    heap_.push_back(var);
    heap_pos_[var] = static_cast<int32_t>(heap_.size() - 1);
    HeapUp(heap_.size() - 1);
}

uint32_t
SatSolver::HeapPopMax()
{
    const uint32_t top = heap_[0];
    heap_pos_[top] = -1;
    const uint32_t last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_[0] = last;
        heap_pos_[last] = 0;
        HeapDown(0);
    }
    return top;
}

SatSolver::ILit
SatSolver::PickBranchLit()
{
    // Pop assigned leftovers until an unassigned variable surfaces; every
    // unassigned variable is in the heap by invariant.
    for (;;) {
        CHEF_CHECK(!heap_.empty());
        const uint32_t var = HeapPopMax();
        if (assign_[var] != kUndef) {
            continue;
        }
        // Phase saving: re-use the last assigned polarity.
        return (var << 1) | (phase_[var] == 1 ? 0u : 1u);
    }
}

bool
SatSolver::AllAssigned() const
{
    return trail_.size() == static_cast<size_t>(num_vars_);
}

void
SatSolver::PurgeLearned()
{
    CHEF_CHECK(trail_limits_.empty());

    // Clauses locked as the reason for a root assignment must survive
    // (conflict analysis may still expand them).
    std::vector<uint8_t> locked(clauses_.size(), 0);
    for (const ILit lit : trail_) {
        const int32_t reason = reason_[VarOf(lit)];
        if (reason >= 0) {
            locked[static_cast<size_t>(reason)] = 1;
        }
    }

    // Score learned clauses by the mean VSIDS activity of their
    // variables: a clause over currently hot variables is the one likely
    // to prune again, and normalizing by length keeps a long stale
    // clause from outscoring a tight one by volume. The newest clause
    // (this conflict's lesson) is exempt so a purge can never erase the
    // conflict that triggered it.
    struct Candidate {
        uint32_t index;
        double score;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(num_learned_);
    for (uint32_t i = 0; i + 1 < clauses_.size(); ++i) {
        const Clause& clause = clauses_[i];
        if (!clause.learned || locked[i]) {
            continue;
        }
        double score = 0.0;
        for (const ILit lit : clause.lits) {
            score += activity_[VarOf(lit)];
        }
        candidates.push_back(
            {i, score / static_cast<double>(clause.lits.size())});
    }
    const size_t target = std::min(candidates.size(), num_learned_ / 2);
    if (target == 0) {
        return;
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                  return a.score < b.score ||
                         (a.score == b.score && a.index < b.index);
              });
    std::vector<uint8_t> drop(clauses_.size(), 0);
    for (size_t i = 0; i < target; ++i) {
        drop[candidates[i].index] = 1;
    }

    // Compact the clause vector and remap the root reasons.
    std::vector<int32_t> remap(clauses_.size(), -1);
    size_t out = 0;
    for (size_t i = 0; i < clauses_.size(); ++i) {
        if (drop[i]) {
            continue;
        }
        remap[i] = static_cast<int32_t>(out);
        if (i != out) {
            clauses_[out] = std::move(clauses_[i]);
        }
        ++out;
    }
    const size_t removed = clauses_.size() - out;
    clauses_.resize(out);
    num_learned_ -= removed;
    stats_.purged_clauses += removed;
    for (const ILit lit : trail_) {
        int32_t& reason = reason_[VarOf(lit)];
        if (reason >= 0) {
            reason = remap[reason];
            CHEF_CHECK(reason >= 0);
        }
    }

    // Rebuild the watch lists. Watchers only fire on future enqueues, so
    // (as in LoadIncrement) each clause must watch two literals that are
    // non-false under the surviving root assignment; a clause with only
    // one such literal is permanently satisfied at root — propagation ran
    // to fixpoint before the purge, so that literal can only be true —
    // and needs no watchers at all.
    for (std::vector<Watcher>& list : watches_) {
        list.clear();
    }
    for (uint32_t i = 0; i < clauses_.size(); ++i) {
        Clause& clause = clauses_[i];
        size_t nonfalse = 0;
        for (size_t k = 0; k < clause.lits.size() && nonfalse < 2; ++k) {
            if (ValueOf(clause.lits[k]) != 0) {
                std::swap(clause.lits[nonfalse], clause.lits[k]);
                ++nonfalse;
            }
        }
        if (nonfalse >= 2) {
            AttachClause(i);
        } else {
            CHEF_CHECK(nonfalse == 1 && ValueOf(clause.lits[0]) == 1);
        }
    }
}

bool
SatSolver::LoadIncrement(const CnfFormula& formula)
{
    const std::vector<std::vector<Lit>>& clauses = formula.clauses();
    clauses_.reserve(clauses_.size() + (clauses.size() - loaded_clauses_));
    for (size_t i = loaded_clauses_; i < clauses.size(); ++i) {
        const std::vector<Lit>& clause = clauses[i];
        if (clause.size() == 1) {
            // Root-level unit: permanently true.
            if (!Enqueue(Encode(clause[0]), -1)) {
                loaded_clauses_ = i + 1;
                return false;
            }
            continue;
        }
        Clause internal;
        internal.lits.reserve(clause.size());
        for (Lit lit : clause) {
            internal.lits.push_back(Encode(lit));
        }
        // Root assignments are permanent, and watchers only fire on
        // *future* enqueues — a clause attached with already-falsified
        // watched literals would never propagate. Move two non-false
        // literals (under the current root assignment) into the watch
        // slots; clauses already unit or conflicting at load time are
        // resolved here instead.
        size_t nonfalse = 0;
        for (size_t k = 0; k < internal.lits.size() && nonfalse < 2;
             ++k) {
            if (ValueOf(internal.lits[k]) != 0) {
                std::swap(internal.lits[nonfalse], internal.lits[k]);
                ++nonfalse;
            }
        }
        if (nonfalse == 0) {
            // Every literal is root-false: the database is unsat.
            loaded_clauses_ = i + 1;
            return false;
        }
        if (nonfalse == 1) {
            // Unit under the root assignment: its surviving literal is
            // forced (or already true, making the clause redundant
            // forever — no need to attach it either way).
            if (ValueOf(internal.lits[0]) == kUndef) {
                clauses_.push_back(std::move(internal));
                const auto index =
                    static_cast<uint32_t>(clauses_.size() - 1);
                CHEF_CHECK(Enqueue(clauses_[index].lits[0],
                                   static_cast<int32_t>(index)));
            }
            continue;
        }
        clauses_.push_back(std::move(internal));
        AttachClause(static_cast<uint32_t>(clauses_.size() - 1));
        // Bump variables that appear in clauses so branching prefers
        // constrained variables.
        for (Lit lit : clause) {
            const uint32_t var =
                static_cast<uint32_t>(std::abs(lit)) - 1;
            activity_[var] += 1.0;
            if (heap_pos_[var] >= 0) {
                HeapUp(static_cast<size_t>(heap_pos_[var]));
            }
        }
    }
    loaded_clauses_ = clauses.size();
    return true;
}

SatStatus
SatSolver::Search(const std::vector<Lit>& assumptions)
{
    const uint64_t conflicts_at_entry = stats_.conflicts;
    uint64_t restart_limit = options_.restart_base;
    uint64_t conflicts_since_restart = 0;
    std::vector<ILit> learned;

    for (;;) {
        const int32_t conflict = Propagate();
        if (conflict >= 0) {
            ++stats_.conflicts;
            ++conflicts_since_restart;
            if (trail_limits_.empty()) {
                root_unsat_ = true;
                return SatStatus::kUnsat;
            }
            if (options_.max_conflicts != 0 &&
                stats_.conflicts - conflicts_at_entry >=
                    options_.max_conflicts) {
                return SatStatus::kUnknown;
            }
            int backtrack_level = 0;
            Analyze(conflict, &learned, &backtrack_level);
            Backtrack(backtrack_level);
            if (learned.size() == 1) {
                CHEF_CHECK(Enqueue(learned[0], -1));
            } else {
                Clause clause;
                clause.lits = learned;
                clause.learned = true;
                clauses_.push_back(std::move(clause));
                ++stats_.learned_clauses;
                ++num_learned_;
                const auto index =
                    static_cast<uint32_t>(clauses_.size() - 1);
                AttachClause(index);
                CHEF_CHECK(Enqueue(learned[0],
                                   static_cast<int32_t>(index)));
            }
            DecayActivities();
            if (options_.max_learned_clauses != 0 &&
                num_learned_ >= options_.max_learned_clauses) {
                // Purging needs the root level; the backtrack discards
                // this conflict's asserting assignment (the clause that
                // implies it is kept), which is the same price a restart
                // pays.
                Backtrack(0);
                PurgeLearned();
            }
            continue;
        }
        // Place pending assumptions as forced decisions before testing
        // for completion: a full assignment that falsifies an unplaced
        // assumption must still answer kUnsat.
        if (trail_limits_.size() < assumptions.size()) {
            const ILit next =
                Encode(assumptions[trail_limits_.size()]);
            const uint8_t value = ValueOf(next);
            if (value == 0) {
                // The clause database forces this assumption false:
                // unsat under the assumptions (the database itself may
                // still be satisfiable, so root_unsat_ stays clear).
                return SatStatus::kUnsat;
            }
            trail_limits_.push_back(trail_.size());
            if (value == kUndef) {
                CHEF_CHECK(Enqueue(next, -1));
            }
            continue;
        }
        if (AllAssigned()) {
            return SatStatus::kSat;
        }
        if (conflicts_since_restart >= restart_limit) {
            ++stats_.restarts;
            conflicts_since_restart = 0;
            restart_limit = static_cast<uint64_t>(
                static_cast<double>(restart_limit) *
                options_.restart_growth);
            // Restarting pops the assumption levels too; the decision
            // loop above re-places them.
            Backtrack(0);
            continue;
        }
        ++stats_.decisions;
        trail_limits_.push_back(trail_.size());
        CHEF_CHECK(Enqueue(PickBranchLit(), -1));
    }
}

SatStatus
SatSolver::Solve(const CnfFormula& formula)
{
    ResetState();
    return SolveIncremental(formula, {});
}

SatStatus
SatSolver::SolveIncremental(const CnfFormula& formula,
                            const std::vector<Lit>& assumptions)
{
    if (root_unsat_ || formula.trivially_unsat()) {
        root_unsat_ = true;
        return SatStatus::kUnsat;
    }
    Backtrack(0);
    GrowVars(formula.num_vars());
    if (!LoadIncrement(formula) || Propagate() >= 0) {
        root_unsat_ = true;
        return SatStatus::kUnsat;
    }
    return Search(assumptions);
}

bool
SatSolver::ModelValue(int var) const
{
    CHEF_CHECK(var >= 1 && var <= num_vars_);
    const uint8_t v = assign_[var - 1];
    return v == 1;
}

}  // namespace chef::solver
