/// \file
/// Distributed-sharding quickstart (see README "Distributed sharding"):
/// run one batch over multiple shard workers behind a coordinator, in
/// process via loopback transports — the same protocol `chef_shard
/// --coordinator` speaks to worker subprocesses over pipes.
///
/// Build & run:
///   cmake -B build -S . && cmake --build build -j
///   ./build/shard_demo
///
/// For the multi-process version of the same run:
///   ./build/chef_shard --coordinator --workers 2 --report report.json

#include <cstdio>

#include "shard/coordinator.h"

int
main()
{
    using namespace chef::shard;
    using chef::service::JobResult;
    using chef::service::JobSpec;
    using chef::service::JobStatusName;

    // A duplicate-skewed batch: several copies of one workload plus a
    // diverse tail — the shape where cross-shard dedup has work to do.
    std::vector<JobSpec> jobs;
    int copy = 0;
    for (const char* id : {"py/argparse", "py/argparse", "py/argparse",
                           "py/simplejson", "lua/cliargs", "lua/haml"}) {
        JobSpec spec;
        spec.workload = id;
        spec.label = std::string(id) + "#" + std::to_string(copy);
        spec.seed = static_cast<uint64_t>(++copy);
        spec.options.max_runs = 25;
        spec.options.max_seconds = 10.0;
        spec.options.collect_timeline = false;
        jobs.push_back(std::move(spec));
    }

    // The coordinator partitions the batch round-robin, derives every
    // job's seed from its *global* index (so the partition cannot change
    // per-job results), gossips corpus fingerprints and yield snapshots
    // between shards while they explore, and merges the shard reports.
    ShardCoordinator::Options options;
    options.service.seed = 42;
    options.service.num_workers = 1;  // Worker threads per shard.
    ShardCoordinator coordinator(options);

    std::string error;
    if (!RunLoopbackShards(&coordinator, jobs, /*num_shards=*/2, &error)) {
        std::fprintf(stderr, "sharded run failed: %s\n", error.c_str());
        return 1;
    }

    for (const JobResult& result : coordinator.results()) {
        std::printf("job %zu %-16s %-9s tests=%zu corpus+%zu\n",
                    result.job_index, result.label.c_str(),
                    JobStatusName(result.status), result.num_test_cases,
                    result.corpus_inserted);
    }
    const ShardCoordinator::CrossShardStats& cross =
        coordinator.cross_shard();
    std::printf("merged corpus: %zu entries | gossip: %llu msgs, %llu "
                "fingerprints | dedup: %llu suppressed locally, %llu at "
                "merge\n",
                coordinator.corpus().size(),
                static_cast<unsigned long long>(cross.gossip_messages),
                static_cast<unsigned long long>(
                    cross.fingerprints_gossiped),
                static_cast<unsigned long long>(
                    cross.remote_duplicate_hits),
                static_cast<unsigned long long>(cross.merge_duplicates));

    // The merged report embeds the familiar single-service report under
    // "merged", plus per-shard stats and the cross-shard dedup counters.
    const std::string report = coordinator.RenderMergedReport();
    std::printf("merged report: %zu bytes of strict JSON\n",
                report.size());
    return 0;
}
