/// \file
/// Exploration-service quickstart (see README "Running the exploration
/// service"): submit a declarative batch of symbolic-test jobs, run them
/// on a worker pool, and consume the aggregated JSON report.
///
/// Build & run:
///   cmake -B build -S . && cmake --build build -j
///   ./build/service_demo [--engine-threads N]
///
/// --engine-threads N grants every session N intra-session exploration
/// threads (deterministic round mode; results match N=1, only faster).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "service/report.h"
#include "service/service.h"
#include "workloads/registry.h"

int
main(int argc, char** argv)
{
    using namespace chef::service;

    uint32_t engine_threads = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--engine-threads") == 0 &&
            i + 1 < argc) {
            engine_threads = static_cast<uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
            if (engine_threads == 0) {
                engine_threads = 1;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--engine-threads N]\n", argv[0]);
            return 2;
        }
    }

    // 1. Describe the batch declaratively: workload ids from the registry
    //    plus per-session engine options. No closures, no interpreter
    //    setup — the service resolves and instantiates everything on its
    //    worker threads.
    std::vector<JobSpec> jobs;
    for (const char* id : {"py/argparse", "py/simplejson", "lua/cliargs",
                           "lua/JSON"}) {
        JobSpec spec;
        spec.workload = id;
        spec.options.max_runs = 20;
        spec.options.max_seconds = 10.0;
        spec.options.collect_timeline = false;
        jobs.push_back(std::move(spec));
    }

    // 2. Run them on 2 workers with a service-wide wall budget. One
    //    Engine per job; results aggregate into the shared deduplicated
    //    corpus. Dispatch is yield-weighted by default (workloads whose
    //    corpus is still growing run first); streamed events arrive on a
    //    dispatcher thread while RunBatch blocks, so a long batch can
    //    feed a dashboard — here they just print as they land.
    ExplorationService::Options options;
    options.num_workers = 2;
    options.seed = 42;
    options.max_total_seconds = 60.0;
    // Intra-session parallelism: each job's engine explores with this
    // many threads over its shared execution tree, clamped against the
    // machine-wide core budget (num_workers x threads <= cores).
    options.engine_threads = engine_threads;
    options.on_job_event = [](const JobEvent& event) {
        if (event.kind != JobEvent::Kind::kJobCompleted) {
            return;
        }
        std::printf("[stream] %-14s %-9s corpus+%-3zu (%zu/%zu done, "
                    "corpus %zu, t=%.2fs)\n",
                    event.label.c_str(), JobStatusName(event.status),
                    event.corpus_inserted, event.jobs_finished,
                    event.jobs_total, event.corpus_size,
                    event.elapsed_seconds);
    };
    ExplorationService service(options);
    const std::vector<JobResult> results = service.RunBatch(jobs);
    std::printf("\n");

    // 3. Per-job summary.
    for (const JobResult& result : results) {
        std::printf(
            "%-14s %-9s seed=%016llx  runs=%-4zu relevant=%-3zu "
            "corpus+=%zu\n",
            result.label.c_str(), JobStatusName(result.status),
            static_cast<unsigned long long>(result.seed_used),
            result.num_test_cases, result.num_relevant_test_cases,
            result.corpus_inserted);
    }
    const ServiceStats& stats = service.stats();
    std::printf("\n%zu jobs in %.2fs (%.2f jobs/s), %llu HL paths, "
                "corpus size %zu\n\n",
                stats.jobs_completed, stats.wall_seconds,
                stats.jobs_per_second,
                static_cast<unsigned long long>(stats.hl_paths),
                stats.corpus_size);

    // 4. The JSON report (capped corpus, no raw inputs) is what external
    //    tooling consumes; here it just goes to stdout.
    ReportOptions report_options;
    report_options.max_corpus_entries = 3;
    report_options.include_inputs = false;
    std::printf("%s\n",
                RenderJsonReport(stats, results, service.corpus(),
                                 report_options)
                    .c_str());
    return 0;
}
