/// \file
/// Using the CHEF-derived engine as a *reference implementation* to find
/// bugs in a hand-written engine (§6.6). The dedicated NICE-like engine
/// is built with the paper's `if not <expr>` branch-selection bug seeded;
/// comparing the high-level path sets against the reference engine
/// exposes it: the buggy engine generates redundant test cases and misses
/// feasible paths.
///
///   ./build/examples/engine_crosscheck

#include <cstdio>

#include "dedicated/nice_engine.h"
#include "workloads/py_harness.h"

int
main()
{
    using namespace chef;
    using namespace chef::workloads;

    const char* guest = R"(def policy(pkt_type, pkt_len):
    action = 0
    if not pkt_type == 34525:
        action = action + 1
    if not pkt_len > 1500:
        action = action + 2
    return action
)";

    // Reference: the CHEF-derived engine (interpreter-backed).
    auto program = CompilePyOrDie(guest);
    PySymbolicTest spec;
    spec.source = guest;
    spec.entry = "policy";
    spec.args = {SymbolicArg::Int("pkt_type", 0),
                 SymbolicArg::Int("pkt_len", 0)};
    Engine::Options reference_options;
    reference_options.max_runs = 200;
    Engine reference(reference_options);
    reference.Explore(MakePyRunFn(
        program, spec, interp::InterpBuildOptions::FullyOptimized()));

    auto run_dedicated = [&](bool seeded_bug) {
        dedicated::NicePyEngine::Options options;
        options.seeded_not_bug = seeded_bug;
        options.max_runs = 200;
        dedicated::NicePyEngine engine(guest, options);
        return engine.Explore(
            "policy", {{"pkt_type", 0}, {"pkt_len", 0}});
    };

    const auto correct = run_dedicated(false);
    const auto buggy = run_dedicated(true);

    std::printf("high-level paths discovered:\n");
    std::printf("  CHEF-derived reference engine : %llu\n",
                static_cast<unsigned long long>(
                    reference.stats().hl_paths));
    std::printf("  dedicated engine (correct)    : %llu\n",
                static_cast<unsigned long long>(correct.hl_paths));
    std::printf("  dedicated engine (NICE bug)   : %llu\n",
                static_cast<unsigned long long>(buggy.hl_paths));

    if (buggy.hl_paths < reference.stats().hl_paths) {
        std::printf("\ncross-check FAILED for the buggy engine: it "
                    "misses %llu feasible high-level path(s).\n",
                    static_cast<unsigned long long>(
                        reference.stats().hl_paths - buggy.hl_paths));
        std::printf("root cause (as in the paper): on `if not <expr>` "
                    "the engine records the un-negated constraint, so "
                    "the\nselected alternate re-drives an "
                    "already-explored path.\n");
        return 0;
    }
    std::printf("\nunexpected: the buggy engine matched the reference; "
                "increase budgets.\n");
    return 1;
}
