/// \file
/// Exception mining (§6.2): find undocumented exceptions in the mini_xlrd
/// workbook reader. Undocumented exceptions escape try/except blocks
/// written against the documented API and kill the caller — e.g. a backup
/// script dying mid-job. The engine discovers the inputs that reach them.
///
///   ./build/examples/exception_mining

#include <cstdio>
#include <map>
#include <set>

#include "workloads/packages.h"

int
main()
{
    using namespace chef;
    using namespace chef::workloads;

    const PyPackage& package = PyPackageByName("xlrd");
    auto program = CompilePyOrDie(package.test.source);

    Engine::Options options;
    options.strategy = StrategyKind::kCupaCoverage;
    options.max_runs = 600;
    options.max_seconds = 60.0;
    Engine engine(options);

    std::printf("mining exceptions from mini_xlrd (documented API: "
                "XLRDError)...\n\n");
    const auto tests = engine.Explore(MakePyRunFn(
        program, package.test,
        interp::InterpBuildOptions::FullyOptimized()));

    const std::set<std::string> documented(
        package.documented_exceptions.begin(),
        package.documented_exceptions.end());
    std::map<std::string, std::string> witness;  // type -> input bytes.
    for (const TestCase& test : tests) {
        if (test.outcome_kind != "exception") {
            continue;
        }
        if (witness.count(test.outcome_detail)) {
            continue;
        }
        std::string input;
        for (size_t i = 0; i < 8; ++i) {
            input.push_back(static_cast<char>(
                test.inputs.Get(static_cast<uint32_t>(i + 1))));
        }
        witness[test.outcome_detail] = input;
    }

    std::printf("%-18s %-14s %s\n", "exception", "classification",
                "witness input");
    for (const auto& [type, input] : witness) {
        const bool is_documented =
            documented.count(type) || type == "ValueError" ||
            type == "TypeError" || type == "KeyError";
        std::printf("%-18s %-14s \"", type.c_str(),
                    is_documented ? "documented" : "UNDOCUMENTED");
        for (char c : input) {
            std::printf(c >= 0x20 && c < 0x7f ? "%c" : "\\x%02x",
                        static_cast<unsigned char>(c));
        }
        std::printf("\"\n");
    }
    std::printf("\n(paper finds BadZipfile, IndexError, error and "
                "AssertionError escaping xlrd's documented XLRDError "
                "API.)\n");
    return 0;
}
