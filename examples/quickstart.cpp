/// \file
/// Quickstart: turn the MiniPy interpreter into a symbolic execution
/// engine and generate a test suite for the paper's running example
/// (Figure 2's validateEmail).
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>

#include "workloads/py_harness.h"

int
main()
{
    using namespace chef;
    using namespace chef::workloads;

    // 1. The target program, in the guest language. The interpreter - not
    //    a hand-written model - defines its semantics.
    const char* guest = R"(class InvalidEmailError(Exception):
    pass

def validateEmail(email):
    at_sign_pos = email.find('@')
    if at_sign_pos < 3:
        raise InvalidEmailError('local part too short')
    return True
)";

    // 2. The symbolic test (paper Figure 7): one 6-character symbolic
    //    string argument.
    PySymbolicTest test;
    test.source = guest;
    test.entry = "validateEmail";
    test.args = {SymbolicArg::Str("email", 6)};

    // 3. Run the CHEF engine: concolic iterations over the instrumented
    //    interpreter, path-optimized CUPA state selection.
    auto program = CompilePyOrDie(guest);
    Engine::Options options;
    options.strategy = StrategyKind::kCupaPath;
    options.max_runs = 100;
    Engine engine(options);
    const std::vector<TestCase> tests = engine.Explore(MakePyRunFn(
        program, test, interp::InterpBuildOptions::FullyOptimized()));

    // 4. Report: every relevant test case (one per high-level path), its
    //    input, and its replayed outcome.
    std::printf("explored %llu low-level paths covering %llu high-level "
                "paths\n\n",
                static_cast<unsigned long long>(engine.stats().ll_paths),
                static_cast<unsigned long long>(engine.stats().hl_paths));
    int index = 0;
    for (const TestCase& test_case : tests) {
        if (!test_case.new_hl_path) {
            continue;
        }
        std::string email;
        for (uint32_t var = 1; var <= 6; ++var) {
            email.push_back(
                static_cast<char>(test_case.inputs.Get(var)));
        }
        const PyReplayResult replay =
            ReplayPy(program, test, test_case.inputs);
        std::printf("test %d: email = \"", ++index);
        for (char c : email) {
            std::printf(c >= 0x20 && c < 0x7f ? "%c" : "\\x%02x",
                        static_cast<unsigned char>(c));
        }
        std::printf("\" -> %s\n",
                    replay.ok ? "accepted"
                              : ("raises " + replay.exception_type)
                                    .c_str());
    }
    return 0;
}
