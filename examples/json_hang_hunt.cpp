/// \file
/// Hunting the sb-JSON denial-of-service bug (§6.2): the parser accepts
/// non-standard /* */ and // comments; a malformed (unterminated) comment
/// makes it spin forever. Normal JSON is machine-generated and never
/// contains comments, so conventional testing misses this — symbolic
/// exploration with hang detection finds it.
///
///   ./build/examples/json_hang_hunt

#include <cstdio>

#include "workloads/packages.h"

int
main()
{
    using namespace chef;
    using namespace chef::workloads;

    const LuaPackage& package = LuaPackageByName("JSON");
    auto chunk = ParseLuaOrDie(package.test.source);

    Engine::Options options;
    options.strategy = StrategyKind::kCupaPath;
    options.max_runs = 400;
    options.max_seconds = 60.0;
    options.max_steps_per_run = 60'000;  // The paper's per-path timeout.
    Engine engine(options);

    std::printf("exploring the Lua JSON parser (hang detector armed)...\n");
    const auto tests = engine.Explore(MakeLuaRunFn(
        chunk, package.test, interp::InterpBuildOptions::FullyOptimized()));

    std::printf("low-level paths: %llu, high-level paths: %llu, hangs: "
                "%llu\n\n",
                static_cast<unsigned long long>(engine.stats().ll_paths),
                static_cast<unsigned long long>(engine.stats().hl_paths),
                static_cast<unsigned long long>(engine.stats().hangs));

    bool found = false;
    for (const TestCase& test : tests) {
        if (test.outcome_kind != "hang") {
            continue;
        }
        std::string input;
        for (size_t i = 0; i < 5; ++i) {
            input.push_back(static_cast<char>(
                test.inputs.Get(static_cast<uint32_t>(i + 1))));
        }
        std::printf("DoS input found: \"");
        for (char c : input) {
            std::printf(c >= 0x20 && c < 0x7f ? "%c" : "\\x%02x",
                        static_cast<unsigned char>(c));
        }
        std::printf("\"\n");
        std::printf("  -> decode() never returns: the comment scanner "
                    "fails to advance past an unterminated comment.\n");
        found = true;
        break;
    }
    if (!found) {
        std::printf("no hang found within the budget; increase "
                    "max_runs/max_seconds.\n");
        return 1;
    }
    std::printf("\n(The paper notes JSON is normally machine-generated "
                "and transmitted over the network, so traditional tests "
                "miss this;\n an attacker can DoS a service with one "
                "malformed comment.)\n");
    return 0;
}
